"""Task Manager: the abstraction layer between CrowdDB and the platforms.

"The Task Manager provides an abstraction layer that manages the
interaction between CrowdDB and the crowdsourcing platforms.  It
instantiates the user interfaces, makes the API calls to post tasks,
assess their status, and obtain results.  The Task Manager also interacts
with the storage engine to obtain values to pre-load into the task user
interfaces and to memorize the results sourced from the crowd."
(paper §3)

Operator-facing API:

* :meth:`fill_values` — CrowdProbe sourcing of CNULL column values;
* :meth:`source_new_tuples` — open-world tuple sourcing (CrowdProbe on
  CROWD tables, CrowdJoin inner probes);
* :meth:`compare_equal` / :meth:`compare_order` — CrowdCompare ballots,
  cached ("results obtained from the crowd are always stored ... for
  future use").

Each blocking call is a thin wrapper over the issue/poll/resume protocol
used by the concurrent query server (:mod:`repro.server`):

* :meth:`begin_fill` / :meth:`begin_new_tuples` / :meth:`begin_compare_equal`
  / :meth:`begin_compare_order` post the HITs and return a
  :class:`CrowdFuture` without advancing the platform clock;
* :meth:`wait` drives one future to completion (the serial path);
* :meth:`settle` finalizes a future whose HITs have completed (or whose
  deadline passed) — the cooperative scheduler's resume path.

Batch crowd execution adds a group-issue layer: :meth:`begin_fill_many`
posts a whole window of fill tasks up front (packaging them into HIT
groups of up to ``config.hit_group_size`` tasks per HIT), and
:meth:`wait_many` / :meth:`settle_many` drive the resulting future *set*
through one overlapped marketplace round instead of one round per task.
The per-task ``begin_*`` calls are group-of-one wrappers, so the server's
shared :class:`~repro.server.task_pool.TaskPool` dedup keeps working.

When a shared task pool is attached (``task_manager.task_pool``),
``begin_*`` deduplicates identical pending requests across concurrent
sessions: both callers receive the *same* future and resume on one HIT's
answers — the cross-query generalization of the paper's "results are
always stored for future use" memorization.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.catalog.table import TableSchema
from repro.crowd.breaker import CircuitBreaker, RetryQueue
from repro.crowd.model import (
    HIT,
    HITStatus,
    CompareEqualTask,
    CompareOrderTask,
    FillGroupTask,
    FillTask,
    NewTupleTask,
)
from repro.crowd.platform import CrowdPlatform, PlatformRegistry
from repro.crowd.quality import Ballot, MajorityVote, VoteResult, normalize_answer
from repro.crowd.reputation import ReputationStore
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    ExecutionError,
    TransientPlatformError,
    TypeError_,
)
from repro.sqltypes import CNULL, NULL, parse_literal
from repro.ui.manager import UITemplateManager


@dataclass
class CrowdConfig:
    """Per-connection crowdsourcing policy."""

    replication: int = 3           # assignments per HIT (majority voting)
    reward_cents: int = 2
    timeout_seconds: float = 6 * 3600.0
    budget_cents: Optional[int] = None
    min_agreement: float = 0.5
    platform: Optional[str] = None  # default platform name
    locality: Optional[tuple[float, float, float]] = None
    fuzzy_cleansing: bool = True  # merge typo-variant keys when sourcing
    # batch crowd execution: operators buffer up to ``batch_size`` tuples,
    # issue every crowd task of the window up front, and settle them in
    # one marketplace round — their simulated latencies overlap instead
    # of adding up.  1 restores tuple-at-a-time execution.
    batch_size: int = 16
    # HIT groups: up to this many fill tasks for one table/column set are
    # packaged into a single HIT with one combined form (reward and
    # completion time scale with group size).  1 posts one HIT per task.
    hit_group_size: int = 1
    # Adaptive quality control.  Setting ``target_confidence`` switches
    # fill/compare HITs from fixed ``replication`` to adaptive
    # replication: post ``min_replication`` assignments up front, then
    # extend the HIT one assignment at a time while the weighted-consensus
    # confidence stays below the target, capped at ``max_replication``.
    # ``None`` (the default) reproduces the paper's fixed behaviour.
    target_confidence: Optional[float] = None
    min_replication: int = 2
    max_replication: int = 7
    # Gold-standard probes: fraction of posted HITs matched by an extra
    # known-answer HIT used purely to score workers (0 disables).
    gold_rate: float = 0.0
    # Reputation-weighted voting: ``None`` enables it exactly when
    # adaptive replication is on; True/False force it either way.
    reputation_weighting: Optional[bool] = None
    # Workers whose estimated accuracy drops below this are blocked via
    # the WRM (the platforms stop offering them HITs).  None disables.
    block_below: Optional[float] = None
    # Platform-call robustness: ``post_hit``/``extend_hit`` failures of
    # the transient kind (:class:`TransientPlatformError`) are retried up
    # to ``platform_retries`` times with exponential backoff starting at
    # ``platform_retry_backoff`` seconds.  ``platform_timeout`` bounds the
    # *cumulative* backoff budget per call; once projected waiting would
    # exceed it, the error propagates instead.  Simulated platforms (any
    # platform with a ``clock``) never sleep real wall-clock time.
    platform_retries: int = 3
    platform_retry_backoff: float = 0.05
    platform_timeout: Optional[float] = None
    # Per-statement guard defaults (overridable per statement with
    # ``... WITH DEADLINE <ms> BUDGET <cents>`` or per submission over the
    # wire).  The deadline is simulated marketplace milliseconds; the
    # budget is crowd cents attributed to the statement's ledger.  When a
    # cap trips, the statement returns a ``status="partial"`` result with
    # the rows settled so far instead of raising.
    statement_deadline_ms: Optional[int] = None
    statement_budget_cents: Optional[int] = None
    # Circuit breaker guarding mutating platform calls.  When recent
    # calls fail (consecutive run, windowed failure rate) or crawl past
    # ``breaker_latency_seconds``, the breaker opens: further issues are
    # refused with :class:`CircuitOpenError`, parked in a durable retry
    # queue, and replayed once the platform recovers (half-open probes
    # succeed).  The cooldown is wall-clock seconds.
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 5
    breaker_window: int = 20
    breaker_failure_rate: float = 0.5
    breaker_min_calls: int = 4
    breaker_cooldown_seconds: float = 1.0
    breaker_latency_seconds: Optional[float] = None
    breaker_half_open_probes: int = 2


@dataclass
class TaskManagerStats:
    """Counters the benchmarks report."""

    hits_posted: int = 0
    assignments_received: int = 0
    cost_cents: int = 0
    fill_requests: int = 0
    new_tuple_requests: int = 0
    compare_requests: int = 0
    cache_hits: int = 0
    timeouts: int = 0
    # marketplace rounds driven (serial waits + scheduler advances) —
    # the runtime counterpart of the cost model's latency rounds
    marketplace_rounds: int = 0
    # adaptive quality control
    hit_extensions: int = 0        # extra assignments requested on live HITs
    gold_hits_posted: int = 0      # known-answer probes injected
    gold_answers_scored: int = 0   # worker answers graded against gold
    gold_assignments_received: int = 0
    gold_cost_cents: int = 0       # spend attributable to gold probes
    confidence_sum: float = 0.0    # over settled verdicts (mean = sum/count)
    confidence_count: int = 0
    # dynamically named counters (e.g. per-kind issue counts).  They live
    # in one dict but flatten into every snapshot, so a counter created
    # mid-query is present in all later before/after snapshots and
    # per-statement deltas stay deltas instead of absolute totals.
    extra: dict = field(default_factory=dict)

    def bump(self, key: str, amount: float = 1) -> None:
        """Increment a dynamically named counter."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def snapshot(self) -> dict[str, float]:
        data = {k: v for k, v in self.__dict__.items() if k != "extra"}
        data.update(self.extra)
        return data


class CrowdFuture:
    """One outstanding crowd request: posted HITs plus the recipe that
    turns their assignments into a typed answer.

    The future is *done* when every HIT stopped accepting assignments
    (completed or expired) or its deadline passed; it must then be
    *settled* (accounting + voting + parsing, exactly once) before
    :meth:`result` is available.  Futures are shared across sessions by
    the task pool, so settlement is idempotent and the computed value is
    fanned out to every waiter.
    """

    def __init__(
        self,
        kind: str,
        key: tuple,
        hits: list[HIT],
        platform: Optional[CrowdPlatform],
        posted_at: float,
        timeout_seconds: float,
        finalize: Callable[[list[HIT]], Any],
    ) -> None:
        self.kind = kind
        self.key = key
        self.hits = hits
        self.platform = platform
        self.posted_at = posted_at
        self.timeout_seconds = timeout_seconds
        self._finalize = finalize
        self._settled = False
        self._value: Any = None
        # a mirrored comparison or a HIT-group member rides another
        # future's HITs (see ``mirrored`` / ``member``); settlement and
        # accounting happen on the parent
        self.mirror_of: Optional["CrowdFuture"] = None
        self.invert = False
        self.extract_index: Optional[int] = None
        # adaptive replication state (carried by the future so sessions
        # joining through the shared task pool see the same controller,
        # confidence, and extension history)
        self.adaptive: Optional["AdaptiveReplication"] = None
        self.confidence: Optional[float] = None
        self.extensions = 0
        # per-future settlement accounting (assignments, cents, verdict
        # confidence) — stamped once by TaskManager.settle so every
        # waiting statement can attribute exactly this future's spend to
        # itself (see ExecutionContext's CrowdLedger)
        self.accounting: Optional[dict[str, float]] = None
        self.extension_assignments = 0  # extra assignments bought adaptively

    @classmethod
    def resolved(cls, kind: str, key: tuple, value: Any) -> "CrowdFuture":
        """A future that never reached a platform (answer was cached)."""
        future = cls(kind, key, [], None, 0.0, 0.0, lambda hits: value)
        future._settled = True
        future._value = value
        return future

    @classmethod
    def mirrored(
        cls, parent: "CrowdFuture", key: tuple, invert: bool
    ) -> "CrowdFuture":
        """A view of ``parent`` asked in the opposite direction.

        CROWDORDER('a', 'b') and CROWDORDER('b', 'a') are one ballot; the
        mirror shares the parent's HITs and negates its settled value, so
        symmetric concurrent requests never post twice (or cache
        contradictory answers)."""
        future = cls(
            parent.kind,
            key,
            parent.hits,
            parent.platform,
            parent.posted_at,
            parent.timeout_seconds,
            finalize=lambda hits: None,
        )
        future.mirror_of = parent
        future.invert = invert
        return future

    @classmethod
    def member(
        cls, parent: "CrowdFuture", key: tuple, index: int
    ) -> "CrowdFuture":
        """One task of a HIT group.

        The member shares the grouped HIT of ``parent`` (whose settled
        value is the list of per-subtask answers) and resolves to the
        slice at ``index`` — one posted HIT fans back out to the right
        futures on completion."""
        future = cls(
            parent.kind,
            key,
            parent.hits,
            parent.platform,
            parent.posted_at,
            parent.timeout_seconds,
            finalize=lambda hits: None,
        )
        future.mirror_of = parent
        future.extract_index = index
        return future

    @property
    def deadline(self) -> float:
        return self.posted_at + self.timeout_seconds

    @property
    def settled(self) -> bool:
        if self.mirror_of is not None:
            return self.mirror_of.settled
        return self._settled

    def hits_closed(self) -> bool:
        """Poll: has every HIT stopped accepting assignments?"""
        return all(hit.status is not HITStatus.OPEN for hit in self.hits)

    def past_deadline(self) -> bool:
        clock = getattr(self.platform, "clock", None)
        if clock is None:
            return True  # platform has no clock: waiting cannot help
        return clock.now >= self.deadline

    def ready(self) -> bool:
        """Poll: can this future be settled without further waiting?

        An adaptive future whose HITs just completed may *extend* them
        here instead — requesting more assignments and staying pending —
        which is what lets every polling path (serial waits, batch waits,
        the cooperative scheduler) drive confidence rounds without
        blocking anyone.
        """
        if self.mirror_of is not None:
            return self.mirror_of.ready()
        if self._settled:
            return True
        if self.hits_closed():
            if self.adaptive is not None and self.adaptive.maybe_extend(self):
                return False
            return True
        return self.past_deadline()

    def result(self) -> Any:
        if self.mirror_of is not None:
            value = self.mirror_of.result()
            if self.extract_index is not None:
                return value[self.extract_index]
            return (not value) if self.invert else value
        if not self._settled:
            raise ExecutionError(
                f"crowd future {self.key!r} consumed before settlement"
            )
        return self._value


class AdaptiveReplication:
    """Confidence-driven replication controller for one crowd future.

    ``confidence_of`` recomputes the weighted-consensus confidence over
    the future's current assignments.  :meth:`maybe_extend` is invoked
    from :meth:`CrowdFuture.ready` whenever the HITs have completed: if
    the verdict is still below ``target_confidence`` (and the deadline,
    ``max_replication`` cap, and budget all allow) it requests one more
    assignment per HIT and reports the future as still pending.
    """

    def __init__(
        self,
        manager: "TaskManager",
        confidence_of: Callable[["CrowdFuture"], float],
    ) -> None:
        self.manager = manager
        self.confidence_of = confidence_of

    def maybe_extend(self, future: "CrowdFuture") -> bool:
        """Extend the future's HITs by one assignment if the consensus is
        not confident yet.  Returns whether an extension happened."""
        config = self.manager.config
        confidence = self.confidence_of(future)
        future.confidence = confidence
        if config.target_confidence is None:
            return False
        if confidence >= config.target_confidence:
            return False
        clock = getattr(future.platform, "clock", None)
        if clock is not None and clock.now >= future.deadline:
            return False
        candidates = [
            hit
            for hit in future.hits
            if hit.status is HITStatus.COMPLETED
            and hit.assignments_requested < config.max_replication
        ]
        if not candidates:
            return False
        if config.budget_cents is not None:
            accrued = sum(
                hit.reward_cents * len(hit.assignments)
                for hit in future.hits
            )
            projected = sum(hit.reward_cents for hit in candidates)
            if (
                self.manager.stats.cost_cents + accrued + projected
                > config.budget_cents
            ):
                return False
        for hit in candidates:
            self.manager._platform_call(
                future.platform, "extend_hit", hit.hit_id, 1
            )
        future.extensions += 1
        future.extension_assignments += len(candidates)
        self.manager.stats.hit_extensions += len(candidates)
        tracer = self.manager.tracer
        if tracer is not None:
            tracer.emit(
                "hit.extend",
                sim=clock.now if clock is not None else 0.0,
                hits=[hit.hit_id for hit in candidates],
                task_kind=future.kind,
                confidence=round(confidence, 4),
                target=config.target_confidence,
                extension=future.extensions,
            )
        return True


class TaskManager:
    """Posts tasks, waits for answers, votes, and parses results."""

    def __init__(
        self,
        platforms: PlatformRegistry,
        ui_manager: UITemplateManager,
        config: Optional[CrowdConfig] = None,
    ) -> None:
        self.platforms = platforms
        self.ui_manager = ui_manager
        self.config = config if config is not None else CrowdConfig()
        self.stats = TaskManagerStats()
        self._voter = MajorityVote(self.config.min_agreement)
        # comparison caches: the paper stores every crowd answer for reuse
        self._equal_cache: dict[tuple, bool] = {}
        self._order_cache: dict[tuple, str] = {}
        # optional shared pool (repro.server): dedups identical pending
        # requests across concurrent sessions
        self.task_pool: Optional[Any] = None
        # adaptive quality control: per-worker reputation + gold probes
        self.reputation: Optional[ReputationStore] = None
        self._gold_accumulator = 0.0
        self._gold_pending: list[tuple[HIT, Any, CrowdPlatform, float]] = []
        # optional trace sink (repro.obs.TraceSink): HIT-lifecycle span
        # events, wired by connect() when observability is on
        self.tracer: Optional[Any] = None
        # optional durable crowd ledger (repro.storage.ledger.CrowdLedger):
        # settled CROWDEQUAL/CROWDORDER verdicts are written through so a
        # recovered instance never re-buys a paid answer
        self.ledger: Optional[Any] = None
        # failure containment: one circuit breaker per platform plus a
        # (optionally durable) parking lot for HIT issues refused while a
        # breaker is open.  Parked work replays through the public
        # ``begin_*`` API on the next crowd activity after recovery, so
        # replayed futures re-enter the task pool and dedup normally.
        self.breakers: dict[str, CircuitBreaker] = {}
        self.retry_queue = RetryQueue()
        self._replay_pending = False
        self._replaying = False

    # -- platform-call robustness -----------------------------------------------------

    def _platform_call(self, platform: CrowdPlatform, method: str, *args: Any) -> Any:
        """Invoke a platform method under bounded exponential-backoff retry.

        Only :class:`TransientPlatformError` is retried — permanent
        rejections (budget, unknown HIT, ...) propagate immediately.
        Platforms driven by a simulated clock never block real time; the
        virtual delay still counts against ``platform_timeout`` so the
        budget semantics are testable deterministically.
        """
        retries = max(0, self.config.platform_retries)
        delay = max(0.0, self.config.platform_retry_backoff)
        budget = self.config.platform_timeout
        waited = 0.0
        attempt = 0
        breaker = self._breaker_for(platform)
        while True:
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(
                    f"{getattr(platform, 'name', '?')} breaker is "
                    f"{breaker.state}; refusing {method}"
                )
            clock = getattr(platform, "clock", None)
            try:
                started = time.perf_counter()
                sim_started = clock.now if clock is not None else 0.0
                result = getattr(platform, method)(*args)
            except TransientPlatformError as error:
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt > retries:
                    raise
                if budget is not None and waited + delay > budget:
                    raise TransientPlatformError(
                        f"{method} still failing after {attempt} attempt(s) "
                        f"and the {budget}s retry budget: {error}"
                    ) from error
                self.stats.bump("platform_retries")
                if self.tracer is not None:
                    clock = getattr(platform, "clock", None)
                    self.tracer.emit(
                        "hit.retry",
                        sim=clock.now if clock is not None else 0.0,
                        method=method,
                        platform=getattr(platform, "name", "?"),
                        attempt=attempt,
                        backoff=delay,
                        error=str(error),
                    )
                if delay > 0 and getattr(platform, "clock", None) is None:
                    time.sleep(delay)
                waited += delay
                delay = delay * 2 if delay > 0 else 0.0
            else:
                if breaker is not None:
                    # latency is whichever clock the platform burned: wall
                    # time for real platforms, simulated seconds for sims
                    # (an injected latency spike shows up only there)
                    latency = time.perf_counter() - started
                    if clock is not None:
                        latency = max(latency, clock.now - sim_started)
                    breaker.record_success(latency)
                return result

    # -- circuit breaker + retry queue --------------------------------------------

    def _breaker_for(self, platform: CrowdPlatform) -> Optional[CircuitBreaker]:
        """Lazily create the per-platform breaker (None when disabled)."""
        if not self.config.breaker_enabled:
            return None
        name = getattr(platform, "name", "default")
        breaker = self.breakers.get(name)
        if breaker is None:
            config = self.config
            breaker = CircuitBreaker(
                name,
                failure_threshold=config.breaker_failure_threshold,
                window=config.breaker_window,
                failure_rate=config.breaker_failure_rate,
                min_calls=config.breaker_min_calls,
                cooldown_seconds=config.breaker_cooldown_seconds,
                latency_threshold=config.breaker_latency_seconds,
                half_open_probes=config.breaker_half_open_probes,
                on_open=self._on_breaker_open,
                on_close=self._on_breaker_close,
            )
            self.breakers[name] = breaker
        return breaker

    def _on_breaker_open(self, name: str) -> None:
        self.stats.bump("breaker_opens")
        if self.tracer is not None:
            self.tracer.emit("breaker.open", platform=name)

    def _on_breaker_close(self, name: str) -> None:
        self.stats.bump("breaker_closes")
        if self.tracer is not None:
            self.tracer.emit("breaker.close", platform=name)
        # Replay is deferred to the next crowd activity (or an explicit
        # replay_parked() call): the close fires from inside a platform
        # call whose own issue is mid-flight, so re-entering begin_* here
        # could double-post the very key being issued.
        if len(self.retry_queue):
            self._replay_pending = True

    def breaker_states(self) -> dict[str, float]:
        """Per-platform breaker state codes (0 closed / 1 half-open /
        2 open) for the labeled metrics gauge."""
        return {name: b.state_code for name, b in self.breakers.items()}

    def breaker_snapshot(self) -> dict[str, float]:
        """Flattened breaker + retry-queue stats for metrics collection."""
        data: dict[str, float] = {"retry_queue_depth": len(self.retry_queue)}
        for name, breaker in self.breakers.items():
            for key, value in breaker.snapshot().items():
                data[f"{name}_{key}"] = value
        return data

    def _park_entry(self, entry: dict, key: Optional[tuple] = None) -> None:
        """Park one refused issue descriptor in the retry queue.

        ``key`` is the issue's task-pool key; its signature is stamped on
        the entry so that if the same work settles through another route
        before replay (a retried statement reissued it), the stale parked
        entry is discarded instead of repurchasing the answer."""
        if key is not None:
            entry["signature"] = _key_signature(key)
        self.retry_queue.park(entry)
        self.stats.bump("breaker_parked")
        if self.tracer is not None:
            self.tracer.emit(
                "breaker.park",
                task=entry.get("kind", "?"),
                platform=entry.get("platform") or "default",
            )

    def _park_fills(
        self,
        requests: list[tuple],
        keys: list[tuple],
        chunk: list[int],
        platform: Optional[str],
        error: CircuitOpenError,
    ) -> None:
        """Park every fill request of a refused chunk, then re-raise."""
        for i in chunk:
            schema, primary_key, columns, known_values = requests[i]
            self._park_entry(
                {
                    "kind": "fill",
                    "table": schema.name,
                    "primary_key": _encode_parked_row(primary_key),
                    "columns": list(columns),
                    "known_values": {
                        column: _encode_parked(value)
                        for column, value in known_values.items()
                    },
                    "platform": platform,
                },
                key=keys[i],
            )
        raise error

    def replay_parked(self) -> int:
        """Re-issue parked HIT work through the public ``begin_*`` API.

        Called automatically at the next crowd activity after a breaker
        closes (and available to the shell/benchmarks directly).  Replayed
        futures register in the shared task pool, so statements that retry
        the same predicate reuse them — zero repurchased assignments.
        Returns the number of entries successfully re-issued.
        """
        if self._replaying or not len(self.retry_queue):
            return 0
        self._replaying = True
        replayed = 0
        try:
            entries = self.retry_queue.drain()
            for position, entry in enumerate(entries):
                try:
                    self._replay_entry(entry)
                    replayed += 1
                except CircuitOpenError:
                    # Platform is sick again: keep the remainder parked.
                    self.retry_queue.requeue(entries[position:])
                    break
                except Exception:
                    self.stats.bump("breaker_replay_failed")
        finally:
            self._replaying = False
            self._replay_pending = len(self.retry_queue) > 0
        if replayed:
            self.stats.bump("breaker_replayed", replayed)
            if self.tracer is not None:
                self.tracer.emit("breaker.replay", count=replayed)
        return replayed

    def _maybe_replay(self) -> None:
        if self._replay_pending and not self._replaying:
            self.replay_parked()

    def _replay_entry(self, entry: dict) -> None:
        kind = entry["kind"]
        platform = entry.get("platform")
        if kind == "fill":
            schema = self.ui_manager.catalog.table(entry["table"])
            self.begin_fill(
                schema,
                _decode_parked_row(entry["primary_key"]),
                tuple(entry["columns"]),
                {
                    column: _decode_parked(value)
                    for column, value in entry["known_values"].items()
                },
                platform,
            )
        elif kind == "new":
            schema = self.ui_manager.catalog.table(entry["table"])
            self.begin_new_tuples(
                schema,
                int(entry["count"]),
                {
                    column: _decode_parked(value)
                    for column, value in entry["fixed_values"].items()
                },
                platform,
                known_keys={
                    _decode_parked_row(row) for row in entry["known_keys"]
                },
            )
        elif kind == "eq":
            self.begin_compare_equal(
                _decode_parked(entry["left"]),
                _decode_parked(entry["right"]),
                entry["question"],
                platform,
            )
        elif kind == "ord":
            self.begin_compare_order(
                _decode_parked(entry["left"]),
                _decode_parked(entry["right"]),
                entry["question"],
                platform,
            )
        else:
            raise ExecutionError(f"unknown parked entry kind {kind!r}")

    # -- adaptive quality plumbing ---------------------------------------------------

    def attach_reputation(self, store: ReputationStore) -> None:
        """Wire a reputation store in (done by ``connect()``)."""
        self.reputation = store

    @property
    def adaptive_enabled(self) -> bool:
        return self.config.target_confidence is not None

    @property
    def weighting_enabled(self) -> bool:
        """Whether votes are reputation-weighted (on iff adaptive unless
        ``config.reputation_weighting`` forces it)."""
        if self.reputation is None:
            return False
        if self.config.reputation_weighting is not None:
            return self.config.reputation_weighting
        return self.adaptive_enabled

    def _initial_replication(self) -> int:
        if self.adaptive_enabled:
            return max(1, min(self.config.min_replication,
                              self.config.max_replication))
        return self.config.replication

    def _ballot_voter(self) -> MajorityVote:
        """The settle-time voter (reputation-weighted when enabled)."""
        return MajorityVote(
            self.config.min_agreement,
            reputation=self.reputation if self.weighting_enabled else None,
            tracer=self.tracer,
        )

    def _probe_voter(self) -> MajorityVote:
        """The confidence-probe voter (never warns, same weighting)."""
        return MajorityVote(
            0.0,
            reputation=self.reputation if self.weighting_enabled else None,
        )

    def _make_adaptive(
        self, confidence_of: Callable[[CrowdFuture], float]
    ) -> Optional[AdaptiveReplication]:
        if not self.adaptive_enabled:
            return None
        return AdaptiveReplication(self, confidence_of)

    # -- CrowdProbe: fill CNULL values --------------------------------------------

    def fill_values(
        self,
        schema: TableSchema,
        primary_key: tuple[Any, ...],
        columns: tuple[str, ...],
        known_values: dict[str, Any],
        platform: Optional[str] = None,
    ) -> dict[str, Any]:
        """Source the missing values of one tuple.

        Returns ``column -> typed value`` — NULL when the crowd answered
        "no value" or never answered within the timeout.
        """
        future = self.begin_fill(
            schema, primary_key, columns, known_values, platform
        )
        self.wait(future)
        return future.result()

    def begin_fill(
        self,
        schema: TableSchema,
        primary_key: tuple[Any, ...],
        columns: tuple[str, ...],
        known_values: dict[str, Any],
        platform: Optional[str] = None,
    ) -> CrowdFuture:
        """Post a fill task and return its future without waiting —
        a group of one (see :meth:`begin_fill_many`)."""
        (future,) = self.begin_fill_many(
            [(schema, primary_key, columns, known_values)], platform
        )
        return future

    def begin_fill_many(
        self,
        requests: list[tuple],
        platform: Optional[str] = None,
    ) -> list[CrowdFuture]:
        """Group-issue fill tasks: one future per request, all posted
        before any is waited on.

        ``requests`` are ``(schema, primary_key, columns, known_values)``
        tuples.  Requests already in flight (shared task pool, or earlier
        in this batch) reuse the pending future; the rest are packaged
        into paper-style HIT groups — up to ``config.hit_group_size``
        tasks sharing a table and column set become one HIT whose answers
        fan back out to per-request futures on settlement.
        """
        self._maybe_replay()
        futures: list[Optional[CrowdFuture]] = [None] * len(requests)
        keys: list[tuple] = []
        fresh: dict[tuple, list[int]] = {}   # (table, columns) -> indexes
        local: dict[tuple, int] = {}         # intra-batch dedup
        for i, (schema, primary_key, columns, known_values) in enumerate(
            requests
        ):
            self.stats.fill_requests += 1
            key = (
                "fill",
                schema.name,
                tuple(primary_key),
                tuple(columns),
                self._platform_key(platform),
            )
            keys.append(key)
            shared = self._pool_lookup(key)
            if shared is not None:
                futures[i] = shared
                continue
            if key in local:
                continue  # patched to the first occurrence's future below
            local[key] = i
            group = (schema.name, tuple(c.lower() for c in columns))
            fresh.setdefault(group, []).append(i)

        group_size = max(1, self.config.hit_group_size)
        for indexes in fresh.values():
            for start in range(0, len(indexes), group_size):
                chunk = indexes[start : start + group_size]
                try:
                    if len(chunk) == 1:
                        i = chunk[0]
                        schema, primary_key, columns, known_values = requests[i]
                        futures[i] = self._issue_fill(
                            schema, primary_key, columns, known_values,
                            platform, keys[i],
                        )
                    else:
                        self._issue_fill_group(
                            requests, keys, chunk, platform, futures
                        )
                except CircuitOpenError as error:
                    self._park_fills(requests, keys, chunk, platform, error)
        for i, key in enumerate(keys):
            if futures[i] is None:  # intra-batch duplicate
                futures[i] = futures[local[key]]
        return futures

    def _fill_task(
        self,
        schema: TableSchema,
        primary_key: tuple[Any, ...],
        columns: tuple[str, ...],
        known_values: dict[str, Any],
    ) -> FillTask:
        return FillTask(
            table=schema.name,
            primary_key=primary_key,
            columns=columns,
            known_values=dict(known_values),
            column_types={
                c: str(schema.column(c).sql_type) for c in columns
            },
            instructions=(
                f"Fill in the missing fields of this {schema.name} record."
            ),
        )

    def _issue_fill(
        self,
        schema: TableSchema,
        primary_key: tuple[Any, ...],
        columns: tuple[str, ...],
        known_values: dict[str, Any],
        platform: Optional[str],
        key: tuple,
    ) -> CrowdFuture:
        task = self._fill_task(schema, primary_key, columns, known_values)
        template = self.ui_manager.fill_template(schema, columns)
        form_html = self.ui_manager.instantiate(template, known_values)
        hit = self._make_hit(task, form_html)
        return self._issue(
            "fill",
            key,
            [hit],
            platform,
            lambda hits: self._finish_fill(schema, columns, hits),
            adaptive=self._make_adaptive(
                lambda future: self._fill_confidence(columns, future.hits[0])
            ),
        )

    def _issue_fill_group(
        self,
        requests: list[tuple],
        keys: list[tuple],
        chunk: list[int],
        platform: Optional[str],
        futures: list[Optional[CrowdFuture]],
    ) -> None:
        """Package ``chunk`` (request indexes sharing a table and column
        set) into one grouped HIT and hand each request a member future."""
        schema = requests[chunk[0]][0]
        columns = tuple(requests[chunk[0]][2])
        subtasks = tuple(
            self._fill_task(*requests[i]) for i in chunk
        )
        task = FillGroupTask(
            table=schema.name,
            columns=columns,
            subtasks=subtasks,
            instructions=(
                f"Fill in the missing fields of these {len(subtasks)} "
                f"{schema.name} records."
            ),
        )
        template = self.ui_manager.fill_template(schema, columns)
        form_html = "\n<hr/>\n".join(
            self.ui_manager.instantiate(template, subtask.known_values)
            for subtask in subtasks
        )
        hit = self._make_hit(task, form_html, size=len(subtasks))
        parent_key = (
            "fillgroup",
            schema.name,
            tuple(subtask.primary_key for subtask in subtasks),
            columns,
            self._platform_key(platform),
        )
        parent = self._issue(
            "fill",
            parent_key,
            [hit],
            platform,
            lambda hits: self._finish_fill_group(
                schema, columns, len(subtasks), hits
            ),
            adaptive=self._make_adaptive(
                lambda future: self._fill_group_confidence(
                    columns, len(subtasks), future.hits[0]
                )
            ),
        )
        if self.tracer is not None:
            self.tracer.emit(
                "hit.group",
                sim=parent.posted_at,
                hit=hit.hit_id,
                table=schema.name,
                columns=list(columns),
                members=len(chunk),
            )
        for index, i in enumerate(chunk):
            member = CrowdFuture.member(parent, keys[i], index)
            futures[i] = member
            if self.task_pool is not None:
                self.task_pool.register(member)

    def _vote_fill(
        self,
        schema: TableSchema,
        columns: tuple[str, ...],
        answers: list[tuple[str, dict[str, Any]]],
        task: Optional[FillTask] = None,
    ) -> dict[str, Any]:
        """Weighted per-column consensus over ``(worker_id, answer)``
        pairs; feeds the reputation ledger and deposits confident
        verdicts into the gold bank."""
        voter = self._ballot_voter()
        result: dict[str, Any] = {}
        gold_expected: dict[str, Any] = {}
        gold_worthy = True
        for column in columns:
            ballots = [
                Ballot(value=answer.get(column, ""), worker_id=worker_id)
                for worker_id, answer in answers
                if str(answer.get(column, "")).strip()
            ]
            if not ballots:
                result[column] = NULL
                gold_worthy = False
                continue
            vote = voter.vote_ballots(ballots)
            self._record_verdict(ballots, vote)
            result[column] = self._parse(schema, column, vote.value)
            if vote.confidence >= _GOLD_DEPOSIT_CONFIDENCE:
                gold_expected[column] = vote.value
            else:
                gold_worthy = False
        if (
            gold_worthy
            and gold_expected
            and task is not None
            and self.reputation is not None
            and self.config.gold_rate > 0
        ):
            self.reputation.add_gold(task, gold_expected)
        return result

    def _fill_answers(self, hit: HIT) -> list[tuple[str, dict[str, Any]]]:
        return [
            (a.worker_id, a.answer)
            for a in hit.assignments
            if isinstance(a.answer, dict)
        ]

    def _finish_fill(
        self,
        schema: TableSchema,
        columns: tuple[str, ...],
        hits: list[HIT],
    ) -> dict[str, Any]:
        (hit,) = hits
        task = hit.task if isinstance(hit.task, FillTask) else None
        return self._vote_fill(
            schema, columns, self._fill_answers(hit), task=task
        )

    def _group_answers(
        self, hit: HIT, index: int
    ) -> list[tuple[str, dict[str, Any]]]:
        return [
            (a.worker_id, a.answer[index])
            for a in hit.assignments
            if isinstance(a.answer, (list, tuple))
            and index < len(a.answer)
            and isinstance(a.answer[index], dict)
        ]

    def _finish_fill_group(
        self,
        schema: TableSchema,
        columns: tuple[str, ...],
        count: int,
        hits: list[HIT],
    ) -> list[dict[str, Any]]:
        """Vote each subtask of a grouped HIT independently: answers are
        per-assignment lists parallel to the group's subtasks."""
        (hit,) = hits
        subtasks = getattr(hit.task, "subtasks", ())
        results: list[dict[str, Any]] = []
        for index in range(count):
            task = subtasks[index] if index < len(subtasks) else None
            results.append(
                self._vote_fill(
                    schema, columns, self._group_answers(hit, index),
                    task=task,
                )
            )
        return results

    def _record_verdict(self, ballots: list[Ballot], vote: VoteResult) -> None:
        """Settle-time bookkeeping: confidence telemetry plus consensus
        observations on the reputation ledger (weighted by how sure the
        verdict itself is)."""
        self.stats.confidence_sum += vote.confidence
        self.stats.confidence_count += 1
        if self.reputation is None:
            return
        winner_key = normalize_answer(vote.value)
        for ballot in ballots:
            if not ballot.worker_id:
                continue
            agreed = normalize_answer(ballot.value) == winner_key
            self.reputation.observe_consensus(
                ballot.worker_id, agreed, weight=vote.confidence
            )

    # -- CrowdProbe / CrowdJoin: source new tuples -----------------------------------

    def source_new_tuples(
        self,
        schema: TableSchema,
        count: int,
        fixed_values: Optional[dict[str, Any]] = None,
        platform: Optional[str] = None,
        known_keys: Optional[set] = None,
    ) -> list[dict[str, Any]]:
        """Ask the crowd for up to ``count`` new tuples of a CROWD table.

        ``fixed_values`` pre-fill constrained columns (e.g. the join key a
        CrowdJoin probes with).  Tuples whose primary key normalizes into
        ``known_keys`` (already stored) are dropped, as are duplicates
        within the batch — the open-world de-duplication rule.
        """
        future = self.begin_new_tuples(
            schema, count, fixed_values, platform, known_keys
        )
        self.wait(future)
        return future.result()

    def begin_new_tuples(
        self,
        schema: TableSchema,
        count: int,
        fixed_values: Optional[dict[str, Any]] = None,
        platform: Optional[str] = None,
        known_keys: Optional[set] = None,
    ) -> CrowdFuture:
        """Post new-tuple tasks and return their future without waiting."""
        self._maybe_replay()
        self.stats.new_tuple_requests += 1
        fixed = {k.lower(): v for k, v in (fixed_values or {}).items()}
        key = (
            "new",
            schema.name,
            count,
            tuple(sorted(fixed.items())),
            frozenset(known_keys or ()),
            self._platform_key(platform),
        )
        shared = self._pool_lookup(key)
        if shared is not None:
            return shared
        task = NewTupleTask(
            table=schema.name,
            columns=schema.column_names,
            fixed_values=fixed,
            column_types={
                c.name: str(c.sql_type) for c in schema.columns
            },
            instructions=f"Contribute a new {schema.name} record.",
        )
        template = self.ui_manager.new_tuple_template(
            schema, tuple(fixed.keys())
        )
        form_html = self.ui_manager.instantiate(template, fixed)
        hits = [
            self._make_hit(task, form_html, replication=self.config.replication)
            for _ in range(count)
        ]
        frozen_known = set(known_keys or set())
        try:
            return self._issue(
                "new",
                key,
                hits,
                platform,
                lambda done: self._finish_new_tuples(
                    schema, fixed, frozen_known, done
                ),
            )
        except CircuitOpenError as error:
            self._park_entry(
                {
                    "kind": "new",
                    "table": schema.name,
                    "count": count,
                    "fixed_values": {
                        column: _encode_parked(value)
                        for column, value in fixed.items()
                    },
                    "known_keys": [
                        _encode_parked_row(row) for row in frozen_known
                    ],
                    "platform": platform,
                },
                key=key,
            )
            raise error

    def _finish_new_tuples(
        self,
        schema: TableSchema,
        fixed: dict[str, Any],
        known_keys: set,
        hits: list[HIT],
    ) -> list[dict[str, Any]]:
        # Different assignments of one HIT legitimately contribute
        # *different* tuples, so voting happens within primary-key groups:
        # assignments agreeing on the key are replicas of one entity and
        # their non-key fields are majority-voted; distinct keys are
        # distinct new tuples (open-world de-duplication).
        pk_columns = tuple(schema.primary_key)
        answers: list[dict[str, Any]] = []
        for hit in hits:
            for assignment in hit.assignments:
                if not isinstance(assignment.answer, dict):
                    continue
                if not any(str(v).strip() for v in assignment.answer.values()):
                    continue
                answers.append(assignment.answer)
        if not answers:
            return []

        groups: dict[tuple, list[dict[str, Any]]] = {}
        order: list[tuple] = []
        for answer in answers:
            key = tuple(
                normalize_answer(str(answer.get(c, "")).strip())
                for c in pk_columns
            )
            if pk_columns and any(part == "" for part in key):
                continue  # a tuple without its key cannot be stored
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(answer)

        # Cleansing: merge near-duplicate keys (worker typos) into the
        # best-supported spelling, then drop keys that are merely typo
        # variants of tuples already stored.
        if pk_columns and len(order) > 1 and self.config.fuzzy_cleansing:
            order = _merge_similar_keys(groups, order)

        seen: set = set(known_keys)
        if pk_columns and self.config.fuzzy_cleansing:
            order = [
                key for key in order if not _is_near_duplicate(key, seen)
            ]
        tuples: list[dict[str, Any]] = []
        for key in order:
            if pk_columns and key in seen:
                continue
            votes = self._voter.vote_fields(groups[key])
            row: dict[str, Any] = {}
            for column in schema.columns:
                if column.name.lower() in fixed:
                    row[column.name] = fixed[column.name.lower()]
                    continue
                vote = votes.get(column.name)
                if vote is None or not str(vote.value).strip():
                    row[column.name] = NULL
                else:
                    row[column.name] = self._parse(schema, column.name, vote.value)
            if pk_columns:
                seen.add(key)
            tuples.append(row)
        return tuples

    # -- CrowdCompare --------------------------------------------------------------------

    def compare_equal(
        self,
        left: Any,
        right: Any,
        question: Optional[str] = None,
        platform: Optional[str] = None,
    ) -> bool:
        """CROWDEQUAL ballot: do the two values denote the same entity?"""
        future = self.begin_compare_equal(left, right, question, platform)
        self.wait(future)
        return future.result()

    def begin_compare_equal(
        self,
        left: Any,
        right: Any,
        question: Optional[str] = None,
        platform: Optional[str] = None,
    ) -> CrowdFuture:
        """Post (or reuse) a CROWDEQUAL ballot; never advances the clock."""
        self._maybe_replay()
        cache_key = (normalize_answer(left), normalize_answer(right))
        key = ("eq",) + cache_key + (self._platform_key(platform),)
        cached = self._equal_cache.get(cache_key)
        if cached is None:
            cached = self._equal_cache.get((cache_key[1], cache_key[0]))
        if cached is not None:
            self.stats.cache_hits += 1
            return CrowdFuture.resolved("eq", key, cached)
        shared = self._pool_lookup(key)
        if shared is not None:
            return shared
        # equality is symmetric: a pending ballot for (b, a) answers (a, b)
        mirrored_pending = self._pool_lookup(
            ("eq", cache_key[1], cache_key[0], self._platform_key(platform))
        )
        if mirrored_pending is not None:
            return mirrored_pending
        self.stats.compare_requests += 1
        task = CompareEqualTask(
            left=left,
            right=right,
            question=question or "Do these two values refer to the same thing?",
        )
        template = self.ui_manager.compare_equal_template()
        form_html = self.ui_manager.instantiate(
            template, {"left": left, "right": right}
        )
        hit = self._make_hit(task, form_html)
        try:
            return self._issue(
                "eq",
                key,
                [hit],
                platform,
                lambda hits: self._finish_compare_equal(cache_key, hits),
                adaptive=self._make_adaptive(
                    lambda future: self._ballot_confidence(
                        future.hits[0], lambda a: bool(a.answer)
                    )
                ),
            )
        except CircuitOpenError as error:
            self._park_entry(
                {
                    "kind": "eq",
                    "left": _encode_parked(left),
                    "right": _encode_parked(right),
                    "question": question,
                    "platform": platform,
                },
                key=key,
            )
            raise error

    def _finish_compare_equal(self, cache_key: tuple, hits: list[HIT]) -> bool:
        (hit,) = hits
        ballots = [
            Ballot(value=bool(a.answer), worker_id=a.worker_id)
            for a in hit.assignments
        ]
        if not ballots:
            answer = False  # no worker responded: conservatively not equal
        else:
            vote = self._ballot_voter().vote_ballots(ballots)
            self._record_verdict(ballots, vote)
            answer = bool(vote.value)
            self._maybe_deposit_compare_gold(hit.task, answer, vote)
        self._equal_cache[cache_key] = answer
        if self.ledger is not None:
            self.ledger.record_equal(cache_key[0], cache_key[1], answer)
        return answer

    def compare_order(
        self,
        left: Any,
        right: Any,
        question: str,
        platform: Optional[str] = None,
    ) -> bool:
        """CROWDORDER ballot: should ``left`` be ranked before ``right``?"""
        future = self.begin_compare_order(left, right, question, platform)
        self.wait(future)
        return future.result()

    def begin_compare_order(
        self,
        left: Any,
        right: Any,
        question: str,
        platform: Optional[str] = None,
    ) -> CrowdFuture:
        """Post (or reuse) a CROWDORDER ballot; never advances the clock."""
        self._maybe_replay()
        left_key = normalize_answer(left)
        right_key = normalize_answer(right)
        key = ("ord", question, left_key, right_key, self._platform_key(platform))
        if left_key == right_key:
            return CrowdFuture.resolved("ord", key, True)
        cache_key = (question, left_key, right_key)
        cached = self._order_cache.get(cache_key)
        if cached is None:
            mirrored = self._order_cache.get((question, right_key, left_key))
            if mirrored is not None:
                cached = "right" if mirrored == "left" else "left"
        if cached is not None:
            self.stats.cache_hits += 1
            return CrowdFuture.resolved("ord", key, cached == "left")
        shared = self._pool_lookup(key)
        if shared is not None:
            return shared
        # a pending ballot for the opposite direction is the same question
        # with the answer inverted — ride its HITs instead of reposting
        mirrored_pending = self._pool_lookup(
            ("ord", question, right_key, left_key, self._platform_key(platform))
        )
        if mirrored_pending is not None:
            return CrowdFuture.mirrored(mirrored_pending, key, invert=True)
        self.stats.compare_requests += 1
        task = CompareOrderTask(left=left, right=right, question=question)
        template = self.ui_manager.compare_order_template(question)
        form_html = self.ui_manager.instantiate(
            template, {"left": left, "right": right}
        )
        hit = self._make_hit(task, form_html)
        try:
            return self._issue(
                "ord",
                key,
                [hit],
                platform,
                lambda hits: self._finish_compare_order(cache_key, hits),
                adaptive=self._make_adaptive(
                    lambda future: self._ballot_confidence(
                        future.hits[0],
                        lambda a: a.answer,
                        accept=lambda a: a.answer in ("left", "right"),
                    )
                ),
            )
        except CircuitOpenError as error:
            self._park_entry(
                {
                    "kind": "ord",
                    "left": _encode_parked(left),
                    "right": _encode_parked(right),
                    "question": question,
                    "platform": platform,
                },
                key=key,
            )
            raise error

    def _finish_compare_order(self, cache_key: tuple, hits: list[HIT]) -> bool:
        (hit,) = hits
        ballots = [
            Ballot(value=a.answer, worker_id=a.worker_id)
            for a in hit.assignments
            if a.answer in ("left", "right")
        ]
        if not ballots:
            winner = "left"  # stable fallback: keep current order
        else:
            vote = self._ballot_voter().vote_ballots(ballots)
            self._record_verdict(ballots, vote)
            winner = str(vote.value)
            self._maybe_deposit_compare_gold(hit.task, winner, vote)
        self._order_cache[cache_key] = winner
        if self.ledger is not None:
            self.ledger.record_order(
                cache_key[0], cache_key[1], cache_key[2], winner
            )
        return winner == "left"

    # -- confidence probes (adaptive replication) ----------------------------------------

    def _fill_confidence(self, columns: tuple[str, ...], hit: HIT) -> float:
        """Current confidence of one fill HIT: the weakest column wins.

        Blank answers vote for the empty class — a crowd unanimously
        reporting "no value" is a confident verdict, not a reason to pay
        for more assignments.
        """
        answers = self._fill_answers(hit)
        if not answers:
            return 0.0
        voter = self._probe_voter()
        confidence = 1.0
        for column in columns:
            ballots = [
                Ballot(value=answer.get(column, ""), worker_id=worker_id)
                for worker_id, answer in answers
            ]
            vote = voter.vote_ballots(ballots, quiet=True)
            confidence = min(confidence, vote.confidence)
        return confidence

    def _fill_group_confidence(
        self, columns: tuple[str, ...], count: int, hit: HIT
    ) -> float:
        """A grouped HIT extends until its least confident subtask is
        happy (one extension buys a ballot for every member)."""
        voter = self._probe_voter()
        confidence = 1.0
        for index in range(count):
            answers = self._group_answers(hit, index)
            if not answers:
                return 0.0
            for column in columns:
                ballots = [
                    Ballot(value=answer.get(column, ""), worker_id=worker_id)
                    for worker_id, answer in answers
                ]
                vote = voter.vote_ballots(ballots, quiet=True)
                confidence = min(confidence, vote.confidence)
        return confidence

    def _ballot_confidence(
        self,
        hit: HIT,
        value_of: Callable[[Any], Any],
        accept: Optional[Callable[[Any], bool]] = None,
    ) -> float:
        """Confidence of a comparison HIT's current ballots."""
        ballots = [
            Ballot(value=value_of(a), worker_id=a.worker_id)
            for a in hit.assignments
            if accept is None or accept(a)
        ]
        if not ballots:
            return 0.0
        return self._probe_voter().vote_ballots(ballots, quiet=True).confidence

    # -- gold-standard probes ------------------------------------------------------------

    def _maybe_deposit_compare_gold(
        self, task: Any, answer: Any, vote: VoteResult
    ) -> None:
        if (
            self.reputation is None
            or self.config.gold_rate <= 0
            or vote.confidence < _GOLD_DEPOSIT_CONFIDENCE
        ):
            return
        self.reputation.add_gold(task, answer)

    def _maybe_inject_gold(
        self, platform: CrowdPlatform, issued_hits: int
    ) -> None:
        """Shadow real work with known-answer probes at ``gold_rate``.

        Injection is a deterministic accumulator (no randomness): every
        ``1/gold_rate`` real HITs, one banked gold task is re-posted with
        a single assignment.  Whoever answers it gets graded against the
        known answer when the probe is swept at the next settlement.
        """
        if self.reputation is None or self.config.gold_rate <= 0:
            return
        self._gold_accumulator += self.config.gold_rate * issued_hits
        while self._gold_accumulator >= 1.0:
            self._gold_accumulator -= 1.0
            gold = self.reputation.next_gold()
            if gold is None:
                return
            if self.config.budget_cents is not None and (
                self.stats.cost_cents + self.config.reward_cents
                > self.config.budget_cents
            ):
                return  # never let probes blow the query budget
            hit = HIT(
                task=gold.task,
                reward_cents=self.config.reward_cents,
                assignments_requested=1,
                form_html="",
                locality=self.config.locality,
            )
            try:
                self._platform_call(platform, "post_hit", hit)
            except TransientPlatformError:
                # a probe is optional work — skip it rather than fail the
                # real query it shadows
                self.stats.bump("gold_posts_abandoned")
                continue
            clock = getattr(platform, "clock", None)
            posted_at = clock.now if clock is not None else 0.0
            self.stats.hits_posted += 1
            self.stats.gold_hits_posted += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "gold.issue",
                    sim=posted_at,
                    hit=hit.hit_id,
                    platform=getattr(platform, "name", "?"),
                    reward_cents=hit.reward_cents,
                )
            self._gold_pending.append((hit, gold.expected, platform, posted_at))

    def _sweep_gold(self) -> None:
        """Grade and account every finished gold probe (called from
        :meth:`settle`, so probes resolve in the same rounds as the real
        work they shadow)."""
        if not self._gold_pending:
            return
        remaining: list[tuple[HIT, Any, CrowdPlatform, float]] = []
        for entry in self._gold_pending:
            hit, expected, platform, posted_at = entry
            if hit.status is HITStatus.OPEN:
                clock = getattr(platform, "clock", None)
                deadline = posted_at + self.config.timeout_seconds
                if clock is not None and clock.now < deadline:
                    remaining.append(entry)
                    continue
                platform.expire_hit(hit.hit_id)
            self._score_gold(hit, expected)
            self.stats.assignments_received += len(hit.assignments)
            self.stats.cost_cents += hit.reward_cents * len(hit.assignments)
            # parallel gold-only counters let per-statement accounting
            # attribute probe spend without a global delta over the real
            # counters (which concurrent sessions would pollute)
            self.stats.gold_assignments_received += len(hit.assignments)
            self.stats.gold_cost_cents += (
                hit.reward_cents * len(hit.assignments)
            )
        self._gold_pending = remaining

    def _score_gold(self, hit: HIT, expected: Any) -> None:
        for assignment in hit.assignments:
            correct = _gold_answer_correct(hit.task, expected, assignment.answer)
            if correct is None:
                continue
            self.reputation.observe_gold(assignment.worker_id, correct)
            self.stats.gold_answers_scored += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "gold.score",
                    hit=hit.hit_id,
                    worker=assignment.worker_id,
                    correct=correct,
                )

    # -- issue / poll / resume protocol -------------------------------------------------

    def _issue(
        self,
        kind: str,
        key: tuple,
        hits: list[HIT],
        platform_name: Optional[str],
        finalize: Callable[[list[HIT]], Any],
        adaptive: Optional[AdaptiveReplication] = None,
    ) -> CrowdFuture:
        """Budget-check, post, and wrap the HITs in an unsettled future."""
        projected = sum(
            hit.reward_cents * hit.assignments_requested for hit in hits
        )
        if (
            self.config.budget_cents is not None
            and self.stats.cost_cents + projected > self.config.budget_cents
        ):
            raise BudgetExceededError(
                f"posting {len(hits)} HIT(s) (~{projected}c) would exceed the "
                f"budget of {self.config.budget_cents}c "
                f"({self.stats.cost_cents}c already spent)"
            )
        platform = self.platforms.get(platform_name or self.config.platform)
        # per-HIT retried posts: a transient failure mid-batch must not
        # re-post the HITs that already made it to the marketplace
        for hit in hits:
            self._platform_call(platform, "post_hit", hit)
        self.stats.hits_posted += len(hits)
        self.stats.bump(f"hits_{kind}", len(hits))
        clock = getattr(platform, "clock", None)
        posted_at = clock.now if clock is not None else 0.0
        future = CrowdFuture(
            kind=kind,
            key=key,
            hits=hits,
            platform=platform,
            posted_at=posted_at,
            timeout_seconds=self.config.timeout_seconds,
            finalize=finalize,
        )
        future.adaptive = adaptive
        if self.tracer is not None:
            for hit in hits:
                group = getattr(hit.task, "subtasks", None)
                self.tracer.emit(
                    "hit.issue",
                    sim=posted_at,
                    hit=hit.hit_id,
                    task_kind=kind,
                    platform=getattr(platform, "name", "?"),
                    reward_cents=hit.reward_cents,
                    replication=hit.assignments_requested,
                    group_size=len(group) if group is not None else 1,
                    adaptive=adaptive is not None,
                )
        if self.task_pool is not None:
            self.task_pool.register(future)
        self._maybe_inject_gold(platform, len(hits))
        return future

    def wait(self, future: CrowdFuture, until: Optional[float] = None) -> None:
        """Serial path: advance the platform clock until the future is
        done (or its deadline passes), then settle it.

        An adaptive future may *extend* its HITs when polled (see
        :meth:`CrowdFuture.ready`), so the wait loops over marketplace
        rounds until the verdict is confident, capped, or out of time.

        ``until`` is a statement guard's absolute sim-time cap: when the
        *cap* (not the future's own HIT deadline) ends the wait, the
        future is left **unsettled** and registered in the task pool —
        the statement degrades to a partial result and a later retry of
        the same predicate reuses the still-running HITs for free.
        """
        target = future.mirror_of if future.mirror_of is not None else future
        while not target.settled and not target.ready():
            clock = getattr(target.platform, "clock", None)
            remaining = target.timeout_seconds
            if clock is not None:
                remaining = max(0.0, target.deadline - clock.now)
                if until is not None:
                    remaining = min(remaining, max(0.0, until - clock.now))
            self.stats.marketplace_rounds += 1
            met = target.platform.run_until(target.ready, remaining)
            if not met and clock is not None:
                if (
                    until is not None
                    and clock.now >= until
                    and not target.past_deadline()
                ):
                    return  # guard cap hit first: leave it running
                break  # deadline reached with work still open
        self.settle(future)

    def wait_many(
        self, futures: list[CrowdFuture], until: Optional[float] = None
    ) -> None:
        """Serial path for a batch: every HIT of the set is already in the
        marketplace, so advance each platform's clock until the whole set
        is done (or past its deadlines), then settle all — the batch pays
        overlapped rounds instead of ``len(futures)`` sequential ones.
        Adaptive members re-enter the marketplace round-by-round as their
        ``ready()`` polls extend under-confident HITs.

        ``until`` caps the wait at a statement guard's deadline; see
        :meth:`wait`.  Members ready by then settle, the rest stay live
        in the task pool."""
        pending: list[CrowdFuture] = []
        seen: set[int] = set()
        for future in futures:
            target = future.mirror_of if future.mirror_of is not None else future
            if target.settled or id(target) in seen:
                continue
            seen.add(id(target))
            if target.platform is not None:
                pending.append(target)
        by_platform: dict[int, list[CrowdFuture]] = {}
        for future in pending:
            by_platform.setdefault(id(future.platform), []).append(future)
        for group in by_platform.values():
            platform = group[0].platform
            clock = getattr(platform, "clock", None)

            def all_ready(group=group) -> bool:
                # all() short-circuits; sum forces every member's poll so
                # adaptive extensions are not starved by a slow sibling
                return sum(0 if f.ready() else 1 for f in group) == 0

            while not all_ready():
                if clock is not None:
                    timeout = max(
                        0.0, max(f.deadline for f in group) - clock.now
                    )
                    if until is not None:
                        timeout = min(timeout, max(0.0, until - clock.now))
                else:
                    timeout = max(f.timeout_seconds for f in group)
                self.stats.marketplace_rounds += 1
                met = platform.run_until(all_ready, timeout)
                if not met and clock is not None:
                    break  # deadlines (or the guard cap) reached
        if until is not None:
            # Settle only what finished; leave the rest live for reuse.
            for future in futures:
                target = (
                    future.mirror_of if future.mirror_of is not None else future
                )
                if target.settled or target.ready() or target.past_deadline():
                    self.settle(future)
            return
        self.settle_many(futures)

    def settle_many(self, futures: list[CrowdFuture]) -> None:
        """Finalize every future of a batch (idempotent, like
        :meth:`settle`)."""
        for future in futures:
            self.settle(future)

    def settle(self, future: CrowdFuture) -> Any:
        """Finalize a completed (or timed-out) future: expire stragglers,
        account costs, vote, parse.  Idempotent — shared futures settle
        once and fan the answer out to every waiter."""
        if future.mirror_of is not None:
            self.settle(future.mirror_of)
            if self.task_pool is not None:
                self.task_pool.forget(future)
            return future.result()
        if future.settled:
            return future._value
        timed_out = not future.hits_closed()
        if timed_out:
            self.stats.timeouts += 1
            for hit in future.hits:
                if hit.status is HITStatus.OPEN:
                    future.platform.expire_hit(hit.hit_id)
        assignments = sum(len(hit.assignments) for hit in future.hits)
        cents = sum(
            hit.reward_cents * len(hit.assignments) for hit in future.hits
        )
        self.stats.assignments_received += assignments
        self.stats.cost_cents += cents
        # capture the verdict-confidence telemetry finalization records,
        # then stamp the future with its own accounting so every waiting
        # statement attributes exactly this future's spend to itself
        confidence_sum_before = self.stats.confidence_sum
        confidence_count_before = self.stats.confidence_count
        future._value = future._finalize(future.hits)
        future._settled = True
        future.accounting = {
            "assignments": assignments,
            "cost_cents": cents,
            "confidence_sum": (
                self.stats.confidence_sum - confidence_sum_before
            ),
            "confidence_count": (
                self.stats.confidence_count - confidence_count_before
            ),
        }
        if self.tracer is not None:
            clock = getattr(future.platform, "clock", None)
            sim_now = clock.now if clock is not None else 0.0
            # adaptive futures carry their probe confidence; for
            # fixed-replication ones report the mean verdict confidence
            # recorded while finalizing
            confidence = future.confidence
            if confidence is None and future.accounting["confidence_count"]:
                confidence = (
                    future.accounting["confidence_sum"]
                    / future.accounting["confidence_count"]
                )
            self.tracer.emit(
                "future.settle",
                sim=sim_now,
                task_kind=future.kind,
                hits=[hit.hit_id for hit in future.hits],
                workers=sorted(
                    {
                        a.worker_id
                        for hit in future.hits
                        for a in hit.assignments
                        if a.worker_id
                    }
                ),
                assignments=assignments,
                cost_cents=cents,
                confidence=(
                    round(confidence, 4) if confidence is not None else None
                ),
                extensions=future.extensions,
                timed_out=timed_out,
                latency_seconds=round(max(0.0, sim_now - future.posted_at), 3),
            )
        if self.task_pool is not None:
            self.task_pool.forget(future)
        # the same work may sit parked in the retry queue (refused by an
        # open breaker, then reissued by a retried statement): now that
        # it settled, replaying the parked copy would buy it again
        if future.key is not None and len(self.retry_queue):
            stale = self.retry_queue.discard(_key_signature(future.key))
            if stale:
                self.stats.bump("breaker_parked_superseded", stale)
        self._sweep_gold()
        return future._value

    # -- internals -----------------------------------------------------------------------

    def _platform_key(self, platform_name: Optional[str]) -> str:
        """The registry key two requests must share to be poolable."""
        name = platform_name or self.config.platform
        return (name or "").lower() or "@default"

    def _pool_lookup(self, key: tuple) -> Optional[CrowdFuture]:
        if self.task_pool is None:
            return None
        return self.task_pool.lookup(key)

    def _make_hit(
        self,
        task: Any,
        form_html: str,
        size: int = 1,
        replication: Optional[int] = None,
    ) -> HIT:
        # grouped HITs pay proportionally: same per-task reward, one HIT;
        # adaptive mode starts at min_replication and extends on demand
        # (new-tuple sourcing keeps fixed replication: distinct
        # assignments contribute distinct tuples, so there is no single
        # verdict whose confidence could gate an extension)
        return HIT(
            task=task,
            reward_cents=self.config.reward_cents * size,
            assignments_requested=(
                self._initial_replication() if replication is None
                else replication
            ),
            form_html=form_html,
            locality=self.config.locality,
        )

    @staticmethod
    def _parse(schema: TableSchema, column: str, raw: Any) -> Any:
        sql_type = schema.column(column).sql_type
        try:
            return parse_literal(str(raw), sql_type)
        except TypeError_:
            return NULL


#: Verdicts at least this confident are safe to re-ask as gold probes.
_GOLD_DEPOSIT_CONFIDENCE = 0.9


def _gold_answer_correct(task: Any, expected: Any, answer: Any) -> Optional[bool]:
    """Grade one worker answer against a gold task's known answer
    (``None`` when the answer has the wrong shape to grade)."""
    if isinstance(task, FillTask):
        if not isinstance(answer, dict) or not isinstance(expected, dict):
            return None
        return all(
            normalize_answer(str(answer.get(column, "")))
            == normalize_answer(str(value))
            for column, value in expected.items()
        )
    if isinstance(task, CompareEqualTask):
        return bool(answer) == bool(expected)
    if isinstance(task, CompareOrderTask):
        if answer not in ("left", "right"):
            return None
        return answer == expected
    return None


_SIMILARITY_THRESHOLD = 0.82


def _keys_similar(a: tuple, b: tuple) -> bool:
    """Typo-level similarity between two normalized key tuples."""
    import difflib

    if len(a) != len(b):
        return False
    for part_a, part_b in zip(a, b):
        text_a, text_b = str(part_a), str(part_b)
        if text_a == text_b:
            continue
        ratio = difflib.SequenceMatcher(None, text_a, text_b).ratio()
        if ratio < _SIMILARITY_THRESHOLD:
            return False
    return True


def _merge_similar_keys(
    groups: dict[tuple, list[dict[str, Any]]], order: list[tuple]
) -> list[tuple]:
    """Fold typo-variant key groups into the best-supported spelling.

    Keys are processed by descending support, so a singleton typo merges
    into the group the majority of workers agreed on.
    """
    by_support = sorted(order, key=lambda key: -len(groups[key]))
    canonical: list[tuple] = []
    for key in by_support:
        merged = False
        for existing in canonical:
            if _keys_similar(key, existing):
                groups[existing].extend(groups.pop(key))
                merged = True
                break
        if not merged:
            canonical.append(key)
    return [key for key in order if key in groups]


def _is_near_duplicate(key: tuple, known: set) -> bool:
    """Is ``key`` exactly or approximately one of the stored keys?"""
    if key in known:
        return True
    return any(_keys_similar(key, stored) for stored in known)


# -- retry-queue value codec ---------------------------------------------------
#
# Parked issue descriptors must be JSON lines (the queue is durable), but
# crowd values include the NULL/CNULL singletons.  Same tagged-dict scheme
# as the WAL codec; duplicated here so crowd/ stays import-independent of
# storage/.


def _encode_parked(value: Any) -> Any:
    """JSON-safe encoding of one parked crowd value."""
    if value is NULL or value is None:
        return {"$": "null"}
    if value is CNULL:
        return {"$": "cnull"}
    return value


def _decode_parked(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("$")
        if tag == "null":
            return NULL
        if tag == "cnull":
            return CNULL
    return value


def _key_signature(key: tuple) -> str:
    """Canonical string form of a task-pool key, stamped on parked retry
    entries so a settle of the same work can discard them."""

    def encode(value: Any) -> Any:
        if isinstance(value, (tuple, list, frozenset, set)):
            items = [encode(v) for v in value]
            if isinstance(value, (frozenset, set)):
                items.sort(key=repr)
            return items
        return _encode_parked(value)

    return json.dumps(encode(key), sort_keys=True, default=repr)


def _encode_parked_row(values: Any) -> list:
    return [_encode_parked(v) for v in values]


def _decode_parked_row(values: Any) -> tuple:
    return tuple(_decode_parked(v) for v in values)
