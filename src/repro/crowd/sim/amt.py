"""Simulated Amazon Mechanical Turk.

A global marketplace: a large worker population, no geographic
constraints, steady arrival profile.  This stands in for the live AMT the
paper used (offline substitution documented in DESIGN.md §4).
"""

from __future__ import annotations

from typing import Optional

from repro.crowd.sim.base import SimulatedCrowdPlatform
from repro.crowd.sim.behavior import BehaviorConfig
from repro.crowd.sim.population import generate_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.sim.worker import SimWorker


class SimulatedAMT(SimulatedCrowdPlatform):
    """The general, worldwide crowd."""

    name = "amt"

    def __init__(
        self,
        oracle: GroundTruthOracle,
        workers: Optional[list[SimWorker]] = None,
        population: int = 200,
        config: Optional[BehaviorConfig] = None,
        seed: int = 42,
        wrm=None,
        transient_error_rate: float = 0.0,
    ) -> None:
        if workers is None:
            workers = generate_population(
                population, seed=seed, id_prefix="amt-"
            )
        super().__init__(
            workers, oracle, config=config, seed=seed, wrm=wrm,
            transient_error_rate=transient_error_rate,
        )
