"""Behavioural models of the simulated crowd.

Calibrated to reproduce the qualitative findings of the CrowdDB
evaluation (SIGMOD'11 companion paper, Section 6.1):

* **price sensitivity** — higher rewards recruit workers faster, with
  diminishing returns;
* **group-size visibility** — HIT groups with more open HITs surface
  higher in the marketplace listing and attract workers faster;
* **worker affinity** — workers keep working on HIT groups they have
  done before, producing a heavy-tailed HITs-per-worker distribution;
* **latency** — task completion times are lognormal.

The constants are model parameters, not measured AMT values; benchmarks
verify shapes (monotonicity, crossovers, tail heaviness), never absolute
numbers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crowd.model import HIT, TaskKind


@dataclass
class BehaviorConfig:
    """Tunable knobs of the crowd model."""

    # Marketplace dynamics
    base_arrival_rate: float = 1.0 / 20.0   # worker browse events per second
    group_visibility_boost: float = 0.35    # log-boost per open HIT in group
    affinity_boost: float = 3.0             # preference for familiar groups

    # Price sensitivity: acceptance probability 1 - exp(-reward/scale)
    reward_scale_cents: float = 2.0

    # Latency (lognormal, seconds)
    completion_time_median: float = 90.0
    completion_time_sigma: float = 0.8

    # Accuracy
    base_accuracy: float = 0.9
    difficulty: dict[TaskKind, float] = None  # type: ignore[assignment]
    # Error probability of workers flagged ``spammer`` (they answer
    # carelessly whatever the task): the skew-skill populations of the
    # adaptive-quality experiments (E15) mix these in
    spammer_error: float = 0.6

    def __post_init__(self) -> None:
        if self.difficulty is None:
            self.difficulty = {
                TaskKind.FILL: 0.10,
                TaskKind.NEW_TUPLE: 0.15,
                TaskKind.COMPARE_EQUAL: 0.05,
                TaskKind.COMPARE_ORDER: 0.12,
            }


def acceptance_probability(
    reward_cents: int, price_sensitivity: float, config: BehaviorConfig
) -> float:
    """Probability a browsing worker accepts a HIT at this reward.

    ``price_sensitivity`` > 1 means the worker demands more money.
    Saturating exponential: going from 1¢ to 4¢ helps a lot, 50¢ to 53¢
    barely — matching the diminishing returns in the paper's Figure 6.
    """
    scale = config.reward_scale_cents * price_sensitivity
    return 1.0 - math.exp(-reward_cents / scale)


def group_attractiveness(
    open_hits_in_group: int,
    familiar: bool,
    config: BehaviorConfig,
) -> float:
    """Relative weight of one HIT group when a worker picks work.

    Bigger groups are more visible; groups the worker already knows get
    the affinity boost.
    """
    weight = 1.0 + config.group_visibility_boost * math.log1p(open_hits_in_group)
    if familiar:
        weight *= config.affinity_boost
    return weight


def completion_time(
    rng: random.Random, speed: float, config: BehaviorConfig
) -> float:
    """Seconds between acceptance and submission (lognormal)."""
    mu = math.log(config.completion_time_median)
    sample = rng.lognormvariate(mu, config.completion_time_sigma)
    return max(5.0, sample / speed)


def error_probability(
    skill: float, kind: TaskKind, config: BehaviorConfig
) -> float:
    """Per-answer probability of an incorrect/garbled response.

    Composed of a platform-wide floor (``1 - base_accuracy``) plus a
    skill- and difficulty-dependent term.  With the default population
    (skill uniform in [0.55, 1.0]) this lands most answers in the
    80-97% accuracy band the paper's AMT experiments report.
    """
    difficulty = config.difficulty.get(kind, 0.1)
    base_error = 1.0 - config.base_accuracy
    skill_error = (1.0 - skill) * (0.15 + difficulty)
    return min(0.95, max(0.005, base_error * (0.5 + difficulty) + skill_error))
