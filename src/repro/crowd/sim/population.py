"""Worker population generation.

Activity weights are Pareto-distributed: a few workers browse the
marketplace constantly while most drop by rarely.  That single modelling
choice is what reproduces the paper's worker-affinity finding (a small
number of workers complete the majority of HITs).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crowd.sim.worker import SimWorker


def generate_population(
    size: int,
    seed: int = 7,
    pareto_alpha: float = 1.3,
    skill_range: tuple[float, float] = (0.55, 1.0),
    speed_range: tuple[float, float] = (0.5, 2.0),
    price_sensitivity_range: tuple[float, float] = (0.5, 2.5),
    region: Optional[tuple[float, float, float]] = None,
    id_prefix: str = "w",
) -> list[SimWorker]:
    """Create ``size`` workers with heavy-tailed activity.

    ``region`` (lat, lon, radius_km) scatters workers geographically for
    the mobile platform; AMT workers get no location.
    """
    rng = random.Random(seed)
    workers: list[SimWorker] = []
    for index in range(size):
        activity = rng.paretovariate(pareto_alpha)
        skill = rng.uniform(*skill_range)
        speed = rng.uniform(*speed_range)
        price_sensitivity = rng.uniform(*price_sensitivity_range)
        location = None
        if region is not None:
            lat, lon, radius_km = region
            # ~111 km per degree of latitude; good enough for a demo radius
            offset = radius_km / 111.0
            location = (
                lat + rng.uniform(-offset, offset),
                lon + rng.uniform(-offset, offset),
            )
        workers.append(
            SimWorker(
                worker_id=f"{id_prefix}{index:04d}",
                skill=skill,
                speed=speed,
                activity=activity,
                price_sensitivity=price_sensitivity,
                location=location,
            )
        )
    return workers


def generate_skew_population(
    size: int,
    seed: int = 7,
    spammer_fraction: float = 0.3,
    expert_skill_range: tuple[float, float] = (0.85, 1.0),
    spammer_skill_range: tuple[float, float] = (0.1, 0.35),
    **kwargs,
) -> list[SimWorker]:
    """A bimodal-skill population: mostly diligent workers plus a slice
    of spammers.

    This is the adversarial profile the adaptive-quality experiments
    (E15) run against: plain majority voting pays the same three
    assignments whether the ballots came from experts or spammers, while
    reputation-weighted consensus learns the difference.  Spammer slots
    are assigned deterministically by index (every ``1/spammer_fraction``
    th worker) so one seed yields one population regardless of draw
    order.
    """
    workers = generate_population(
        size, seed=seed, skill_range=expert_skill_range, **kwargs
    )
    if spammer_fraction <= 0:
        return workers
    rng = random.Random(seed + 1)
    stride = max(1, round(1.0 / spammer_fraction))
    for index, worker in enumerate(workers):
        if index % stride == 0:
            worker.skill = rng.uniform(*spammer_skill_range)
            worker.spammer = True
    return workers


def pick_weighted(
    workers: list[SimWorker], rng: random.Random
) -> SimWorker:
    """Sample one worker proportionally to activity weight."""
    total = sum(worker.activity for worker in workers)
    threshold = rng.random() * total
    cumulative = 0.0
    for worker in workers:
        cumulative += worker.activity
        if cumulative >= threshold:
            return worker
    return workers[-1]


def distance_km(
    a: tuple[float, float], b: tuple[float, float]
) -> float:
    """Equirectangular approximation — fine at conference scale."""
    import math

    lat1, lon1 = a
    lat2, lon2 = b
    x = (lon2 - lon1) * math.cos(math.radians((lat1 + lat2) / 2))
    y = lat2 - lat1
    return 111.0 * math.hypot(x, y)
