"""Simulated locality-aware mobile crowdsourcing platform.

The paper's second platform lets tasks be "posted to users in a specific
geographic area" — at the demo, the VLDB attendees themselves.  Compared
with AMT the simulation models:

* a much smaller, geo-tagged population (conference attendees);
* a **locality filter**: a HIT carrying ``locality=(lat, lon, radius_km)``
  is only visible to workers inside the radius;
* **session burstiness**: attendees work their phones between conference
  sessions, so the arrival rate follows a break/session square wave;
* registration-free participation — wider skill variance.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.crowd.model import HIT
from repro.crowd.sim.base import SimulatedCrowdPlatform
from repro.crowd.sim.behavior import BehaviorConfig
from repro.crowd.sim.population import distance_km, generate_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.sim.worker import SimWorker

#: Seattle, site of VLDB 2011 — default venue for demo workloads.
VLDB_VENUE = (47.6062, -122.3321)


class SimulatedMobilePlatform(SimulatedCrowdPlatform):
    """The conference crowd."""

    name = "mobile"

    def __init__(
        self,
        oracle: GroundTruthOracle,
        workers: Optional[list[SimWorker]] = None,
        population: int = 60,
        venue: tuple[float, float] = VLDB_VENUE,
        config: Optional[BehaviorConfig] = None,
        seed: int = 42,
        session_minutes: float = 90.0,
        break_minutes: float = 30.0,
        wrm=None,
        transient_error_rate: float = 0.0,
    ) -> None:
        if config is None:
            config = BehaviorConfig(
                base_arrival_rate=1.0 / 30.0,
                completion_time_median=60.0,   # phone in hand, short tasks
                base_accuracy=0.85,            # registration-free crowd
            )
        if workers is None:
            workers = generate_population(
                population,
                seed=seed,
                skill_range=(0.45, 1.0),
                region=(venue[0], venue[1], 2.0),
                id_prefix="mob-",
            )
        super().__init__(
            workers, oracle, config=config, seed=seed, wrm=wrm,
            transient_error_rate=transient_error_rate,
        )
        self.venue = venue
        self.session_seconds = session_minutes * 60.0
        self.break_seconds = break_minutes * 60.0

    # -- specializations ---------------------------------------------------------

    def eligible(self, worker: SimWorker, hit: HIT) -> bool:
        if not super().eligible(worker, hit):
            return False
        if hit.locality is None:
            return True
        if worker.location is None:
            return False
        lat, lon, radius_km = hit.locality
        return distance_km(worker.location, (lat, lon)) <= radius_km

    def arrival_rate(self) -> float:
        """Square-wave burstiness: attendees browse during breaks."""
        base = super().arrival_rate()
        cycle = self.session_seconds + self.break_seconds
        phase = math.fmod(self.clock.now, cycle)
        if phase >= self.session_seconds:
            return base * 4.0  # coffee break: phones out
        return base * 0.5  # talks in progress
