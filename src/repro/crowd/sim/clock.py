"""Simulated time for the crowd platforms.

All platform dynamics (worker arrivals, task completion latencies, HIT
expiry) run against this discrete-event clock, so experiments that took
the paper's authors days of wall-clock AMT time replay in milliseconds —
deterministically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimClock:
    """Monotonic simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards ({timestamp} < {self._now})"
            )
        self._now = timestamp


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Priority queue of timed callbacks driving one simulation."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: list[_Event] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(self.clock.now + delay, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> _Event:
        return self.schedule(max(0.0, timestamp - self.clock.now), callback)

    def cancel(self, event: _Event) -> None:
        event.cancelled = True

    def step(self) -> bool:
        """Pop and run the next event.  Returns False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            return True
        return False

    def run_until(
        self,
        condition: Callable[[], bool],
        timeout: Optional[float] = None,
    ) -> bool:
        """Step events until ``condition()`` holds or ``timeout`` elapses.

        Returns whether the condition was met.  The clock ends either at
        the event that satisfied the condition or at the deadline.
        """
        deadline = None if timeout is None else self.clock.now + timeout
        if condition():
            return True
        while self._heap:
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if deadline is not None and next_event.time > deadline:
                self.clock.advance_to(deadline)
                return condition()
            self.step()
            if condition():
                return True
        if deadline is not None:
            self.clock.advance_to(deadline)
        return condition()
