"""Shared engine of the simulated crowdsourcing platforms.

Implements the marketplace loop as a discrete-event process:

1. workers *browse* the marketplace according to a Poisson arrival
   process weighted by their activity (heavy tail);
2. a browsing worker picks a HIT group — bigger groups are more visible,
   familiar groups get the affinity boost — then the oldest open HIT in
   it, and accepts with a reward-dependent probability;
3. acceptance locks one assignment slot; after a lognormal completion
   time the worker submits an answer generated from the ground-truth
   oracle plus noise.

AMT and the mobile platform specialize eligibility (locality) and the
arrival-rate profile.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Optional

from repro.crowd.model import HIT, Assignment, HITStatus, task_size
from repro.crowd.platform import CrowdPlatform
from repro.crowd.sim.behavior import (
    BehaviorConfig,
    acceptance_probability,
    completion_time,
    group_attractiveness,
)
from repro.crowd.sim.clock import EventQueue, SimClock
from repro.crowd.sim.population import pick_weighted
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.sim.worker import SimWorker
from repro.errors import CrowdPlatformError, TransientPlatformError


class SimulatedCrowdPlatform(CrowdPlatform):
    """Discrete-event marketplace shared by the AMT and mobile simulators."""

    name = "simulated"

    def __init__(
        self,
        workers: list[SimWorker],
        oracle: GroundTruthOracle,
        config: Optional[BehaviorConfig] = None,
        seed: int = 42,
        wrm: Optional[Any] = None,
        transient_error_rate: float = 0.0,
    ) -> None:
        if not workers:
            raise CrowdPlatformError("a platform needs at least one worker")
        self.workers = workers
        self.oracle = oracle
        self.config = config if config is not None else BehaviorConfig()
        self.wrm = wrm  # WorkerRelationshipManager, used for block/qualify
        self.min_approval_rate: Optional[float] = None  # HIT qualification
        # fault mode: this fraction of post_hit/extend_hit calls fail with
        # a TransientPlatformError *before* touching marketplace state, so
        # a retried call is indistinguishable from a first attempt.  The
        # fault RNG is separate from the marketplace RNG: enabling faults
        # never perturbs worker behaviour under a fixed seed.
        self.transient_error_rate = transient_error_rate
        self._fault_rng = random.Random(seed ^ 0x5DEECE66D)
        # scripted fault injection (chaos harness): outage fails the next
        # N platform calls outright; latency stalls the next N calls by a
        # fixed simulated delay before they take effect
        self._outage_calls = 0
        self._latency_calls = 0
        self._latency_seconds = 0.0
        self.faults_injected = 0
        self.rng = random.Random(seed)
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self._hits: dict[str, HIT] = {}
        self._in_flight: dict[str, int] = {}
        self._taken: set[tuple[str, str]] = set()  # (hit_id, worker_id)
        self._arrival_scheduled = False
        self.on_assignment: list[Callable[[HIT, Assignment], None]] = []
        self.total_cost_cents = 0
        self.assignments_submitted = 0

    # -- CrowdPlatform API -------------------------------------------------------

    def inject_outage(self, calls: int) -> None:
        """Fail the next ``calls`` post/extend calls with a transient
        error, before marketplace state is touched — deterministic outage
        for the chaos harness (drives the circuit breaker open)."""
        self._outage_calls = max(0, int(calls))

    def inject_latency(self, seconds: float, calls: int = 1) -> None:
        """Stall the next ``calls`` post/extend calls by ``seconds`` of
        simulated time before they take effect (latency spike: the call
        succeeds but slowly, tripping latency-based breakers)."""
        self._latency_calls = max(0, int(calls))
        self._latency_seconds = max(0.0, float(seconds))

    def _maybe_fault(self, operation: str) -> None:
        if self._outage_calls > 0:
            self._outage_calls -= 1
            self.faults_injected += 1
            raise TransientPlatformError(
                f"{self.name}: injected outage during {operation}"
            )
        if self._latency_calls > 0:
            self._latency_calls -= 1
            self.faults_injected += 1
            # burn simulated time: the caller sees a slow-but-successful
            # call, which latency-tripwire breakers count as a failure
            self.events.run_until(
                lambda: False, self._latency_seconds
            )
        if (
            self.transient_error_rate > 0
            and self._fault_rng.random() < self.transient_error_rate
        ):
            raise TransientPlatformError(
                f"{self.name}: simulated transient failure during {operation}"
            )

    def post_hit(self, hit: HIT) -> str:
        self._maybe_fault("post_hit")
        if hit.hit_id in self._hits:
            raise CrowdPlatformError(f"HIT {hit.hit_id} already posted")
        hit.created_at = self.clock.now
        hit.status = HITStatus.OPEN
        self._hits[hit.hit_id] = hit
        self._in_flight[hit.hit_id] = 0
        if hit.expires_at is not None:
            self.events.schedule_at(
                hit.expires_at, lambda h=hit: self._expire(h)
            )
        self._ensure_arrivals()
        return hit.hit_id

    def get_hit(self, hit_id: str) -> HIT:
        try:
            return self._hits[hit_id]
        except KeyError:
            raise CrowdPlatformError(f"unknown HIT {hit_id!r}") from None

    def expire_hit(self, hit_id: str) -> None:
        self._expire(self.get_hit(hit_id))

    def extend_hit(self, hit_id: str, additional: int) -> None:
        """Reopen a HIT for more assignments and restart worker arrivals
        (the marketplace may have gone quiet while every HIT was full)."""
        self._maybe_fault("extend_hit")
        super().extend_hit(hit_id, additional)
        self._ensure_arrivals()

    def run_until(self, condition: Callable[[], bool], timeout: float) -> bool:
        self._ensure_arrivals()
        return self.events.run_until(condition, timeout)

    # -- marketplace dynamics ----------------------------------------------------------

    def arrival_rate(self) -> float:
        """Worker browse events per simulated second (subclass hook)."""
        open_count = sum(1 for hit in self._hits.values() if hit.is_open)
        return self.config.base_arrival_rate * (
            1.0 + 0.3 * math.log1p(open_count)
        ) * max(1, len(self.workers)) ** 0.5

    def eligible(self, worker: SimWorker, hit: HIT) -> bool:
        """Whether a worker may take a HIT.

        Base rules: one assignment per worker per HIT; requester-side
        exclusions through the Worker Relationship Manager (blocked
        workers never see the requester's HITs; a qualification may
        demand a minimum approval rate).  Subclasses add locality.
        """
        if (hit.hit_id, worker.worker_id) in self._taken:
            return False
        if self.wrm is not None:
            if self.wrm.is_blocked(worker.worker_id):
                return False
            if self.min_approval_rate is not None:
                account = self.wrm.accounts.get(worker.worker_id)
                if (
                    account is not None
                    and account.submitted > 0
                    and account.approval_rate < self.min_approval_rate
                ):
                    return False
        return True

    # -- internals --------------------------------------------------------------------

    def _ensure_arrivals(self) -> None:
        if self._arrival_scheduled:
            return
        if not self._has_available_work():
            return
        self._arrival_scheduled = True
        delay = self.rng.expovariate(self.arrival_rate())
        self.events.schedule(delay, self._on_arrival)

    def _has_available_work(self) -> bool:
        for hit in self._hits.values():
            if not hit.is_open:
                continue
            if hit.assignments_remaining - self._in_flight[hit.hit_id] > 0:
                return True
        return False

    def _on_arrival(self) -> None:
        self._arrival_scheduled = False
        worker = pick_weighted(self.workers, self.rng)
        hit = self._choose_hit(worker)
        if hit is not None:
            # grouped HITs pack several tasks into one form: workers judge
            # the *per-task* reward, not the headline number
            accept_p = acceptance_probability(
                hit.reward_cents / task_size(hit.task),
                worker.price_sensitivity,
                self.config,
            )
            if self.rng.random() < accept_p:
                self._accept(worker, hit)
        self._ensure_arrivals()

    def _choose_hit(self, worker: SimWorker) -> Optional[HIT]:
        """Pick a HIT: group by visibility+affinity, then oldest first."""
        groups: dict[str, list[HIT]] = {}
        for hit in self._hits.values():
            if not hit.is_open:
                continue
            if hit.assignments_remaining - self._in_flight[hit.hit_id] <= 0:
                continue
            if not self.eligible(worker, hit):
                continue
            groups.setdefault(hit.group_key, []).append(hit)
        if not groups:
            return None
        keys = list(groups)
        weights = [
            group_attractiveness(
                len(groups[key]), key in worker.familiar_groups, self.config
            )
            for key in keys
        ]
        chosen_key = self.rng.choices(keys, weights=weights, k=1)[0]
        return min(groups[chosen_key], key=lambda hit: hit.created_at)

    def _accept(self, worker: SimWorker, hit: HIT) -> None:
        self._taken.add((hit.hit_id, worker.worker_id))
        self._in_flight[hit.hit_id] += 1
        # a grouped HIT is proportionally more work than a single task,
        # but still one acceptance and one submission round-trip
        latency = completion_time(self.rng, worker.speed, self.config)
        latency *= task_size(hit.task)
        self.events.schedule(
            latency, lambda: self._on_complete(worker, hit)
        )

    def _on_complete(self, worker: SimWorker, hit: HIT) -> None:
        self._in_flight[hit.hit_id] -= 1
        if hit.status is not HITStatus.OPEN:
            return  # expired or cancelled while the worker was busy
        answer = worker.answer(hit.task, self.oracle, self.rng, self.config)
        assignment = Assignment(
            hit_id=hit.hit_id,
            worker_id=worker.worker_id,
            answer=answer,
            submitted_at=self.clock.now,
        )
        hit.add_assignment(assignment)
        worker.remember_group(hit.group_key)
        self.total_cost_cents += hit.reward_cents
        self.assignments_submitted += 1
        for callback in self.on_assignment:
            callback(hit, assignment)

    def _expire(self, hit: HIT) -> None:
        if hit.status is HITStatus.OPEN:
            hit.status = HITStatus.EXPIRED

    # -- introspection (benchmarks) ---------------------------------------------------

    def all_hits(self) -> list[HIT]:
        return list(self._hits.values())

    def hits_per_worker(self) -> dict[str, int]:
        """How many assignments each worker submitted (affinity metric)."""
        counts: dict[str, int] = {}
        for hit in self._hits.values():
            for assignment in hit.assignments:
                counts[assignment.worker_id] = (
                    counts.get(assignment.worker_id, 0) + 1
                )
        return counts
