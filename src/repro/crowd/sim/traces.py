"""Ground-truth oracle backing the simulated crowd.

The paper's experiments drew on real workers' world knowledge (paper
abstracts, attendee counts, company names, restaurant facts).  Offline we
substitute a ground-truth oracle: benchmarks and examples load reference
data into it, simulated workers answer as noisy draws from it, and —
crucially — result quality can be *scored* against the truth, which live
AMT never allowed.

The oracle answers four question shapes, one per task kind, plus
``distractor`` (a plausible wrong answer for error injection).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.crowd.quality import normalize_answer


class GroundTruthOracle:
    """Reference knowledge for the simulated crowd."""

    def __init__(self) -> None:
        # table -> pk tuple -> column -> value
        self._fill: dict[str, dict[tuple, dict[str, Any]]] = {}
        # table -> frozenset(fixed items) -> list of candidate tuples
        self._new_tuples: dict[str, dict[frozenset, list[dict[str, Any]]]] = {}
        # normalized entity -> canonical id (for CROWDEQUAL)
        self._entities: dict[Any, int] = {}
        self._next_entity = 0
        # question -> scoring function (higher = ranks earlier)
        self._scores: dict[str, Callable[[Any], float]] = {}
        # table -> column -> distractor pool
        self._distractors: dict[str, dict[str, list[Any]]] = {}

    # -- loading -----------------------------------------------------------------

    def load_fill(
        self, table: str, primary_key: tuple, values: dict[str, Any]
    ) -> None:
        """Register the true crowd-column values of one tuple."""
        table_truth = self._fill.setdefault(table.lower(), {})
        row = table_truth.setdefault(_key(primary_key), {})
        for column, value in values.items():
            row[column.lower()] = value
            if value is not None:
                pool = self._distractors.setdefault(table.lower(), {})
                pool.setdefault(column.lower(), []).append(value)

    def load_new_tuples(
        self,
        table: str,
        tuples: list[dict[str, Any]],
        fixed_columns: tuple[str, ...] = (),
    ) -> None:
        """Register tuples the crowd could contribute to a CROWD table.

        ``fixed_columns`` partition the pool: a CrowdJoin probing with
        ``title = X`` draws from the tuples whose ``title`` is X.
        """
        groups = self._new_tuples.setdefault(table.lower(), {})
        for row in tuples:
            lowered = {k.lower(): v for k, v in row.items()}
            key = frozenset(
                (c.lower(), _norm(lowered.get(c.lower())))
                for c in fixed_columns
            )
            groups.setdefault(key, []).append(lowered)

    def declare_same_entity(self, *representations: Any) -> None:
        """Declare that several surface forms denote one real-world entity
        (e.g. "I.B.M.", "IBM", "International Business Machines")."""
        entity_id = self._next_entity
        self._next_entity += 1
        for representation in representations:
            self._entities[_norm(representation)] = entity_id

    def load_ranking(
        self, question: str, scores: dict[Any, float] | Callable[[Any], float]
    ) -> None:
        """Register the ground-truth ranking for a CROWDORDER question."""
        if callable(scores):
            self._scores[question] = scores
        else:
            table = {_norm(k): v for k, v in scores.items()}
            self._scores[question] = lambda item: table.get(_norm(item), 0.0)

    # -- answering ----------------------------------------------------------------

    def fill_value(self, table: str, primary_key: tuple, column: str) -> Optional[Any]:
        row = self._fill.get(table.lower(), {}).get(_key(primary_key))
        if row is None:
            return None
        return row.get(column.lower())

    def new_tuple(
        self,
        table: str,
        fixed_values: dict[str, Any],
        rng: random.Random,
    ) -> Optional[dict[str, Any]]:
        """A candidate tuple matching ``fixed_values``, or None."""
        groups = self._new_tuples.get(table.lower())
        if groups is None:
            return None
        key = frozenset(
            (c.lower(), _norm(v)) for c, v in fixed_values.items()
        )
        pool = groups.get(key)
        if pool is None:
            # The probe constrains different columns than the load-time
            # grouping (e.g. an anti-probe pins the primary key while the
            # pool is grouped by foreign key): filter the union instead.
            pool = [
                row
                for rows in groups.values()
                for row in rows
                if all(
                    _norm(row.get(c.lower())) == _norm(v)
                    for c, v in fixed_values.items()
                )
            ]
        if not pool:
            return None
        return rng.choice(pool)

    def all_new_tuples(self, table: str) -> list[dict[str, Any]]:
        groups = self._new_tuples.get(table.lower(), {})
        return [row for rows in groups.values() for row in rows]

    def equal(self, left: Any, right: Any) -> bool:
        """Ground truth for CROWDEQUAL."""
        left_key, right_key = _norm(left), _norm(right)
        if left_key == right_key:
            return True
        left_entity = self._entities.get(left_key)
        right_entity = self._entities.get(right_key)
        if left_entity is None or right_entity is None:
            return False
        return left_entity == right_entity

    def prefer_left(self, question: str, left: Any, right: Any) -> bool:
        """Ground truth for CROWDORDER: does ``left`` rank before
        ``right``?  Unknown questions fall back to string order so the
        simulation never stalls."""
        score = self._scores.get(question)
        if score is None:
            return str(left) <= str(right)
        return score(left) >= score(right)

    def score(self, question: str, item: Any) -> float:
        scorer = self._scores.get(question)
        return scorer(item) if scorer else 0.0

    def distractor(
        self, table: str, column: str, truth: str, rng: random.Random
    ) -> Optional[Any]:
        """A plausible wrong value for error injection."""
        pool = self._distractors.get(table.lower(), {}).get(column.lower())
        if not pool:
            return None
        wrong = [v for v in pool if _norm(v) != _norm(truth)]
        if not wrong:
            return None
        return rng.choice(wrong)


def _key(primary_key: tuple) -> tuple:
    return tuple(_norm(part) for part in primary_key)


def _norm(value: Any) -> Any:
    return normalize_answer(value)
