"""Simulated crowd workers and their answer generation.

A worker is parameterized by skill (drives accuracy), speed (drives
latency), activity weight (drives how often they browse the marketplace —
the heavy tail behind worker affinity), price sensitivity, and an optional
geographic location used by the mobile platform's locality filter.

Answer generation consults the ground-truth oracle and then perturbs:
wrong answers (flipped votes, distractor values, typos) with the
behavioural error probability, plus benign *format noise* (case,
whitespace, punctuation) that exercises the answer-cleansing pipeline.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crowd.model import (
    CompareEqualTask,
    CompareOrderTask,
    FillGroupTask,
    FillTask,
    NewTupleTask,
    Task,
    TaskKind,
)
from repro.crowd.sim.behavior import BehaviorConfig, error_probability
from repro.crowd.sim.traces import GroundTruthOracle


@dataclass
class SimWorker:
    """One member of the simulated worker population."""

    worker_id: str
    skill: float                  # in (0, 1]; scales accuracy
    speed: float                  # > 0; scales completion latency
    activity: float               # marketplace browsing weight (heavy tail)
    price_sensitivity: float      # > 0; scales the reward needed to accept
    location: Optional[tuple[float, float]] = None  # (lat, lon) for mobile
    familiar_groups: set[str] = field(default_factory=set)
    completed_hits: int = 0
    # a spammer answers carelessly (config.spammer_error) regardless of
    # task difficulty — the adversary adaptive quality control exists for
    spammer: bool = False

    def remember_group(self, group_key: str) -> None:
        self.familiar_groups.add(group_key)
        self.completed_hits += 1

    # -- answer generation ---------------------------------------------------

    def answer(
        self,
        task: Task,
        oracle: GroundTruthOracle,
        rng: random.Random,
        config: BehaviorConfig,
    ) -> Any:
        """Produce this worker's answer for ``task``."""
        if self.spammer:
            p_error = config.spammer_error
        else:
            p_error = error_probability(self.skill, task.kind, config)
        if isinstance(task, FillGroupTask):
            # one form, several tuples: answer each subtask in order
            return [
                self._answer_fill(subtask, oracle, rng, p_error)
                for subtask in task.subtasks
            ]
        if isinstance(task, FillTask):
            return self._answer_fill(task, oracle, rng, p_error)
        if isinstance(task, NewTupleTask):
            return self._answer_new_tuple(task, oracle, rng, p_error)
        if isinstance(task, CompareEqualTask):
            truth = oracle.equal(task.left, task.right)
            return (not truth) if rng.random() < p_error else truth
        if isinstance(task, CompareOrderTask):
            truth = oracle.prefer_left(task.question, task.left, task.right)
            flipped = rng.random() < p_error
            prefer_left = (not truth) if flipped else truth
            return "left" if prefer_left else "right"
        raise TypeError(f"unknown task type {type(task).__name__}")

    def _answer_fill(
        self,
        task: FillTask,
        oracle: GroundTruthOracle,
        rng: random.Random,
        p_error: float,
    ) -> dict[str, str]:
        answer: dict[str, str] = {}
        for column in task.columns:
            truth = oracle.fill_value(task.table, task.primary_key, column)
            if truth is None:
                answer[column] = ""  # worker honestly finds nothing
                continue
            text = str(truth)
            if rng.random() < p_error:
                text = self._corrupt(
                    text, task.table, column, oracle, rng
                )
            answer[column] = _format_noise(text, rng)
        return answer

    def _answer_new_tuple(
        self,
        task: NewTupleTask,
        oracle: GroundTruthOracle,
        rng: random.Random,
        p_error: float,
    ) -> dict[str, str]:
        candidate = oracle.new_tuple(task.table, task.fixed_values, rng)
        if candidate is None:
            return {}  # nothing left to contribute
        answer: dict[str, str] = {}
        for column in task.columns:
            if column.lower() in task.fixed_values:
                answer[column] = str(task.fixed_values[column.lower()])
                continue
            value = candidate.get(column.lower())
            if value is None:
                answer[column] = ""
                continue
            text = str(value)
            if rng.random() < p_error:
                text = self._corrupt(text, task.table, column, oracle, rng)
            answer[column] = _format_noise(text, rng)
        return answer

    @staticmethod
    def _corrupt(
        text: str,
        table: str,
        column: str,
        oracle: GroundTruthOracle,
        rng: random.Random,
    ) -> str:
        """A wrong answer: a distractor value when available, else a typo."""
        distractor = oracle.distractor(table, column, text, rng)
        if distractor is not None:
            return str(distractor)
        return _typo(text, rng)


def _typo(text: str, rng: random.Random) -> str:
    if not text:
        return rng.choice(string.ascii_lowercase)
    position = rng.randrange(len(text))
    substitute = rng.choice(string.ascii_lowercase)
    kind = rng.random()
    if kind < 0.4:  # substitution
        return text[:position] + substitute + text[position + 1 :]
    if kind < 0.7:  # deletion
        return text[:position] + text[position + 1 :]
    return text[:position] + substitute + text[position:]  # insertion


def _format_noise(text: str, rng: random.Random) -> str:
    """Benign formatting diversity real workers produce."""
    roll = rng.random()
    if roll < 0.15:
        text = " " + text
    elif roll < 0.3:
        text = text + "  "
    roll = rng.random()
    if roll < 0.1:
        text = text.upper()
    elif roll < 0.2:
        text = text.lower()
    return text
