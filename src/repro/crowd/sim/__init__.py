"""Discrete-event crowd simulation: clock, workers, platforms, oracle."""

from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.sim.base import SimulatedCrowdPlatform
from repro.crowd.sim.behavior import BehaviorConfig
from repro.crowd.sim.clock import EventQueue, SimClock
from repro.crowd.sim.mobile import VLDB_VENUE, SimulatedMobilePlatform
from repro.crowd.sim.population import generate_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.sim.worker import SimWorker

__all__ = [
    "SimulatedAMT", "SimulatedCrowdPlatform", "BehaviorConfig", "EventQueue",
    "SimClock", "VLDB_VENUE", "SimulatedMobilePlatform",
    "generate_population", "GroundTruthOracle", "SimWorker",
]
