"""Worker reputation: per-worker accuracy estimates for weighted voting.

The paper's quality control is plain majority voting (§3.2.1), but its
Worker Relationship Manager already "tracks the worker/requester
relationship as it evolves over time" (§3).  This module closes that
loop: a :class:`ReputationStore` maintains a smoothed accuracy estimate
per worker, fed by two signals recorded in the WRM's per-worker ledger:

* **consensus agreement** — every settled vote scores each participating
  worker against the winning answer, weighted by the verdict's
  confidence (a 5-1 landslide teaches more than a 2-1 squeak);
* **gold-standard probes** — known-answer HITs the Task Manager injects
  into the marketplace at ``CrowdConfig.gold_rate``; gold observations
  are weighted heavier because the requester *knows* the right answer.

The estimate is a Beta-style posterior: a prior of ``prior_strength``
pseudo-observations at ``prior_accuracy`` (blended with the worker's WRM
approval rate once they have history), updated by the observed
correct/total weights.  :meth:`weight` converts the estimate into the
log-odds ballot weight used by reputation-weighted consensus voting —
a worker estimated at 50% contributes nothing, one estimated *below*
chance counts against the answer they gave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

#: Accuracy estimates are clamped into this band before the log-odds
#: transform so one worker can never dominate (or nuke) a vote outright.
ACCURACY_FLOOR = 0.05
ACCURACY_CEILING = 0.98


@dataclass
class GoldTask:
    """One known-answer probe: a task shape plus its expected answer.

    ``expected`` mirrors the assignment answer shape: a ``column -> text``
    dict for FILL tasks, ``bool`` for COMPARE_EQUAL, ``"left"``/``"right"``
    for COMPARE_ORDER.
    """

    task: Any
    expected: Any
    platform: Optional[str] = None


@dataclass
class ReputationSnapshot:
    """One worker's reputation state (CLI/telemetry view)."""

    worker_id: str
    accuracy: float
    observations: float
    gold_seen: int
    gold_correct: int


class ReputationStore:
    """Smoothed per-worker accuracy estimates over the WRM ledger.

    The store owns the *smoothing*; the raw counters live on the WRM's
    :class:`~repro.crowd.wrm.WorkerAccount` ledger (``consensus_votes``,
    ``consensus_agreements``, ``gold_seen``, ``gold_correct``) so the
    relationship history survives independent of any one query.
    """

    def __init__(
        self,
        wrm: Optional[Any] = None,
        prior_accuracy: float = 0.75,
        prior_strength: float = 4.0,
        gold_weight: float = 3.0,
        gold_bank_size: int = 64,
        block_below: Optional[float] = None,
        block_after_observations: float = 6.0,
    ) -> None:
        self.wrm = wrm
        self.prior_accuracy = prior_accuracy
        self.prior_strength = prior_strength
        self.gold_weight = gold_weight
        self.gold_bank_size = gold_bank_size
        # identified spammers are blocked through the WRM: the platforms'
        # eligibility check already consults the WRM blocklist, so a
        # blocked worker never sees this requester's HITs again ("the
        # worker/requester relationship evolves over time", paper §3)
        self.block_below = block_below
        self.block_after_observations = block_after_observations
        self._observed: dict[str, float] = {}   # total observation weight
        self._correct: dict[str, float] = {}    # correct observation weight
        # optional durable crowd ledger: posterior totals are written
        # through on every observation (absolute values, last-write-wins
        # on recovery), so worker reputations survive restarts
        self.ledger: Optional[Any] = None
        self._gold_bank: list[GoldTask] = []
        self._gold_write_cursor = 0  # next ring slot a deposit overwrites
        self._gold_read_cursor = 0   # round-robin position for next_gold

    # -- observations ---------------------------------------------------------

    def observe_consensus(
        self, worker_id: str, agreed: bool, weight: float = 1.0
    ) -> None:
        """Score one ballot against the settled consensus answer."""
        self._observe(worker_id, agreed, weight)
        if self.wrm is not None:
            self.wrm.record_consensus(worker_id, agreed)

    def observe_gold(self, worker_id: str, correct: bool) -> None:
        """Score one answer against a gold task's known answer."""
        self._observe(worker_id, correct, self.gold_weight)
        if self.wrm is not None:
            self.wrm.record_gold(worker_id, correct)

    def _observe(self, worker_id: str, correct: bool, weight: float) -> None:
        weight = max(0.0, weight)
        self._observed[worker_id] = self._observed.get(worker_id, 0.0) + weight
        if correct:
            self._correct[worker_id] = (
                self._correct.get(worker_id, 0.0) + weight
            )
        if self.ledger is not None:
            self.ledger.record_reputation(
                worker_id,
                self._observed[worker_id],
                self._correct.get(worker_id, 0.0),
            )
        self._maybe_block(worker_id)

    def _maybe_block(self, worker_id: str) -> None:
        if (
            self.block_below is None
            or self.wrm is None
            or self.wrm.is_blocked(worker_id)
        ):
            return
        if (
            self._observed.get(worker_id, 0.0) >= self.block_after_observations
            and self.accuracy(worker_id) < self.block_below
        ):
            self.wrm.block(worker_id)

    # -- estimates ------------------------------------------------------------

    def accuracy(self, worker_id: str) -> float:
        """Posterior mean accuracy estimate for one worker."""
        prior = self.prior_accuracy
        if self.wrm is not None:
            account = self.wrm.accounts.get(worker_id)
            if account is not None and (account.approved + account.rejected):
                # the WRM's approve/reject history shifts the prior: a
                # worker the requester keeps rejecting starts lower
                prior = (prior + account.approval_rate) / 2.0
        observed = self._observed.get(worker_id, 0.0)
        correct = self._correct.get(worker_id, 0.0)
        estimate = (prior * self.prior_strength + correct) / (
            self.prior_strength + observed
        )
        return min(ACCURACY_CEILING, max(ACCURACY_FLOOR, estimate))

    def weight(self, worker_id: str) -> float:
        """Log-odds ballot weight of one worker's vote."""
        accuracy = self.accuracy(worker_id)
        return math.log(accuracy / (1.0 - accuracy))

    def observations(self, worker_id: str) -> float:
        return self._observed.get(worker_id, 0.0)

    # -- gold bank ------------------------------------------------------------

    def add_gold(self, task: Any, expected: Any,
                 platform: Optional[str] = None) -> None:
        """Deposit a known-answer probe (capped FIFO ring)."""
        gold = GoldTask(task=task, expected=expected, platform=platform)
        if len(self._gold_bank) < self.gold_bank_size:
            self._gold_bank.append(gold)
        else:  # overwrite the oldest deposit, keep the ring deterministic
            slot = self._gold_write_cursor % self.gold_bank_size
            self._gold_bank[slot] = gold
        self._gold_write_cursor += 1

    def next_gold(self) -> Optional[GoldTask]:
        """Round-robin over the bank; ``None`` while the bank is empty."""
        if not self._gold_bank:
            return None
        gold = self._gold_bank[self._gold_read_cursor % len(self._gold_bank)]
        self._gold_read_cursor += 1
        return gold

    @property
    def gold_bank_depth(self) -> int:
        return len(self._gold_bank)

    # -- reporting ------------------------------------------------------------

    def snapshot(self, worker_id: str) -> ReputationSnapshot:
        gold_seen = gold_correct = 0
        if self.wrm is not None:
            account = self.wrm.accounts.get(worker_id)
            if account is not None:
                gold_seen = account.gold_seen
                gold_correct = account.gold_correct
        return ReputationSnapshot(
            worker_id=worker_id,
            accuracy=self.accuracy(worker_id),
            observations=self.observations(worker_id),
            gold_seen=gold_seen,
            gold_correct=gold_correct,
        )

    def known_workers(self) -> list[str]:
        return sorted(self._observed)

    def top_workers(self, count: int = 10) -> list[ReputationSnapshot]:
        """Best-estimated workers first (CLI's ``.reputation``)."""
        snapshots = [self.snapshot(w) for w in self.known_workers()]
        snapshots.sort(key=lambda s: (-s.accuracy, s.worker_id))
        return snapshots[:count]
