"""Worker Relationship Manager.

"Unlike computer processors, crowd workers are not fungible resources and
the worker/requester relationship evolves over time and thus, requires
special care.  Currently, the WRM component assists the requester with
paying workers in time, granting bonuses and reporting and answering
worker complaints." (paper §3)

The WRM observes every submitted assignment (the platforms call
:meth:`on_assignment`), keeps a per-worker ledger, auto-approves and pays
within the payment deadline, grants loyalty bonuses, and tracks
complaints with response deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crowd.model import HIT, Assignment, AssignmentStatus
from repro.errors import CrowdPlatformError


@dataclass
class WorkerAccount:
    """Relationship state for one worker."""

    worker_id: str
    submitted: int = 0
    approved: int = 0
    rejected: int = 0
    earned_cents: int = 0
    bonus_cents: int = 0
    blocked: bool = False
    # quality ledger (feeds the ReputationStore): how often this worker's
    # ballots matched the settled consensus, and how they score on
    # gold-standard probe tasks with known answers
    consensus_votes: int = 0
    consensus_agreements: int = 0
    gold_seen: int = 0
    gold_correct: int = 0

    @property
    def approval_rate(self) -> float:
        total = self.approved + self.rejected
        return self.approved / total if total else 1.0

    @property
    def consensus_rate(self) -> float:
        if not self.consensus_votes:
            return 1.0
        return self.consensus_agreements / self.consensus_votes

    @property
    def gold_rate(self) -> float:
        if not self.gold_seen:
            return 1.0
        return self.gold_correct / self.gold_seen


@dataclass
class Complaint:
    """A worker complaint awaiting a requester response."""

    worker_id: str
    assignment_id: str
    message: str
    filed_at: float
    response: Optional[str] = None
    responded_at: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.response is None


@dataclass
class Payment:
    """One ledger entry."""

    worker_id: str
    assignment_id: str
    amount_cents: int
    kind: str  # "reward" | "bonus"
    paid_at: float


class WorkerRelationshipManager:
    """Requester-side worker relationship state machine."""

    def __init__(
        self,
        bonus_every: int = 10,
        bonus_cents: int = 5,
        auto_approve: bool = True,
    ) -> None:
        self.bonus_every = bonus_every
        self.bonus_cents = bonus_cents
        self.auto_approve = auto_approve
        self.accounts: dict[str, WorkerAccount] = {}
        self.payments: list[Payment] = []
        self.complaints: list[Complaint] = []

    # -- platform hook --------------------------------------------------------------

    def on_assignment(self, hit: HIT, assignment: Assignment) -> None:
        """Observe a submitted assignment (wired into the platform)."""
        account = self.account(assignment.worker_id)
        account.submitted += 1
        if self.auto_approve:
            self.approve(hit, assignment)

    # -- approval & payment -----------------------------------------------------------

    def account(self, worker_id: str) -> WorkerAccount:
        if worker_id not in self.accounts:
            self.accounts[worker_id] = WorkerAccount(worker_id)
        return self.accounts[worker_id]

    def approve(self, hit: HIT, assignment: Assignment) -> None:
        if assignment.status is AssignmentStatus.APPROVED:
            return
        assignment.status = AssignmentStatus.APPROVED
        account = self.account(assignment.worker_id)
        account.approved += 1
        account.earned_cents += hit.reward_cents
        self.payments.append(
            Payment(
                worker_id=assignment.worker_id,
                assignment_id=assignment.assignment_id,
                amount_cents=hit.reward_cents,
                kind="reward",
                paid_at=assignment.submitted_at,
            )
        )
        if self.bonus_every and account.approved % self.bonus_every == 0:
            self.grant_bonus(
                assignment.worker_id,
                self.bonus_cents,
                assignment.assignment_id,
                at=assignment.submitted_at,
            )

    def reject(self, assignment: Assignment, reason: str = "") -> None:
        if assignment.status is AssignmentStatus.APPROVED:
            raise CrowdPlatformError(
                "cannot reject an already approved assignment"
            )
        assignment.status = AssignmentStatus.REJECTED
        self.account(assignment.worker_id).rejected += 1

    def grant_bonus(
        self,
        worker_id: str,
        amount_cents: int,
        assignment_id: str = "",
        at: float = 0.0,
    ) -> None:
        account = self.account(worker_id)
        account.bonus_cents += amount_cents
        account.earned_cents += amount_cents
        self.payments.append(
            Payment(
                worker_id=worker_id,
                assignment_id=assignment_id,
                amount_cents=amount_cents,
                kind="bonus",
                paid_at=at,
            )
        )

    # -- quality ledger -------------------------------------------------------------------

    def record_consensus(self, worker_id: str, agreed: bool) -> None:
        """One ballot scored against a settled consensus answer."""
        account = self.account(worker_id)
        account.consensus_votes += 1
        if agreed:
            account.consensus_agreements += 1

    def record_gold(self, worker_id: str, correct: bool) -> None:
        """One answer scored against a gold-standard probe task."""
        account = self.account(worker_id)
        account.gold_seen += 1
        if correct:
            account.gold_correct += 1

    # -- complaints -----------------------------------------------------------------------

    def file_complaint(
        self, worker_id: str, assignment_id: str, message: str, at: float = 0.0
    ) -> Complaint:
        complaint = Complaint(
            worker_id=worker_id,
            assignment_id=assignment_id,
            message=message,
            filed_at=at,
        )
        self.complaints.append(complaint)
        return complaint

    def respond(self, complaint: Complaint, response: str, at: float = 0.0) -> None:
        if not complaint.open:
            raise CrowdPlatformError("complaint already answered")
        complaint.response = response
        complaint.responded_at = at

    def open_complaints(self) -> list[Complaint]:
        return [c for c in self.complaints if c.open]

    # -- blocking -----------------------------------------------------------------------

    def block(self, worker_id: str) -> None:
        self.account(worker_id).blocked = True

    def is_blocked(self, worker_id: str) -> bool:
        account = self.accounts.get(worker_id)
        return bool(account and account.blocked)

    # -- reporting -----------------------------------------------------------------------

    @property
    def total_paid_cents(self) -> int:
        return sum(payment.amount_cents for payment in self.payments)

    def top_workers(self, count: int = 10) -> list[WorkerAccount]:
        return sorted(
            self.accounts.values(), key=lambda a: -a.approved
        )[:count]
