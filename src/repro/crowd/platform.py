"""Abstract crowdsourcing platform interface.

CrowdDB "is able to work with two crowdsourcing platforms: Amazon
Mechanical Turk and our own mobile crowdsourcing platform" (paper §3).
Both simulated platforms implement this interface; the Task Manager only
talks to it, which is what gives the system *platform independence* — the
same compiled task runs on either platform (the point of the demo's
Figures 2 and 3).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Optional

from repro.crowd.model import HIT, Assignment, HITStatus
from repro.errors import CrowdPlatformError


class CrowdPlatform(abc.ABC):
    """What the Task Manager needs from a crowdsourcing platform."""

    name: str = "abstract"

    @abc.abstractmethod
    def post_hit(self, hit: HIT) -> str:
        """Publish a HIT; returns its id."""

    @abc.abstractmethod
    def get_hit(self, hit_id: str) -> HIT:
        """Fetch a HIT (with its current assignments)."""

    @abc.abstractmethod
    def expire_hit(self, hit_id: str) -> None:
        """Stop accepting assignments for a HIT."""

    @abc.abstractmethod
    def run_until(
        self,
        condition: Callable[[], bool],
        timeout: float,
    ) -> bool:
        """Advance platform time until ``condition()`` or ``timeout``
        simulated seconds elapse.  Returns whether the condition was met.

        A production adapter would poll the real service; the simulated
        platforms advance their discrete-event clock.
        """

    # -- conveniences over the abstract core ---------------------------------

    def extend_hit(self, hit_id: str, additional: int) -> None:
        """Request ``additional`` more assignments for a HIT (adaptive
        replication).  Subclasses re-kick their marketplace dynamics; the
        base implementation just reopens the HIT."""
        self.get_hit(hit_id).extend(additional)

    def post_hits(self, hits: Iterable[HIT]) -> list[str]:
        return [self.post_hit(hit) for hit in hits]

    def wait_for_hits(self, hit_ids: list[str], timeout: float) -> bool:
        """Advance until every HIT is complete (or expired/cancelled)."""

        def all_done() -> bool:
            return all(
                self.get_hit(hit_id).status is not HITStatus.OPEN
                for hit_id in hit_ids
            )

        return self.run_until(all_done, timeout)

    def assignments_for(self, hit_id: str) -> list[Assignment]:
        return list(self.get_hit(hit_id).assignments)


class PlatformRegistry:
    """Named platforms available to one CrowdDB instance."""

    def __init__(self) -> None:
        self._platforms: dict[str, CrowdPlatform] = {}
        self._default: Optional[str] = None

    def register(self, platform: CrowdPlatform, default: bool = False) -> None:
        self._platforms[platform.name.lower()] = platform
        if default or self._default is None:
            self._default = platform.name.lower()

    def get(self, name: Optional[str] = None) -> CrowdPlatform:
        key = (name or self._default or "").lower()
        if key not in self._platforms:
            raise CrowdPlatformError(
                f"no crowdsourcing platform registered under {name!r}"
            )
        return self._platforms[key]

    def names(self) -> list[str]:
        return list(self._platforms)
