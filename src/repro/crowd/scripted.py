"""A scripted, instantaneous crowd platform.

Useful for unit tests and deterministic demos: every posted HIT is
answered immediately by ``answer_fn(task, replica_index)`` — no clock, no
noise, no worker model.  ``answer_fn`` returns what a worker would submit:
a ``dict`` for FILL/NEW_TUPLE tasks, ``bool`` for COMPARE_EQUAL,
``"left"``/``"right"`` for COMPARE_ORDER; returning ``None`` means "no
worker took this assignment".
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.crowd.model import HIT, Assignment, Task
from repro.crowd.platform import CrowdPlatform
from repro.errors import CrowdPlatformError

AnswerFn = Callable[[Task, int], Any]


class ScriptedPlatform(CrowdPlatform):
    """Answers every HIT synchronously from a scripted function."""

    name = "scripted"

    def __init__(self, answer_fn: AnswerFn, latency: float = 1.0) -> None:
        self.answer_fn = answer_fn
        self.latency = latency
        self._hits: dict[str, HIT] = {}
        self._replicas_asked: dict[str, int] = {}
        self._now = 0.0
        self.posted_tasks: list[Task] = []

    def post_hit(self, hit: HIT) -> str:
        if hit.hit_id in self._hits:
            raise CrowdPlatformError(f"HIT {hit.hit_id} already posted")
        hit.created_at = self._now
        self._hits[hit.hit_id] = hit
        self.posted_tasks.append(hit.task)
        self._answer_replicas(hit, 0, hit.assignments_requested)
        return hit.hit_id

    def extend_hit(self, hit_id: str, additional: int) -> None:
        """Adaptive replication on a scripted crowd: the extra replicas
        answer synchronously, continuing the replica numbering."""
        hit = self.get_hit(hit_id)
        start = self._replicas_asked.get(hit_id, hit.assignments_requested)
        hit.extend(additional)
        self._answer_replicas(hit, start, hit.assignments_requested)

    def _answer_replicas(self, hit: HIT, start: int, stop: int) -> None:
        self._replicas_asked[hit.hit_id] = stop
        for replica in range(start, stop):
            answer = self.answer_fn(hit.task, replica)
            if answer is None:
                continue
            self._now += self.latency
            hit.add_assignment(
                Assignment(
                    hit_id=hit.hit_id,
                    worker_id=f"scripted-{replica}",
                    answer=answer,
                    submitted_at=self._now,
                )
            )

    def get_hit(self, hit_id: str) -> HIT:
        try:
            return self._hits[hit_id]
        except KeyError:
            raise CrowdPlatformError(f"unknown HIT {hit_id!r}") from None

    def expire_hit(self, hit_id: str) -> None:
        from repro.crowd.model import HITStatus

        hit = self.get_hit(hit_id)
        if hit.status is HITStatus.OPEN:
            hit.status = HITStatus.EXPIRED

    def run_until(self, condition: Callable[[], bool], timeout: float) -> bool:
        return condition()  # everything already happened at post time


def oracle_answer_fn(oracle, rng=None) -> AnswerFn:
    """A scripted answer function that answers perfectly from a
    :class:`~repro.crowd.sim.traces.GroundTruthOracle` (no noise)."""
    import random

    from repro.crowd.model import (
        CompareEqualTask,
        CompareOrderTask,
        FillGroupTask,
        FillTask,
        NewTupleTask,
    )

    rng = rng if rng is not None else random.Random(0)

    def answer(task: Task, replica: int) -> Any:
        if isinstance(task, FillGroupTask):
            return [answer(subtask, replica) for subtask in task.subtasks]
        if isinstance(task, FillTask):
            return {
                column: _text(oracle.fill_value(task.table, task.primary_key, column))
                for column in task.columns
            }
        if isinstance(task, NewTupleTask):
            candidate = oracle.new_tuple(task.table, task.fixed_values, rng)
            if candidate is None:
                return {}
            return {
                column: _text(
                    candidate.get(
                        column.lower(), task.fixed_values.get(column.lower())
                    )
                )
                for column in task.columns
            }
        if isinstance(task, CompareEqualTask):
            return oracle.equal(task.left, task.right)
        if isinstance(task, CompareOrderTask):
            return (
                "left"
                if oracle.prefer_left(task.question, task.left, task.right)
                else "right"
            )
        raise TypeError(f"unknown task {type(task).__name__}")

    return answer


def _text(value: Any) -> str:
    return "" if value is None else str(value)
