"""Data model of the crowdsourcing subsystem.

Terminology follows Amazon Mechanical Turk, which the paper targets:

* a **Task** describes the work in CrowdDB terms (fill in missing column
  values, contribute a new tuple, compare two values, order two items);
* a **HIT** (Human Intelligence Task) is a posted unit of work carrying a
  task, a reward, and a requested number of **assignments** (the
  replication factor used for majority voting);
* an **Assignment** is one worker's submitted answer for a HIT.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class TaskKind(enum.Enum):
    """The four task shapes CrowdDB's operators generate."""

    FILL = "FILL"              # CrowdProbe: instantiate CNULL values
    NEW_TUPLE = "NEW_TUPLE"    # CrowdProbe/CrowdJoin: contribute new tuples
    COMPARE_EQUAL = "COMPARE_EQUAL"  # CrowdCompare: entity resolution
    COMPARE_ORDER = "COMPARE_ORDER"  # CrowdCompare: binary ordering


@dataclass(frozen=True)
class FillTask:
    """Ask the crowd for the missing CROWD-column values of one tuple.

    ``known_values`` pre-populate the form (paper §3.1: "user interface
    templates are instantiated by copying the known field values from a
    tuple into the HTML form").
    """

    table: str
    primary_key: tuple[Any, ...]
    columns: tuple[str, ...]
    known_values: dict[str, Any]
    column_types: dict[str, str] = field(default_factory=dict)
    instructions: str = ""

    @property
    def kind(self) -> TaskKind:
        return TaskKind.FILL

    @property
    def group_key(self) -> str:
        """HITs of the same shape form one HIT group on the platform."""
        return f"fill:{self.table}:{','.join(self.columns)}"


@dataclass(frozen=True)
class FillGroupTask:
    """A HIT group packaged as one HIT: up to ``hit_group_size`` fill
    tasks for the same table and column set share a single form.

    The paper batches tasks of one shape into HIT groups because groups
    are more visible in the marketplace and amortize per-HIT overhead; we
    take that one step further and let one assignment answer several
    tuples at once.  A worker's answer is a *list* of per-subtask answer
    dicts, parallel to ``subtasks``; reward and completion time scale
    with :attr:`size` so grouping changes packaging, not economics.
    """

    table: str
    columns: tuple[str, ...]
    subtasks: tuple[FillTask, ...]
    instructions: str = ""

    @property
    def kind(self) -> TaskKind:
        return TaskKind.FILL

    @property
    def size(self) -> int:
        return len(self.subtasks)

    @property
    def group_key(self) -> str:
        return f"fill:{self.table}:{','.join(self.columns)}"


@dataclass(frozen=True)
class NewTupleTask:
    """Ask the crowd to contribute a new tuple of a CROWD table.

    ``fixed_values`` constrain the tuple (e.g. the foreign-key value a
    CrowdJoin probes with); workers fill in every other column.
    """

    table: str
    columns: tuple[str, ...]
    fixed_values: dict[str, Any] = field(default_factory=dict)
    column_types: dict[str, str] = field(default_factory=dict)
    instructions: str = ""

    @property
    def kind(self) -> TaskKind:
        return TaskKind.NEW_TUPLE

    @property
    def group_key(self) -> str:
        fixed = ",".join(sorted(self.fixed_values))
        return f"new:{self.table}:{fixed}"


@dataclass(frozen=True)
class CompareEqualTask:
    """Ask whether two values denote the same real-world entity."""

    left: Any
    right: Any
    question: str = "Do these two values refer to the same thing?"

    @property
    def kind(self) -> TaskKind:
        return TaskKind.COMPARE_EQUAL

    @property
    def group_key(self) -> str:
        return "crowdequal"


@dataclass(frozen=True)
class CompareOrderTask:
    """Ask which of two items ranks higher for the given question."""

    left: Any
    right: Any
    question: str

    @property
    def kind(self) -> TaskKind:
        return TaskKind.COMPARE_ORDER

    @property
    def group_key(self) -> str:
        return f"crowdorder:{self.question}"


Task = (
    FillTask
    | FillGroupTask
    | NewTupleTask
    | CompareEqualTask
    | CompareOrderTask
)


def task_size(task: Task) -> int:
    """How many elementary tasks a HIT's task packs (1 unless grouped)."""
    return getattr(task, "size", 1)


class HITStatus(enum.Enum):
    OPEN = "OPEN"            # accepting assignments
    COMPLETED = "COMPLETED"  # all requested assignments submitted
    EXPIRED = "EXPIRED"      # deadline passed before completion
    CANCELLED = "CANCELLED"


class AssignmentStatus(enum.Enum):
    SUBMITTED = "SUBMITTED"
    APPROVED = "APPROVED"
    REJECTED = "REJECTED"


_hit_counter = itertools.count(1)
_assignment_counter = itertools.count(1)


def reset_id_counters() -> None:
    """Reset global id counters (deterministic tests/benchmarks)."""
    global _hit_counter, _assignment_counter
    _hit_counter = itertools.count(1)
    _assignment_counter = itertools.count(1)


@dataclass
class HIT:
    """One posted unit of crowd work."""

    task: Task
    reward_cents: int
    assignments_requested: int
    hit_id: str = field(default_factory=lambda: f"hit-{next(_hit_counter)}")
    status: HITStatus = HITStatus.OPEN
    created_at: float = 0.0
    expires_at: Optional[float] = None
    form_html: str = ""
    locality: Optional[tuple[float, float, float]] = None  # lat, lon, radius_km
    assignments: list["Assignment"] = field(default_factory=list)

    @property
    def group_key(self) -> str:
        return self.task.group_key

    @property
    def assignments_remaining(self) -> int:
        return max(0, self.assignments_requested - len(self.assignments))

    @property
    def is_open(self) -> bool:
        return self.status is HITStatus.OPEN and self.assignments_remaining > 0

    def extend(self, additional: int) -> None:
        """Raise the requested assignment count of a live or just-completed
        HIT — the adaptive-replication primitive.  A completed HIT reopens
        to accept the extra assignments; an expired one stays dead."""
        if additional <= 0:
            raise ValueError("extension must request at least one assignment")
        self.assignments_requested += additional
        if self.status is HITStatus.COMPLETED:
            self.status = HITStatus.OPEN

    def add_assignment(self, assignment: "Assignment") -> None:
        self.assignments.append(assignment)
        if self.assignments_remaining == 0:
            self.status = HITStatus.COMPLETED


@dataclass
class Assignment:
    """One worker's answer to a HIT.

    ``answer`` is a dict for FILL/NEW_TUPLE tasks (column -> raw text) and
    a scalar for comparison tasks (bool for COMPARE_EQUAL; "left"/"right"
    for COMPARE_ORDER).
    """

    hit_id: str
    worker_id: str
    answer: Any
    submitted_at: float
    assignment_id: str = field(
        default_factory=lambda: f"asg-{next(_assignment_counter)}"
    )
    status: AssignmentStatus = AssignmentStatus.SUBMITTED
