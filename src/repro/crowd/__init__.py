"""Crowdsourcing subsystem: tasks, platforms, quality control, WRM."""

from repro.crowd.model import (
    HIT,
    Assignment,
    AssignmentStatus,
    CompareEqualTask,
    CompareOrderTask,
    FillGroupTask,
    FillTask,
    HITStatus,
    NewTupleTask,
    TaskKind,
)
from repro.crowd.platform import CrowdPlatform, PlatformRegistry
from repro.crowd.quality import Ballot, MajorityVote, VoteResult, normalize_answer
from repro.crowd.reputation import ReputationStore
from repro.crowd.task_manager import CrowdConfig, TaskManager
from repro.crowd.wrm import WorkerRelationshipManager

__all__ = [
    "HIT", "Assignment", "AssignmentStatus", "CompareEqualTask",
    "CompareOrderTask", "FillGroupTask", "FillTask", "HITStatus",
    "NewTupleTask", "TaskKind",
    "CrowdPlatform", "PlatformRegistry", "Ballot", "MajorityVote",
    "VoteResult", "normalize_answer", "CrowdConfig", "TaskManager",
    "ReputationStore", "WorkerRelationshipManager",
]
