"""Circuit breaker and durable retry queue for crowd platform calls.

CrowdDB buys real work from a marketplace, so a sick platform is worse
than a dead one: every retry burns wall-clock and, once the platform
limps back, duplicate posts burn money.  The breaker wraps the Task
Manager's mutating platform calls (``post_hit``/``extend_hit``) with the
classic three-state machine:

- **closed** — calls flow through; failures and slow calls are recorded
  in a sliding outcome window.
- **open** — tripped by a run of consecutive failures, a failure rate
  over the window, or a latency tripwire.  Calls are refused immediately
  with :class:`~repro.errors.CircuitOpenError`; the Task Manager parks
  the refused HIT issues in a :class:`RetryQueue` and the statement
  degrades to a partial result instead of failing.
- **half-open** — after a cooldown, a bounded number of probe calls are
  let through.  Enough successes close the breaker (and trigger replay
  of the parked queue); any failure re-opens it.

The breaker is deliberately clock-injectable (``clock=``) so tests can
step through cooldowns deterministically, and thread-safe because probe
calls can race recovery across session threads.

:class:`RetryQueue` is the parking lot for refused issues.  When the
connection is durable (``connect(path=...)``) the queue is backed by a
JSONL file next to the WAL, so parked crowd work survives a crash the
same way settled answers do.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["CircuitBreaker", "RetryQueue", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding of breaker state for gauge export.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Three-state breaker with failure-rate and latency tripwires."""

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 5,
        window: int = 20,
        failure_rate: float = 0.5,
        min_calls: int = 4,
        cooldown_seconds: float = 1.0,
        latency_threshold: Optional[float] = None,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        on_open: Optional[Callable[[str], None]] = None,
        on_close: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self.failure_threshold = max(1, int(failure_threshold))
        self.failure_rate = float(failure_rate)
        self.min_calls = max(1, int(min_calls))
        self.cooldown_seconds = float(cooldown_seconds)
        self.latency_threshold = latency_threshold
        self.half_open_probes = max(1, int(half_open_probes))
        self.clock = clock
        self.on_open = on_open
        self.on_close = on_close
        self.state = CLOSED
        self.opens = 0
        self.closes = 0
        self.refused = 0
        self._opened_at = 0.0
        self._outcomes: deque = deque(maxlen=max(1, int(window)))
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._lock = threading.Lock()

    # -- gate ------------------------------------------------------------

    def allow(self) -> bool:
        """Return True if a platform call may proceed right now."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self.clock() - self._opened_at < self.cooldown_seconds:
                    self.refused += 1
                    return False
                self.state = HALF_OPEN
                self._probes_in_flight = 0
                self._probe_successes = 0
            # Half-open: admit a bounded number of concurrent probes.
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.refused += 1
            return False

    # -- outcome recording ----------------------------------------------

    def record_success(self, latency: float = 0.0) -> None:
        slow = (
            self.latency_threshold is not None and latency >= self.latency_threshold
        )
        fired = None
        with self._lock:
            if self.state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                if slow:
                    fired = self._trip_locked()
                else:
                    self._probe_successes += 1
                    if self._probe_successes >= self.half_open_probes:
                        fired = self._close_locked()
            else:
                self._outcomes.append(not slow)
                if slow:
                    self._consecutive_failures += 1
                    fired = self._maybe_trip_locked()
                else:
                    self._consecutive_failures = 0
        if fired is not None:
            fired(self.name)

    def record_failure(self) -> None:
        fired = None
        with self._lock:
            if self.state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                fired = self._trip_locked()
            elif self.state == CLOSED:
                self._outcomes.append(False)
                self._consecutive_failures += 1
                fired = self._maybe_trip_locked()
            # OPEN: a straggler failing after the trip changes nothing.
        if fired is not None:
            fired(self.name)

    # -- transitions (lock held; callbacks returned, fired outside) ------

    def _maybe_trip_locked(self):
        if self._consecutive_failures >= self.failure_threshold:
            return self._trip_locked()
        if len(self._outcomes) >= self.min_calls:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_rate:
                return self._trip_locked()
        return None

    def _trip_locked(self):
        self.state = OPEN
        self.opens += 1
        self._opened_at = self.clock()
        self._outcomes.clear()
        self._consecutive_failures = 0
        return self.on_open

    def _close_locked(self):
        self.state = CLOSED
        self.closes += 1
        self._outcomes.clear()
        self._consecutive_failures = 0
        return self.on_close

    # -- introspection ---------------------------------------------------

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            window = list(self._outcomes)
            rate = (
                sum(1 for ok in window if not ok) / len(window) if window else 0.0
            )
            return {
                "state": self.state_code,
                "opens": self.opens,
                "closes": self.closes,
                "refused": self.refused,
                "consecutive_failures": self._consecutive_failures,
                "window_failure_rate": round(rate, 4),
            }


class RetryQueue:
    """FIFO parking lot for HIT issues refused by an open breaker.

    Entries are plain JSON-able descriptors built by the Task Manager
    (kind + the ``begin_*`` arguments, values pre-encoded with the wire
    codec).  ``bind_path`` makes the queue durable: every park appends a
    JSONL line, and drains rewrite the file, so a crash between outage
    and recovery loses no parked crowd work.
    """

    def __init__(self) -> None:
        self._entries: List[dict] = []
        self._path: Optional[str] = None
        self._lock = threading.Lock()

    def bind_path(self, path: str) -> int:
        """Attach a JSONL backing file, loading any entries already on
        disk.  Returns the number of recovered entries."""
        recovered = []
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        recovered.append(json.loads(line))
                    except ValueError:
                        break  # torn tail: keep what parsed cleanly
        with self._lock:
            self._path = path
            self._entries = recovered + self._entries
            self._rewrite_locked()
        return len(recovered)

    def park(self, entry: dict) -> None:
        with self._lock:
            self._entries.append(entry)
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())

    def drain(self) -> List[dict]:
        """Remove and return all parked entries (oldest first)."""
        with self._lock:
            entries = self._entries
            self._entries = []
            self._rewrite_locked()
            return entries

    def discard(self, signature: str) -> int:
        """Drop parked entries stamped with ``signature`` — the work they
        describe settled through another route (a retried statement
        reissued it), so replaying them would repurchase the answer.
        Returns the number of entries removed."""
        if not signature:
            return 0
        with self._lock:
            kept = [
                e for e in self._entries if e.get("signature") != signature
            ]
            removed = len(self._entries) - len(kept)
            if removed:
                self._entries = kept
                self._rewrite_locked()
            return removed

    def requeue(self, entries: List[dict]) -> None:
        """Put entries back at the front (replay hit an open breaker)."""
        if not entries:
            return
        with self._lock:
            self._entries = list(entries) + self._entries
            self._rewrite_locked()

    def _rewrite_locked(self) -> None:
        if self._path is None:
            return
        tmp = self._path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in self._entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
