"""Quality control: answer cleansing, majority voting, weighted consensus.

"Since human inputs are inherently error prone and diverse in formats,
answers from the crowd workers can never be assumed to be complete or
correct.  The ... operators also have majority-vote driven quality control
measures built-in." (paper §3.2.1)

Cleansing normalizes the free-text diversity (whitespace, case, trivial
punctuation) before voting, so "IBM " and "ibm" count as the same answer;
the *stored* value is the most common raw spelling within the winning
normalized class.

Beyond the paper's plain majority, :meth:`MajorityVote.vote_ballots`
implements **reputation-weighted consensus**: each ballot carries the
submitting worker's log-odds weight (from a
:class:`~repro.crowd.reputation.ReputationStore`), the winning class is
the one with the highest total weight, and the :class:`VoteResult` gains
a posterior ``confidence`` — the sigmoid of the weight margin between the
top two classes (1.0 when unanimous).  Adaptive replication extends a HIT
only while that confidence sits below ``target_confidence``.

Ties between normalized classes break deterministically: the
lexicographically smallest class (by ``repr``) wins, and a
:class:`LowQualityWarning` names the losing class.
"""

from __future__ import annotations

import math
import re
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import LowQualityWarning, QualityControlError

_WHITESPACE = re.compile(r"\s+")
_PUNCTUATION = re.compile(r"[.,;:!?'\"()\[\]]")


def normalize_answer(value: Any) -> Any:
    """Canonical form of a worker answer used as the voting key."""
    if isinstance(value, str):
        text = value.strip()
        text = _PUNCTUATION.sub("", text)
        text = _WHITESPACE.sub(" ", text)
        return text.casefold()
    return value


@dataclass(frozen=True)
class Ballot:
    """One worker's answer to one question, ready for weighted voting."""

    value: Any
    worker_id: str = ""
    weight: float = 1.0


@dataclass(frozen=True)
class VoteResult:
    """Outcome of (possibly weighted) voting over one question."""

    value: Any                  # representative raw answer of the winners
    votes: int                  # ballots for the winning class
    total: int                  # valid ballots counted
    agreement: float            # votes / total (unweighted share)
    confidence: float = 1.0     # posterior confidence in the winning class
    winners: tuple[str, ...] = ()  # worker ids that voted for the winner

    @property
    def unanimous(self) -> bool:
        return self.votes == self.total


def _class_sort_key(key: Any) -> tuple[str, str]:
    """Deterministic total order over normalized answer classes."""
    return (type(key).__name__, repr(key))


class MajorityVote:
    """Majority vote with normalization and a confidence threshold.

    ``min_agreement`` below which a :class:`LowQualityWarning` is issued;
    the winning answer is still returned (the paper performs "simple
    quality control", not rejection).  With ``reputation`` attached,
    :meth:`vote_ballots` weights each ballot by the worker's log-odds
    accuracy estimate; without it every ballot weighs 1.0 and the winner
    is the plain plurality class.
    """

    def __init__(
        self,
        min_agreement: float = 0.5,
        reputation: Optional[Any] = None,  # ReputationStore
        tracer: Optional[Any] = None,      # repro.obs.TraceSink
    ) -> None:
        self.min_agreement = min_agreement
        self.reputation = reputation
        self.tracer = tracer

    def vote(self, answers: list[Any], quiet: bool = False) -> VoteResult:
        """Vote over raw answers ordered by submission time."""
        return self.vote_ballots(
            [Ballot(value=raw) for raw in answers], quiet=quiet
        )

    def vote_ballots(
        self, ballots: list[Ballot], quiet: bool = False
    ) -> VoteResult:
        """Weighted consensus over worker ballots.

        ``quiet`` suppresses the low-quality warnings — used by the
        adaptive-replication confidence probes, which re-vote the same
        ballots every marketplace round.
        """
        if not ballots:
            raise QualityControlError("majority vote over zero answers")
        weights_by_class: dict[Any, list[float]] = {}
        counts: dict[Any, int] = {}
        raw_by_class: dict[Any, Counter] = {}
        workers_by_class: dict[Any, list[str]] = {}
        for ballot in ballots:
            key = normalize_answer(ballot.value)
            weight = ballot.weight
            if self.reputation is not None and ballot.worker_id:
                weight = self.reputation.weight(ballot.worker_id)
            weights_by_class.setdefault(key, []).append(weight)
            counts[key] = counts.get(key, 0) + 1
            raw_by_class.setdefault(key, Counter())[_hashable(ballot.value)] += 1
            workers_by_class.setdefault(key, []).append(ballot.worker_id)
        # per-class score summed over *sorted* weights (math.fsum): the
        # total is exact and independent of ballot arrival order, so the
        # tie comparison below is genuinely permutation-invariant
        scores = {
            key: math.fsum(sorted(weights))
            for key, weights in weights_by_class.items()
        }

        # winner: highest total weight; exact ties break to the
        # lexicographically smallest class (deterministic regardless of
        # ballot arrival order)
        best_score = max(scores.values())
        tied = sorted(
            (key for key, score in scores.items() if score == best_score),
            key=_class_sort_key,
        )
        winner_key = tied[0]
        winner_votes = counts[winner_key]
        representative = self._representative(raw_by_class[winner_key])
        total = len(ballots)
        agreement = winner_votes / total
        confidence = self._confidence(scores, winner_key)
        if not quiet:
            if len(tied) > 1:
                losers = ", ".join(repr(key) for key in tied[1:])
                warnings.warn(
                    f"vote tied between {winner_key!r} and {losers}; "
                    f"breaking toward {winner_key!r}",
                    LowQualityWarning,
                    stacklevel=3,
                )
            elif agreement < self.min_agreement:
                warnings.warn(
                    f"majority vote agreement {agreement:.0%} below threshold "
                    f"{self.min_agreement:.0%} (answer {representative!r})",
                    LowQualityWarning,
                    stacklevel=3,
                )
        if self.tracer is not None and not quiet:
            # settle-time verdicts only: quiet confidence probes re-vote
            # the same ballots every round and would flood the ring
            self.tracer.emit(
                "vote",
                value=str(representative),
                votes=winner_votes,
                total=total,
                agreement=round(agreement, 4),
                confidence=round(confidence, 4),
                weighted=self.reputation is not None,
            )
        return VoteResult(
            value=representative,
            votes=winner_votes,
            total=total,
            agreement=agreement,
            confidence=confidence,
            winners=tuple(workers_by_class[winner_key]),
        )

    @staticmethod
    def _representative(raw_counts: Counter) -> Any:
        """Most common raw spelling; ties break lexicographically."""
        best = max(raw_counts.values())
        return sorted(
            (raw for raw, count in raw_counts.items() if count == best),
            key=_class_sort_key,
        )[0]

    @staticmethod
    def _confidence(scores: dict[Any, float], winner_key: Any) -> float:
        """Posterior confidence: sigmoid of the weight margin between the
        top two classes; 1.0 when every ballot fell into one class."""
        if len(scores) == 1:
            return 1.0
        runner_up = max(
            score for key, score in scores.items() if key != winner_key
        )
        margin = scores[winner_key] - runner_up
        if margin > 60.0:  # exp overflow guard; sigmoid is 1.0 anyway
            return 1.0
        return 1.0 / (1.0 + math.exp(-margin))

    def vote_fields(self, answers: list[dict[str, Any]]) -> dict[str, VoteResult]:
        """Vote per form field over dict-shaped answers (FILL/NEW_TUPLE)."""
        if not answers:
            raise QualityControlError("majority vote over zero answers")
        fields: dict[str, list[Any]] = {}
        for answer in answers:
            for field_name, value in answer.items():
                fields.setdefault(field_name, []).append(value)
        return {
            field_name: self.vote(values)
            for field_name, values in fields.items()
        }

    def vote_boolean(
        self, answers: list[bool], quiet: bool = False
    ) -> VoteResult:
        """Specialized vote for COMPARE_EQUAL ballots."""
        return self.vote([bool(a) for a in answers], quiet=quiet)


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
