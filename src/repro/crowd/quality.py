"""Quality control: answer cleansing and majority voting.

"Since human inputs are inherently error prone and diverse in formats,
answers from the crowd workers can never be assumed to be complete or
correct.  The ... operators also have majority-vote driven quality control
measures built-in." (paper §3.2.1)

Cleansing normalizes the free-text diversity (whitespace, case, trivial
punctuation) before voting, so "IBM " and "ibm" count as the same answer;
the *stored* value is the most common raw spelling within the winning
normalized class.
"""

from __future__ import annotations

import re
import warnings
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import LowQualityWarning, QualityControlError

_WHITESPACE = re.compile(r"\s+")
_PUNCTUATION = re.compile(r"[.,;:!?'\"()\[\]]")


def normalize_answer(value: Any) -> Any:
    """Canonical form of a worker answer used as the voting key."""
    if isinstance(value, str):
        text = value.strip()
        text = _PUNCTUATION.sub("", text)
        text = _WHITESPACE.sub(" ", text)
        return text.casefold()
    return value


@dataclass(frozen=True)
class VoteResult:
    """Outcome of majority voting over one question."""

    value: Any                  # representative raw answer of the winners
    votes: int                  # votes for the winning class
    total: int                  # valid ballots counted
    agreement: float            # votes / total

    @property
    def unanimous(self) -> bool:
        return self.votes == self.total


class MajorityVote:
    """Majority vote with normalization and a confidence threshold.

    ``min_agreement`` below which a :class:`LowQualityWarning` is issued;
    the winning answer is still returned (the paper performs "simple
    quality control", not rejection).  Ties break toward the earliest
    submitted answer, which is deterministic for the simulators.
    """

    def __init__(self, min_agreement: float = 0.5) -> None:
        self.min_agreement = min_agreement

    def vote(self, answers: list[Any]) -> VoteResult:
        """Vote over raw answers ordered by submission time."""
        if not answers:
            raise QualityControlError("majority vote over zero answers")
        counts: "OrderedDict[Any, int]" = OrderedDict()
        raw_by_class: dict[Any, Counter] = {}
        for raw in answers:
            key = normalize_answer(raw)
            counts[key] = counts.get(key, 0) + 1
            raw_by_class.setdefault(key, Counter())[_hashable(raw)] += 1
        winner_key, winner_votes = max(
            counts.items(), key=lambda item: item[1]
        )  # max() is stable: first-seen wins ties
        representative = raw_by_class[winner_key].most_common(1)[0][0]
        total = len(answers)
        agreement = winner_votes / total
        if agreement < self.min_agreement:
            warnings.warn(
                f"majority vote agreement {agreement:.0%} below threshold "
                f"{self.min_agreement:.0%} (answer {representative!r})",
                LowQualityWarning,
                stacklevel=2,
            )
        return VoteResult(
            value=representative,
            votes=winner_votes,
            total=total,
            agreement=agreement,
        )

    def vote_fields(self, answers: list[dict[str, Any]]) -> dict[str, VoteResult]:
        """Vote per form field over dict-shaped answers (FILL/NEW_TUPLE)."""
        if not answers:
            raise QualityControlError("majority vote over zero answers")
        fields: dict[str, list[Any]] = {}
        for answer in answers:
            for field_name, value in answer.items():
                fields.setdefault(field_name, []).append(value)
        return {
            field_name: self.vote(values)
            for field_name, values in fields.items()
        }

    def vote_boolean(self, answers: list[bool]) -> VoteResult:
        """Specialized vote for COMPARE_EQUAL ballots."""
        return self.vote([bool(a) for a in answers])


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
