"""Sort operators, including the crowd-backed sort.

A Sort whose keys contain CROWDORDER compiles to a comparison sort whose
comparator is the CrowdCompare operator: every binary comparison becomes
a ballot ("an operator that implements quick-sort can use CrowdCompare to
perform the required binary comparisons", paper §3.2.1).  With a top-k
bound (stop-after push-down) a selection tournament replaces the full
sort, cutting comparisons from O(n log n) to O(n·k).

Batch crowd execution (``batch_size`` > 1) swaps both crowd sorts for
round-based variants — a pairwise elimination bracket for top-k and a
lock-step bottom-up merge sort for full orders — that collect each
round's comparison set, issue every ballot together, and settle them in
one overlapped marketplace round.
"""

from __future__ import annotations

import functools
from typing import Any, Iterator, Optional

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.sql import ast
from repro.sqltypes import compare_values, is_missing
from repro.storage.row import Scope


class SortOp(PhysicalOperator):
    """ORDER BY over materialized input."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        keys: tuple[tuple[ast.Expression, bool], ...],
        top_k: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.keys = keys
        self.top_k = top_k

    @property
    def scope(self) -> Scope:
        return self.child.scope

    @property
    def is_crowd_sort(self) -> bool:
        return any(isinstance(expr, ast.CrowdOrder) for expr, _asc in self.keys)

    def sources_crowd_on_pull(self) -> bool:
        # the child is consumed entirely on first pull; only a crowd sort
        # (tournament top-k issues ballots per emitted row) reacts to pulls
        return self.is_crowd_sort

    def __iter__(self) -> Iterator[tuple]:
        rows = list(self.child)
        if not rows:
            return
        if self.is_crowd_sort:
            yield from self._crowd_sort(rows)
        else:
            yield from self._value_sort(rows)

    # -- electronic sort ---------------------------------------------------------

    def _value_sort(self, rows: list[tuple]) -> Iterator[tuple]:
        scope = self.child.scope
        key_fns = [
            (self.compile_value(expr, scope), ascending)
            for expr, ascending in self.keys
        ]
        columns = [
            ([fn(values) for values in rows], ascending)
            for fn, ascending in key_fns
        ]
        if all(_clean_column(column) for column, _asc in columns):
            # every key column is free of NULL/CNULL and homogeneously
            # typed: raw values collate exactly like _SortKey, so sort
            # key-based — one stable pass per key, last key first
            order = list(range(len(rows)))
            for column, ascending in reversed(columns):
                order.sort(key=column.__getitem__, reverse=not ascending)
            for index in order:
                yield rows[index]
            return
        decorated = [
            (
                tuple(
                    _SortKey(column[i], ascending)
                    for column, ascending in columns
                ),
                i,
            )
            for i in range(len(rows))
        ]
        decorated.sort(key=lambda pair: pair[0])
        for _key, index in decorated:
            yield rows[index]

    # -- crowd-backed sort ----------------------------------------------------------

    def _compiled_keys(self):
        """Per-key compiled forms: ``(value fn, crowd question, asc)``;
        ``question`` is None for electronic keys."""
        scope = self.child.scope
        compiled = []
        for expr, ascending in self.keys:
            if isinstance(expr, ast.CrowdOrder):
                compiled.append(
                    (self.compile_value(expr.operand, scope),
                     expr.question, ascending)
                )
            else:
                compiled.append(
                    (self.compile_value(expr, scope), None, ascending)
                )
        return compiled

    def _comparator(self, compiled_keys):
        crowd_order = self.context.crowd_order

        def compare(a: tuple, b: tuple) -> int:
            for fn, question, ascending in compiled_keys:
                left = fn(a)
                right = fn(b)
                if question is not None:
                    if is_missing(left) or is_missing(right):
                        ordering = 0
                    elif left == right:
                        ordering = 0
                    else:
                        prefer_left = crowd_order(left, right, question)
                        ordering = -1 if prefer_left else 1
                else:
                    ordering = _missing_aware_compare(left, right)
                if not ascending:
                    ordering = -ordering
                if ordering != 0:
                    return ordering
            return 0

        return compare

    def _crowd_sort(self, rows: list[tuple]) -> Iterator[tuple]:
        self._crowd_keys = self._compiled_keys()
        compare = self._comparator(self._crowd_keys)
        batched = (
            self.context.task_manager is not None
            and self.context.batch_size > 1
            and len(rows) > 2
        )
        if self.top_k is not None and self.top_k < len(rows):
            if batched:
                yield from self._bracket_top_k(rows, compare, self.top_k)
            else:
                yield from self._tournament_top_k(rows, compare, self.top_k)
        elif batched:
            yield from self._batched_merge_sort(rows, compare)
        else:
            yield from sorted(rows, key=functools.cmp_to_key(compare))

    # -- batched crowd sort ---------------------------------------------------------

    def _needed_ballot(self, a: tuple, b: tuple) -> Optional[tuple]:
        """The one CROWDORDER ballot ``compare(a, b)`` will ask, if any.

        Keys are walked in order: electronic keys (and tying crowd keys)
        are resolved locally; the first crowd key whose operands differ
        decides the comparison with a single ballot, because a ballot
        never ties."""
        for fn, question, _ascending in self._crowd_keys:
            if question is not None:
                left = fn(a)
                right = fn(b)
                if is_missing(left) or is_missing(right) or left == right:
                    continue  # ties; the next key decides
                return (left, right, question)
            if _missing_aware_compare(fn(a), fn(b)) != 0:
                return None  # an electronic key decides first
        return None

    def _prefetch_pairs(self, pairs: list[tuple[tuple, tuple]]) -> None:
        """Issue the ballots a round of comparisons needs, settle once."""
        ballots = []
        for a, b in pairs:
            ballot = self._needed_ballot(a, b)
            if ballot is not None:
                ballots.append(ballot)
        if ballots:
            self.context.prefetch_compare_order(ballots)

    def _bracket_top_k(
        self, rows: list[tuple], compare, k: int
    ) -> Iterator[tuple]:
        """Selection tournament, batched: each pass finds the minimum of
        the remaining rows with a pairwise elimination bracket whose
        rounds issue their ballots together — the same n-1 comparisons
        per pass as the linear scan, but O(log n) crowd rounds instead of
        O(n), and later passes mostly replay cached ballots."""
        remaining = list(rows)
        for _ in range(min(k, len(rows))):
            candidates = list(range(len(remaining)))
            while len(candidates) > 1:
                pairs = [
                    (candidates[i], candidates[i + 1])
                    for i in range(0, len(candidates) - 1, 2)
                ]
                self._prefetch_pairs(
                    [(remaining[a], remaining[b]) for a, b in pairs]
                )
                winners = []
                for a, b in pairs:
                    # ties keep the earlier row, like the linear scan
                    winners.append(
                        a if compare(remaining[a], remaining[b]) <= 0 else b
                    )
                if len(candidates) % 2:
                    winners.append(candidates[-1])
                candidates = winners
            yield remaining.pop(candidates[0])

    def _batched_merge_sort(self, rows: list[tuple], compare) -> Iterator[tuple]:
        """Bottom-up stable merge sort whose active merges advance in
        lock-step rounds: each round issues one ballot per merge and
        settles them together, cutting crowd rounds from O(n log n) to
        O(n).  Both this and the sequential comparison sort are stable,
        so a consistent comparator yields identical output."""
        runs: list[list[tuple]] = [[row] for row in rows]
        while len(runs) > 1:
            merges = [
                _MergeState(runs[i], runs[i + 1])
                for i in range(0, len(runs) - 1, 2)
            ]
            leftover = runs[-1] if len(runs) % 2 else None
            while True:
                active = [m for m in merges if m.active()]
                if not active:
                    break
                self._prefetch_pairs([m.frontier() for m in active])
                for merge in active:
                    merge.step(compare)
            runs = [m.finish() for m in merges]
            if leftover is not None:
                runs.append(leftover)
        yield from runs[0]

    @staticmethod
    def _tournament_top_k(rows: list[tuple], compare, k: int) -> Iterator[tuple]:
        """Selection tournament: k passes of pairwise minimum.

        Uses at most (n-1) + (k-1)(n-1) ≈ n·k comparisons and never more
        ballots than a full sort would — the paper's stop-after push-down
        payoff for Example 3 (LIMIT 10 over CROWDORDER).
        """
        remaining = list(rows)
        for _ in range(min(k, len(rows))):
            best_index = 0
            for index in range(1, len(remaining)):
                if compare(remaining[index], remaining[best_index]) < 0:
                    best_index = index
            yield remaining.pop(best_index)


class _MergeState:
    """One in-progress stable merge of two sorted runs."""

    __slots__ = ("a", "b", "i", "j", "out")

    def __init__(self, a: list[tuple], b: list[tuple]) -> None:
        self.a = a
        self.b = b
        self.i = 0
        self.j = 0
        self.out: list[tuple] = []

    def active(self) -> bool:
        return self.i < len(self.a) and self.j < len(self.b)

    def frontier(self) -> tuple[tuple, tuple]:
        """The pair the next step will compare."""
        return (self.a[self.i], self.b[self.j])

    def step(self, compare) -> None:
        if compare(self.a[self.i], self.b[self.j]) <= 0:
            self.out.append(self.a[self.i])
            self.i += 1
        else:
            self.out.append(self.b[self.j])
            self.j += 1

    def finish(self) -> list[tuple]:
        return self.out + self.a[self.i :] + self.b[self.j :]


@functools.total_ordering
class _SortKey:
    """Wrap a value so missing sorts last and DESC flips the order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return _missing_aware_compare(self.value, other.value) == 0

    def __lt__(self, other: "_SortKey") -> bool:
        ordering = _missing_aware_compare(self.value, other.value)
        if not self.ascending:
            ordering = -ordering
        return ordering < 0


def _clean_column(column: list) -> bool:
    """True when raw Python comparison of the column's values collates
    exactly like :class:`_SortKey`: no NULL/CNULL (missing-last handling
    never kicks in) and one homogeneous comparison class (str, bool, or
    bool-free numeric — the classes ``compare_values`` accepts).  NaN is
    excluded: ``compare_values`` derives ordering 0 for NaN against
    anything, so only the comparator path reproduces its placement."""
    if not column:
        return True
    first = column[0]
    if isinstance(first, bool):
        return all(isinstance(v, bool) for v in column)
    if isinstance(first, str):
        return all(isinstance(v, str) for v in column)
    if isinstance(first, (int, float)):
        return all(
            isinstance(v, (int, float))
            and not isinstance(v, bool)
            and v == v  # NaN fails this
            for v in column
        )
    return False


def _missing_aware_compare(left: Any, right: Any) -> int:
    """SQL sort order: missing values (NULL/CNULL) sort last."""
    left_missing = is_missing(left)
    right_missing = is_missing(right)
    if left_missing and right_missing:
        return 0
    if left_missing:
        return 1
    if right_missing:
        return -1
    ordering = compare_values(left, right)
    return 0 if ordering is None else ordering
