"""Sort operators, including the crowd-backed sort.

A Sort whose keys contain CROWDORDER compiles to a comparison sort whose
comparator is the CrowdCompare operator: every binary comparison becomes
a ballot ("an operator that implements quick-sort can use CrowdCompare to
perform the required binary comparisons", paper §3.2.1).  With a top-k
bound (stop-after push-down) a selection tournament replaces the full
sort, cutting comparisons from O(n log n) to O(n·k).
"""

from __future__ import annotations

import functools
from typing import Any, Iterator, Optional

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.sql import ast
from repro.sqltypes import compare_values, is_missing
from repro.storage.row import Scope


class SortOp(PhysicalOperator):
    """ORDER BY over materialized input."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        keys: tuple[tuple[ast.Expression, bool], ...],
        top_k: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.keys = keys
        self.top_k = top_k

    @property
    def scope(self) -> Scope:
        return self.child.scope

    @property
    def is_crowd_sort(self) -> bool:
        return any(isinstance(expr, ast.CrowdOrder) for expr, _asc in self.keys)

    def __iter__(self) -> Iterator[tuple]:
        rows = list(self.child)
        if not rows:
            return
        if self.is_crowd_sort:
            yield from self._crowd_sort(rows)
        else:
            yield from self._value_sort(rows)

    # -- electronic sort ---------------------------------------------------------

    def _value_sort(self, rows: list[tuple]) -> Iterator[tuple]:
        scope = self.child.scope
        decorated = []
        for values in rows:
            key = tuple(
                _SortKey(self.eval(expr, values, scope), ascending)
                for expr, ascending in self.keys
            )
            decorated.append((key, values))
        decorated.sort(key=lambda pair: pair[0])
        for _key, values in decorated:
            yield values

    # -- crowd-backed sort ----------------------------------------------------------

    def _comparator(self):
        scope = self.child.scope

        def compare(a: tuple, b: tuple) -> int:
            for expr, ascending in self.keys:
                if isinstance(expr, ast.CrowdOrder):
                    left = self.eval(expr.operand, a, scope)
                    right = self.eval(expr.operand, b, scope)
                    if is_missing(left) or is_missing(right):
                        ordering = 0
                    elif left == right:
                        ordering = 0
                    else:
                        prefer_left = self.context.crowd_order(
                            left, right, expr.question
                        )
                        ordering = -1 if prefer_left else 1
                else:
                    left = self.eval(expr, a, scope)
                    right = self.eval(expr, b, scope)
                    ordering = _missing_aware_compare(left, right)
                if not ascending:
                    ordering = -ordering
                if ordering != 0:
                    return ordering
            return 0

        return compare

    def _crowd_sort(self, rows: list[tuple]) -> Iterator[tuple]:
        compare = self._comparator()
        if self.top_k is not None and self.top_k < len(rows):
            yield from self._tournament_top_k(rows, compare, self.top_k)
        else:
            yield from sorted(rows, key=functools.cmp_to_key(compare))

    @staticmethod
    def _tournament_top_k(rows: list[tuple], compare, k: int) -> Iterator[tuple]:
        """Selection tournament: k passes of pairwise minimum.

        Uses at most (n-1) + (k-1)(n-1) ≈ n·k comparisons and never more
        ballots than a full sort would — the paper's stop-after push-down
        payoff for Example 3 (LIMIT 10 over CROWDORDER).
        """
        remaining = list(rows)
        for _ in range(min(k, len(rows))):
            best_index = 0
            for index in range(1, len(remaining)):
                if compare(remaining[index], remaining[best_index]) < 0:
                    best_index = index
            yield remaining.pop(best_index)


@functools.total_ordering
class _SortKey:
    """Wrap a value so missing sorts last and DESC flips the order."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: Any, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return _missing_aware_compare(self.value, other.value) == 0

    def __lt__(self, other: "_SortKey") -> bool:
        ordering = _missing_aware_compare(self.value, other.value)
        if not self.ascending:
            ordering = -ordering
        return ordering < 0


def _missing_aware_compare(left: Any, right: Any) -> int:
    """SQL sort order: missing values (NULL/CNULL) sort last."""
    left_missing = is_missing(left)
    right_missing = is_missing(right)
    if left_missing and right_missing:
        return 0
    if left_missing:
        return 1
    if right_missing:
        return -1
    ordering = compare_values(left, right)
    return 0 if ordering is None else ordering
