"""Physical planning: translate optimized logical plans into operators."""

from __future__ import annotations

from typing import Optional

from repro.engine.aggregate import AggregateOp
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.engine.crowd_probe import CrowdProbeOp
from repro.engine.filter_project import (
    DistinctOp,
    FilterOp,
    LimitOp,
    ProjectOp,
    SetOpOp,
    SubqueryAliasOp,
)
from repro.engine.joins import CrowdJoinOp, HashJoinOp, NestedLoopJoinOp
from repro.engine.scans import SingleRowOp, TableScan
from repro.engine.sort_limit import SortOp
from repro.errors import PlanError
from repro.optimizer.rules import split_conjuncts
from repro.plan import logical
from repro.sql import ast
from repro.storage.row import Scope


class PhysicalPlanner:
    """Maps each logical node to its physical operator.

    With a ``profiler`` (EXPLAIN ANALYZE), every operator is wrapped in
    a transparent measuring proxy keyed by its logical node, so runtime
    actuals join against the optimizer's compile-time annotations.
    """

    def __init__(
        self,
        context: ExecutionContext,
        correlation: Correlation = None,
        profiler: Optional[object] = None,  # repro.obs.QueryProfiler
        bindings: Optional[dict] = None,  # id(node) -> plan.binder.NodeBinding
    ) -> None:
        self.context = context
        self.correlation = correlation
        self.profiler = profiler
        # correlated subqueries evaluate against an outer row the batch
        # kernels know nothing about — they stay on the row pipeline
        self.bindings = bindings if correlation is None else None

    def plan(
        self,
        node: logical.LogicalPlan,
        row_bound: Optional[int] = None,
    ) -> PhysicalOperator:
        """Translate ``node``; ``row_bound`` is the number of output rows
        the consumer can possibly pull (an enclosing LIMIT), threaded
        down through row-preserving operators to clamp batch windows."""
        if self.bindings is not None:
            binding = self.bindings.get(id(node))
            if binding is not None and binding.vectorized:
                from repro.exec.vectorized import BatchToRowsOp

                # the transition operator is not profiler-wrapped: the
                # vector node inside already carries this logical node's
                # metrics (batch-aware row accounting).  The logical node
                # rides along as the region handle for process-pool
                # dispatch — except under EXPLAIN ANALYZE, whose profiler
                # proxies would never see rows produced in a worker.
                region = node if self.profiler is None else None
                return BatchToRowsOp(
                    self.context, self._plan_vector(node), region=region
                )
        operator = self._plan_node(node, row_bound)
        if self.profiler is not None:
            operator = self.profiler.wrap(node, operator)
        return operator

    def _plan_vector(self, node: logical.LogicalPlan) -> PhysicalOperator:
        """Build the batch operator for a binder-approved node (children
        included: the binder only marks a node when its whole input
        subtree is vector-eligible)."""
        from repro.exec.vectorized import (
            VectorAggregateOp,
            VectorFilterOp,
            VectorHashJoinOp,
            VectorProjectOp,
            VectorScanOp,
        )

        if isinstance(node, logical.Scan):
            operator: PhysicalOperator = VectorScanOp(
                self.context, node.table, node.binding
            )
        elif isinstance(node, logical.Filter):
            operator = VectorFilterOp(
                self.context, self._plan_vector(node.child), node.predicate
            )
        elif isinstance(node, logical.Project):
            operator = VectorProjectOp(
                self.context, self._plan_vector(node.child), node.items
            )
        elif isinstance(node, logical.Join):
            left = self._plan_vector(node.left)
            right = self._plan_vector(node.right)
            keys = _extract_equi_keys(node.condition, left.scope, right.scope)
            if not keys:
                raise PlanError(
                    "binder marked a join without extractable equi keys"
                )
            left_keys, right_keys = keys
            operator = VectorHashJoinOp(
                self.context,
                left,
                right,
                left_keys,
                right_keys,
                condition=node.condition,
                join_type=node.join_type,
            )
        elif isinstance(node, logical.Aggregate):
            operator = VectorAggregateOp(
                self.context,
                self._plan_vector(node.child),
                node.group_by,
                node.aggregates,
            )
        else:
            raise PlanError(
                f"no vectorized operator for {type(node).__name__}"
            )
        if self.profiler is not None:
            operator = self.profiler.wrap(node, operator)
        return operator

    def _plan_node(
        self,
        node: logical.LogicalPlan,
        row_bound: Optional[int] = None,
    ) -> PhysicalOperator:
        if isinstance(node, logical.Scan):
            return TableScan(
                self.context,
                node.table,
                node.binding,
                limit_hint=node.limit_hint,
                correlation=self.correlation,
            )
        if isinstance(node, logical.SingleRow):
            return SingleRowOp(self.context, self.correlation)
        if isinstance(node, logical.CrowdProbe):
            return CrowdProbeOp(
                self.context,
                self.plan(node.child, row_bound),
                node.table,
                node.binding,
                node.columns,
                anti_probe_keys=node.anti_probe_keys,
                batch_size=self._batch_hint(node.child, row_bound),
                correlation=self.correlation,
            )
        if isinstance(node, logical.Filter):
            indexed = self._try_index_scan(node, row_bound)
            if indexed is not None:
                return indexed
            return FilterOp(
                self.context,
                self.plan(node.child, row_bound),
                node.predicate,
                batch_size=self._batch_hint(node.child, row_bound),
                correlation=self.correlation,
            )
        if isinstance(node, logical.Project):
            return ProjectOp(
                self.context,
                self.plan(node.child, row_bound),
                node.items,
                correlation=self.correlation,
            )
        if isinstance(node, logical.Join):
            return self._plan_join(node)
        if isinstance(node, logical.CrowdJoin):
            return CrowdJoinOp(
                self.context,
                self.plan(node.left, row_bound),
                node.inner_table,
                node.inner_binding,
                node.condition,
                node.inner_key_columns,
                node.outer_key_exprs,
                node.needed_columns,
                batch_size=self._batch_hint(node.left, row_bound),
                correlation=self.correlation,
            )
        if isinstance(node, logical.Aggregate):
            return AggregateOp(
                self.context,
                self.plan(node.child),  # aggregation consumes everything
                node.group_by,
                node.aggregates,
                correlation=self.correlation,
            )
        if isinstance(node, logical.Sort):
            return SortOp(
                self.context,
                self.plan(node.child),  # sorting consumes everything
                node.keys,
                top_k=node.top_k,
                correlation=self.correlation,
            )
        if isinstance(node, logical.Limit):
            bound = None
            if node.limit is not None:
                bound = max(1, node.limit + node.offset)
                if row_bound is not None:
                    bound = min(bound, row_bound)
            else:
                bound = row_bound
            return LimitOp(
                self.context,
                self.plan(node.child, bound),
                node.limit,
                node.offset,
                correlation=self.correlation,
            )
        if isinstance(node, logical.Distinct):
            return DistinctOp(
                self.context,
                self.plan(node.child, row_bound),
                correlation=self.correlation,
            )
        if isinstance(node, logical.SubqueryAlias):
            return SubqueryAliasOp(
                self.context,
                self.plan(node.child, row_bound),
                node.alias,
                correlation=self.correlation,
            )
        if isinstance(node, logical.SetOperation):
            return SetOpOp(
                self.context,
                self.plan(node.left),
                self.plan(node.right),
                node.op,
                correlation=self.correlation,
            )
        raise PlanError(f"no physical operator for {type(node).__name__}")

    # -- batch crowd execution ------------------------------------------------------

    def _batch_hint(
        self,
        child: logical.LogicalPlan,
        row_bound: Optional[int] = None,
    ) -> int:
        """Window for batch crowd execution over ``child``'s tuples.

        The session's configured ``batch_size``, clamped by a pushed-down
        stop-after bound on the scan *and* by any enclosing LIMIT that
        was not pushed down (e.g. one stopping above a crowd filter), so
        a bounded query never speculatively issues crowd tasks for more
        rows than its consumer can pull."""
        hint = self.context.batch_size
        if isinstance(child, logical.Scan) and child.limit_hint is not None:
            hint = min(hint, max(1, child.limit_hint))
        if row_bound is not None:
            hint = min(hint, max(1, row_bound))
        return hint

    # -- access-path selection ------------------------------------------------------

    def _try_index_scan(
        self, node: logical.Filter, row_bound: Optional[int] = None
    ) -> Optional[PhysicalOperator]:
        """Filter(Scan) with indexed equality conjuncts becomes an index
        lookup plus a residual filter — the access-method selection H2
        would perform.

        The equality conjuncts are matched as a *set* against every index
        key: a composite index is used when the conjuncts cover all of
        its columns (e.g. ``a = 1 AND b = 2`` against an index on
        ``(a, b)``), and an ordered index is still used when they only
        cover a key prefix.  The longest covered key wins; ties prefer
        full-key matches over prefix scans.

        Skipped for crowd scans carrying a limit hint (those must run the
        open-world sourcing path of :class:`TableScan`).
        """
        from repro.engine.scans import IndexLookup

        scan = node.child
        matched = match_index_access(self.context.engine, node)
        if matched is None:
            return None
        key_columns, key_values, prefix = matched
        lookup = IndexLookup(
            self.context,
            scan.table,
            scan.binding,
            key_columns,
            key_values,
            prefix=prefix,
            correlation=self.correlation,
        )
        # keep the full predicate as a residual: cheap and always safe
        return FilterOp(
            self.context, lookup, node.predicate,
            batch_size=self._batch_hint(scan, row_bound),
            correlation=self.correlation,
        )

    # -- join strategy ------------------------------------------------------------

    def _plan_join(self, node: logical.Join) -> PhysicalOperator:
        left = self.plan(node.left)
        right = self.plan(node.right)
        if node.join_type in ("INNER", "LEFT") and node.condition is not None:
            keys = _extract_equi_keys(node.condition, left.scope, right.scope)
            if keys:
                left_keys, right_keys = keys
                return HashJoinOp(
                    self.context,
                    left,
                    right,
                    left_keys,
                    right_keys,
                    condition=node.condition,
                    join_type=node.join_type,
                    correlation=self.correlation,
                )
        return NestedLoopJoinOp(
            self.context,
            left,
            right,
            join_type=node.join_type,
            condition=node.condition,
            correlation=self.correlation,
        )


def match_index_access(
    engine: object, node: logical.Filter
) -> Optional[tuple[tuple[str, ...], tuple, bool]]:
    """The access-method decision for a Filter node, shared by the
    physical planner (which builds the IndexLookup) and the binder
    (which must mark index-served filters row so both stages agree).

    Returns ``(key_columns, key_values, prefix)`` when an index serves
    the filter's equality conjuncts, else ``None``.
    """
    from repro.storage.index import OrderedIndex
    from repro.sqltypes import coerce

    scan = node.child
    if not isinstance(scan, logical.Scan) or scan.limit_hint is not None:
        return None
    if not engine.has_table(scan.table.name):
        return None
    heap = engine.table(scan.table.name)
    equalities: dict[str, object] = {}
    for conjunct in split_conjuncts(node.predicate):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        column, literal = _column_literal(conjunct)
        if column is None:
            continue
        if column.table is not None and (
            column.table.lower() != scan.binding.lower()
        ):
            continue
        if not scan.table.has_column(column.name):
            continue
        try:
            key = coerce(literal, scan.table.column(column.name).sql_type)
        except Exception:
            # mistyped literal: with an index on exactly this column
            # fall back to a scan (the lookup key would be garbage);
            # otherwise just drop the conjunct from the equality set
            # so other conjuncts can still pick their index
            if heap.index_on((column.name,)) is not None:
                return None
            continue
        equalities.setdefault(column.name.lower(), key)
    if not equalities:
        return None
    best: Optional[tuple[tuple[str, ...], bool]] = None  # (columns, prefix)
    for index in heap.indexes.values():
        covered = 0
        for column in index.columns:
            if column.lower() not in equalities:
                break
            covered += 1
        if covered == 0:
            continue
        full = covered == len(index.columns)
        if not full and not isinstance(index, OrderedIndex):
            continue  # hash indexes need the whole key
        candidate = (tuple(index.columns[:covered]), not full)
        if best is None or (len(candidate[0]), not candidate[1]) > (
            len(best[0]), not best[1]
        ):
            best = candidate
    if best is None:
        return None
    key_columns, prefix = best
    return (
        key_columns,
        tuple(equalities[c.lower()] for c in key_columns),
        prefix,
    )


def _extract_equi_keys(
    condition: ast.Expression, left_scope: Scope, right_scope: Scope
) -> Optional[tuple[tuple[ast.Expression, ...], tuple[ast.Expression, ...]]]:
    """Split equality conjuncts into (left keys, right keys) when possible."""
    left_keys: list[ast.Expression] = []
    right_keys: list[ast.Expression] = []
    for conjunct in split_conjuncts(condition):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        if ast.contains_crowd_builtin(conjunct):
            continue
        a_side = _side_of(conjunct.left, left_scope, right_scope)
        b_side = _side_of(conjunct.right, left_scope, right_scope)
        if a_side == "left" and b_side == "right":
            left_keys.append(conjunct.left)
            right_keys.append(conjunct.right)
        elif a_side == "right" and b_side == "left":
            left_keys.append(conjunct.right)
            right_keys.append(conjunct.left)
    if not left_keys:
        return None
    return tuple(left_keys), tuple(right_keys)


def _column_literal(
    conjunct: ast.BinaryOp,
) -> tuple[Optional[ast.ColumnRef], object]:
    """Unpack ``col = literal`` (either orientation)."""
    if isinstance(conjunct.left, ast.ColumnRef) and isinstance(
        conjunct.right, ast.Literal
    ):
        return conjunct.left, conjunct.right.value
    if isinstance(conjunct.right, ast.ColumnRef) and isinstance(
        conjunct.left, ast.Literal
    ):
        return conjunct.right, conjunct.left.value
    return None, None


def _side_of(
    expr: ast.Expression, left_scope: Scope, right_scope: Scope
) -> Optional[str]:
    refs = list(ast.expression_columns(expr))
    if not refs:
        return None
    in_left = all(ref_resolves(ref, left_scope) for ref in refs)
    in_right = all(ref_resolves(ref, right_scope) for ref in refs)
    if in_left and not in_right:
        return "left"
    if in_right and not in_left:
        return "right"
    return None


def ref_resolves(ref: ast.ColumnRef, scope: Scope) -> bool:
    return scope.has(ref.name, ref.table)
