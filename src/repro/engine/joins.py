"""Join operators: block nested-loop, hash equi-join, and the CrowdJoin."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.catalog.table import TableSchema
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sqltypes import NULL, is_missing
from repro.storage.row import Scope


class NestedLoopJoinOp(PhysicalOperator):
    """Materializing nested-loop join supporting INNER, CROSS, and LEFT."""

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        join_type: str = "INNER",
        condition: Optional[ast.Expression] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        if join_type not in ("INNER", "CROSS", "LEFT"):
            raise ExecutionError(f"unsupported join type {join_type!r}")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self._scope = left.scope.concat(right.scope)

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        right_rows = list(self.right)
        right_width = len(self.right.scope)
        for left_values in self.left:
            matched = False
            for right_values in right_rows:
                combined = left_values + right_values
                if self.condition is not None:
                    verdict = self.predicate(
                        self.condition, combined, self._scope
                    )
                    if verdict.value is not True:
                        continue
                matched = True
                yield combined
            if not matched and self.join_type == "LEFT":
                yield left_values + (NULL,) * right_width


class HashJoinOp(PhysicalOperator):
    """Hash equi-join for INNER joins with extractable key pairs.

    ``left_keys``/``right_keys`` are parallel expression lists; a residual
    condition (the full original one) is re-checked on each candidate to
    keep semantics identical to the nested-loop plan.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[ast.Expression, ...],
        right_keys: tuple[ast.Expression, ...],
        condition: Optional[ast.Expression] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.condition = condition
        self._scope = left.scope.concat(right.scope)

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        right_scope = self.right.scope
        for right_values in self.right:
            key = tuple(
                self.eval(expr, right_values, right_scope)
                for expr in self.right_keys
            )
            if any(is_missing(part) for part in key):
                continue
            table.setdefault(key, []).append(right_values)
        left_scope = self.left.scope
        for left_values in self.left:
            key = tuple(
                self.eval(expr, left_values, left_scope)
                for expr in self.left_keys
            )
            if any(is_missing(part) for part in key):
                continue
            for right_values in table.get(key, ()):
                combined = left_values + right_values
                if self.condition is not None:
                    verdict = self.predicate(
                        self.condition, combined, self._scope
                    )
                    if verdict.value is not True:
                        continue
                yield combined


class CrowdJoinOp(PhysicalOperator):
    """The paper's CrowdJoin: index nested-loop join over a CROWD inner.

    Per outer tuple: evaluate the join key, probe the stored inner tuples
    through an index, and — when nothing is stored — ask the crowd for
    matching tuples, memorize them, and join.  Crowd columns the query
    needs (``needed_columns``) are probed on every matched inner tuple.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        inner_table: TableSchema,
        inner_binding: str,
        condition: ast.Expression,
        inner_key_columns: tuple[str, ...],
        outer_key_exprs: tuple[ast.Expression, ...],
        needed_columns: tuple[str, ...] = (),
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.left = left
        self.inner_table = inner_table
        self.inner_binding = inner_binding
        self.condition = condition
        self.inner_key_columns = inner_key_columns
        self.outer_key_exprs = outer_key_exprs
        self.needed_columns = needed_columns
        self._inner_scope = Scope.for_table(
            inner_binding, inner_table.column_names
        )
        self._scope = left.scope.concat(self._inner_scope)
        self._probed_keys: set[tuple] = set()

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        left_scope = self.left.scope
        for left_values in self.left:
            key = tuple(
                self.eval(expr, left_values, left_scope)
                for expr in self.outer_key_exprs
            )
            if any(is_missing(part) for part in key):
                continue
            for inner_values in self._inner_rows(key):
                combined = left_values + inner_values
                verdict = self.predicate(self.condition, combined, self._scope)
                if verdict.value is True:
                    yield combined

    # -- inner-side probing ---------------------------------------------------

    def _inner_rows(self, key: tuple) -> list[tuple]:
        heap = self.context.engine.table(self.inner_table.name)
        index = heap.index_on(self.inner_key_columns)
        if index is None:
            index = heap.create_index(
                f"{self.inner_table.name}_auto_{'_'.join(self.inner_key_columns)}",
                self.inner_key_columns,
            )
        rowids = sorted(index.lookup(key))
        if not rowids and key not in self._probed_keys:
            self._probed_keys.add(key)
            self._crowd_probe(key)
            rowids = sorted(index.lookup(key))
        rows = []
        for rowid in rowids:
            self.context.rows_scanned += 1
            values = heap.get(rowid).values
            values = self._fill_needed(rowid, values)
            rows.append(values)
        return rows

    def _crowd_probe(self, key: tuple) -> None:
        """Ask the crowd for inner tuples matching ``key``."""
        if self.context.task_manager is None:
            return
        fixed = dict(zip(self.inner_key_columns, key))
        new_tuples = self.context.crowd_new_tuples(
            self.inner_table, 1, fixed_values=fixed
        )
        self.context.crowd_join_tasks += 1
        for values in new_tuples:
            try:
                self.context.engine.insert(
                    self.inner_table.name,
                    [values.get(c, NULL) for c in self.inner_table.column_names],
                    origin="crowd",
                )
            except Exception:  # duplicate key: another probe stored it first
                continue

    def _fill_needed(self, rowid: int, values: tuple) -> tuple:
        """Probe the needed crowd columns of a matched inner tuple."""
        from repro.sqltypes import is_cnull

        missing = [
            column
            for column in self.needed_columns
            if is_cnull(values[self.inner_table.column_index(column)])
        ]
        if not missing or self.context.task_manager is None:
            return values
        known = {
            column.name: values[column.ordinal]
            for column in self.inner_table.columns
            if not is_missing(values[column.ordinal])
        }
        pk = tuple(
            values[self.inner_table.column_index(c)]
            for c in self.inner_table.primary_key
        )
        answers = self.context.crowd_fill(
            self.inner_table, pk, tuple(missing), known
        )
        self.context.crowd_probe_tasks += 1
        new_values = list(values)
        for column, answer in answers.items():
            position = self.inner_table.column_index(column)
            new_values[position] = answer
            self.context.engine.set_value(
                self.inner_table.name, rowid, column, answer, origin="crowd"
            )
        return tuple(new_values)
