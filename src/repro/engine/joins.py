"""Join operators: block nested-loop, hash equi-join, and the CrowdJoin."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.catalog.table import TableSchema
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ConstraintError, ExecutionError
from repro.sql import ast
from repro.sqltypes import CNULL, NULL, is_missing
from repro.storage.row import Scope


class NestedLoopJoinOp(PhysicalOperator):
    """Materializing nested-loop join supporting INNER, CROSS, and LEFT."""

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        join_type: str = "INNER",
        condition: Optional[ast.Expression] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        if join_type not in ("INNER", "CROSS", "LEFT"):
            raise ExecutionError(f"unsupported join type {join_type!r}")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self._scope = left.scope.concat(right.scope)

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        # the right side is materialized on first pull either way; the
        # streamed left side — and a condition with crowd constructs,
        # evaluated per emitted row — react to extra pulls
        from repro.plan.compiled import is_electronic

        return (
            self.condition is not None and not is_electronic(self.condition)
        ) or self.left.sources_crowd_on_pull()

    def __iter__(self) -> Iterator[tuple]:
        right_rows = list(self.right)
        right_width = len(self.right.scope)
        condition = (
            self.compile_predicate(self.condition, self._scope)
            if self.condition is not None
            else None
        )
        for left_values in self.left:
            matched = False
            for right_values in right_rows:
                combined = left_values + right_values
                if condition is not None and condition(combined).value is not True:
                    continue
                matched = True
                yield combined
            if not matched and self.join_type == "LEFT":
                yield left_values + (NULL,) * right_width


class HashJoinOp(PhysicalOperator):
    """Hash equi-join for INNER and LEFT joins with extractable key pairs.

    ``left_keys``/``right_keys`` are parallel expression lists; a residual
    condition (the full original one) is re-checked on each candidate to
    keep semantics identical to the nested-loop plan.  LEFT joins build
    on the right side as usual and pad unmatched (or missing-key) outer
    rows with NULLs.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: tuple[ast.Expression, ...],
        right_keys: tuple[ast.Expression, ...],
        condition: Optional[ast.Expression] = None,
        join_type: str = "INNER",
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        if join_type not in ("INNER", "LEFT"):
            raise ExecutionError(f"unsupported hash join type {join_type!r}")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.condition = condition
        self.join_type = join_type
        self._scope = left.scope.concat(right.scope)

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        # the build side is materialized on first pull either way; the
        # streamed probe side — and a residual condition with crowd
        # constructs, evaluated per emitted row — react to extra pulls
        from repro.plan.compiled import is_electronic

        return (
            self.condition is not None and not is_electronic(self.condition)
        ) or self.left.sources_crowd_on_pull()

    def __iter__(self) -> Iterator[tuple]:
        condition = (
            self.compile_predicate(self.condition, self._scope)
            if self.condition is not None
            else None
        )
        if len(self.left_keys) == 1:
            yield from self._iter_single_key(condition)
            return
        from repro.plan.compiled import tuple_maker

        table: dict[tuple, list[tuple]] = {}
        build_key = tuple_maker(
            [
                self.compile_value(expr, self.right.scope)
                for expr in self.right_keys
            ]
        )
        probe_key = tuple_maker(
            [
                self.compile_value(expr, self.left.scope)
                for expr in self.left_keys
            ]
        )
        setdefault = table.setdefault
        for right_values in self.right:
            key = build_key(right_values)
            if any(is_missing(part) for part in key):
                continue
            setdefault(key, []).append(right_values)
        get_bucket = table.get
        left_outer = self.join_type == "LEFT"
        padding = (NULL,) * len(self.right.scope)
        for left_values in self.left:
            key = probe_key(left_values)
            matched = False
            if not any(is_missing(part) for part in key):
                for right_values in get_bucket(key, ()):
                    combined = left_values + right_values
                    if condition is not None and condition(combined).value is not True:
                        continue
                    matched = True
                    yield combined
            if left_outer and not matched:
                yield left_values + padding

    def _iter_single_key(self, condition) -> Iterator[tuple]:
        """The common one-key equi-join, with scalar hash keys and inline
        missing checks."""
        build_key = self.compile_value(self.right_keys[0], self.right.scope)
        probe_key = self.compile_value(self.left_keys[0], self.left.scope)
        table: dict = {}
        setdefault = table.setdefault
        for right_values in self.right:
            key = build_key(right_values)
            if key is NULL or key is None or key is CNULL:
                continue
            setdefault(key, []).append(right_values)
        get_bucket = table.get
        empty = ()
        left_outer = self.join_type == "LEFT"
        padding = (NULL,) * len(self.right.scope)
        for left_values in self.left:
            key = probe_key(left_values)
            if key is NULL or key is None or key is CNULL:
                bucket = empty
            else:
                bucket = get_bucket(key, empty)
            if not bucket:
                if left_outer:
                    yield left_values + padding
                continue
            if condition is None:
                for right_values in bucket:
                    yield left_values + right_values
                continue
            matched = False
            for right_values in bucket:
                combined = left_values + right_values
                if condition(combined).value is True:
                    matched = True
                    yield combined
            if left_outer and not matched:
                yield left_values + padding


class CrowdJoinOp(PhysicalOperator):
    """The paper's CrowdJoin: index nested-loop join over a CROWD inner.

    Per outer tuple: evaluate the join key, probe the stored inner tuples
    through an index, and — when nothing is stored — ask the crowd for
    matching tuples, memorize them, and join.  Crowd columns the query
    needs (``needed_columns``) are probed on every matched inner tuple.

    With a batch window (``batch_size`` > 1) the operator buffers a
    window of outer tuples, issues the *whole* probe batch — new-tuple
    requests for every unmatched key, then fill tasks for every matched
    inner tuple's missing crowd columns — before waiting, so a window
    pays two overlapped crowd rounds instead of one per outer tuple.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        inner_table: TableSchema,
        inner_binding: str,
        condition: ast.Expression,
        inner_key_columns: tuple[str, ...],
        outer_key_exprs: tuple[ast.Expression, ...],
        needed_columns: tuple[str, ...] = (),
        batch_size: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.left = left
        self.inner_table = inner_table
        self.inner_binding = inner_binding
        self.condition = condition
        self.inner_key_columns = inner_key_columns
        self.outer_key_exprs = outer_key_exprs
        self.needed_columns = needed_columns
        self._batch_size = batch_size
        self._inner_scope = Scope.for_table(
            inner_binding, inner_table.column_names
        )
        self._scope = left.scope.concat(self._inner_scope)
        self._probed_keys: set[tuple] = set()

    @property
    def scope(self) -> Scope:
        return self._scope

    @property
    def batch_size(self) -> int:
        if self._batch_size is not None:
            return max(1, self._batch_size)
        return self.context.batch_size

    def sources_crowd_on_pull(self) -> bool:
        return True

    def __iter__(self) -> Iterator[tuple]:
        left_scope = self.left.scope
        key_fns = [
            self.compile_value(expr, left_scope)
            for expr in self.outer_key_exprs
        ]
        condition = self.compile_predicate(self.condition, self._scope)
        if self.context.task_manager is None or self.batch_size <= 1:
            yield from self._iter_per_tuple(key_fns, condition)
            return
        window: list[tuple[tuple, tuple]] = []  # (left values, join key)
        for left_values in self.left:
            key = tuple(fn(left_values) for fn in key_fns)
            if any(is_missing(part) for part in key):
                continue
            window.append((left_values, key))
            if len(window) >= self.batch_size:
                yield from self._join_window(window, condition)
                window = []
        if window:
            yield from self._join_window(window, condition)

    def _iter_per_tuple(self, key_fns, condition) -> Iterator[tuple]:
        for left_values in self.left:
            key = tuple(fn(left_values) for fn in key_fns)
            if any(is_missing(part) for part in key):
                continue
            for inner_values in self._inner_rows(key):
                combined = left_values + inner_values
                if condition(combined).value is True:
                    yield combined

    # -- batched probing ------------------------------------------------------

    def _join_window(
        self, window: list[tuple[tuple, tuple]], condition
    ) -> Iterator[tuple]:
        heap = self.context.engine.table(self.inner_table.name)
        index = self._ensure_index(heap)
        # round 1: one new-tuple request per unmatched, unprobed key
        specs = []
        for _left_values, key in window:
            if key in self._probed_keys or index.lookup(key):
                continue
            self._probed_keys.add(key)
            fixed = dict(zip(self.inner_key_columns, key))
            specs.append((self.inner_table, 1, fixed, None))
        if specs:
            results = self.context.crowd_new_tuples_many(specs)
            self.context.crowd_join_tasks += len(specs)
            for new_tuples in results:
                for values in new_tuples:
                    try:
                        self.context.engine.insert(
                            self.inner_table.name,
                            [
                                values.get(c, NULL)
                                for c in self.inner_table.column_names
                            ],
                            origin="crowd",
                        )
                    except ConstraintError:  # duplicate key: stored first
                        continue
        # round 2: one fill task per matched inner tuple with CNULLs
        matched: list[tuple[tuple, list[int]]] = []
        fill_rowids: list[int] = []
        seen_rowids: set[int] = set()
        for left_values, key in window:
            rowids = sorted(index.lookup(key))
            matched.append((left_values, rowids))
            for rowid in rowids:
                if rowid in seen_rowids:
                    continue
                seen_rowids.add(rowid)
                if self._missing_needed(heap.get(rowid).values):
                    fill_rowids.append(rowid)
        if fill_rowids:
            requests = [
                self._fill_request(heap.get(rowid).values)
                for rowid in fill_rowids
            ]
            answer_lists = self.context.crowd_fill_many(requests)
            self.context.crowd_probe_tasks += len(requests)
            for rowid, answers in zip(fill_rowids, answer_lists):
                for column, answer in answers.items():
                    self.context.engine.set_value(
                        self.inner_table.name, rowid, column, answer,
                        origin="crowd",
                    )
        # emit: probe results are memorized, so read back and join
        for left_values, rowids in matched:
            for rowid in rowids:
                self.context.rows_scanned += 1
                combined = left_values + heap.get(rowid).values
                if condition(combined).value is True:
                    yield combined

    def _ensure_index(self, heap):
        index = heap.index_on(self.inner_key_columns)
        if index is None:
            index = heap.create_index(
                f"{self.inner_table.name}_auto_"
                f"{'_'.join(self.inner_key_columns)}",
                self.inner_key_columns,
            )
        return index

    def _missing_needed(self, values: tuple) -> list[str]:
        from repro.sqltypes import is_cnull

        return [
            column
            for column in self.needed_columns
            if is_cnull(values[self.inner_table.column_index(column)])
        ]

    def _fill_request(self, values: tuple) -> tuple:
        missing = self._missing_needed(values)
        known = {
            column.name: values[column.ordinal]
            for column in self.inner_table.columns
            if not is_missing(values[column.ordinal])
        }
        pk = tuple(
            values[self.inner_table.column_index(c)]
            for c in self.inner_table.primary_key
        )
        return (self.inner_table, pk, tuple(missing), known)

    # -- inner-side probing ---------------------------------------------------

    def _inner_rows(self, key: tuple) -> list[tuple]:
        heap = self.context.engine.table(self.inner_table.name)
        index = self._ensure_index(heap)
        rowids = sorted(index.lookup(key))
        if not rowids and key not in self._probed_keys:
            self._probed_keys.add(key)
            self._crowd_probe(key)
            rowids = sorted(index.lookup(key))
        rows = []
        for rowid in rowids:
            self.context.rows_scanned += 1
            values = heap.get(rowid).values
            values = self._fill_needed(rowid, values)
            rows.append(values)
        return rows

    def _crowd_probe(self, key: tuple) -> None:
        """Ask the crowd for inner tuples matching ``key``."""
        if self.context.task_manager is None:
            return
        fixed = dict(zip(self.inner_key_columns, key))
        new_tuples = self.context.crowd_new_tuples(
            self.inner_table, 1, fixed_values=fixed
        )
        self.context.crowd_join_tasks += 1
        for values in new_tuples:
            try:
                self.context.engine.insert(
                    self.inner_table.name,
                    [values.get(c, NULL) for c in self.inner_table.column_names],
                    origin="crowd",
                )
            except ConstraintError:  # duplicate key: another probe stored it first
                continue

    def _fill_needed(self, rowid: int, values: tuple) -> tuple:
        """Probe the needed crowd columns of a matched inner tuple."""
        from repro.sqltypes import is_cnull

        missing = [
            column
            for column in self.needed_columns
            if is_cnull(values[self.inner_table.column_index(column)])
        ]
        if not missing or self.context.task_manager is None:
            return values
        known = {
            column.name: values[column.ordinal]
            for column in self.inner_table.columns
            if not is_missing(values[column.ordinal])
        }
        pk = tuple(
            values[self.inner_table.column_index(c)]
            for c in self.inner_table.primary_key
        )
        answers = self.context.crowd_fill(
            self.inner_table, pk, tuple(missing), known
        )
        self.context.crowd_probe_tasks += 1
        new_values = list(values)
        for column, answer in answers.items():
            position = self.inner_table.column_index(column)
            new_values[position] = answer
            self.context.engine.set_value(
                self.inner_table.name, rowid, column, answer, origin="crowd"
            )
        return tuple(new_values)
