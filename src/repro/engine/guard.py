"""Per-statement deadline and budget guard.

A crowd-backed statement can run for simulated hours and buy hundreds of
paid assignments, so callers need a way to say "give me what you have by
then" — ``SELECT ... WITH DEADLINE 5000 BUDGET 40`` (milliseconds of
simulated marketplace time, cents of crowd spend), or per-session
defaults via ``connect(statement_deadline_ms=..., statement_budget_cents=...)``.

The guard is enforced *cooperatively*: it is checked at crowd
boundaries (before issuing HITs, before and after waiting on futures)
and by the scheduler when it computes how far the marketplace clock may
advance.  When it trips it raises
:class:`~repro.errors.PartialResultStop`, which the executor converts
into a ``status="partial"`` result carrying the rows settled so far —
the statement degrades instead of failing.  Unfinished crowd futures
stay registered in the shared task pool, so a later retry of the same
statement reuses them at zero extra cost.

Deadlines are measured on the simulated marketplace clock (the busiest
platform's clock), matching how the Task Manager measures HIT timeouts.
Budgets are measured against the statement's own crowd ledger, which
attributes settled spend per statement.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import PartialResultStop

__all__ = ["StatementGuard"]

REASON_DEADLINE = "deadline"
REASON_BUDGET = "budget"
REASON_BREAKER = "breaker"


class StatementGuard:
    """Tracks one statement's deadline/budget caps and trip state."""

    def __init__(
        self,
        deadline_ms: Optional[int] = None,
        budget_cents: Optional[int] = None,
        now_fn: Optional[Callable[[], float]] = None,
        ledger=None,
    ) -> None:
        self.deadline_ms = deadline_ms
        self.budget_cents = budget_cents
        self.now_fn = now_fn
        self.ledger = ledger
        self.tripped = False
        self.reason: Optional[str] = None
        self.deadline_at: Optional[float] = None
        if deadline_ms is not None and now_fn is not None:
            self.deadline_at = now_fn() + deadline_ms / 1000.0

    @property
    def active(self) -> bool:
        return self.deadline_at is not None or self.budget_cents is not None

    # -- measurement -----------------------------------------------------

    def remaining_seconds(self) -> Optional[float]:
        """Simulated seconds until the deadline (None if no deadline)."""
        if self.deadline_at is None or self.now_fn is None:
            return None
        return max(0.0, self.deadline_at - self.now_fn())

    def deadline_expired(self) -> bool:
        if self.deadline_at is None or self.now_fn is None:
            return False
        return self.now_fn() >= self.deadline_at

    def budget_spent(self) -> int:
        if self.ledger is None:
            return 0
        return int(self.ledger.summary().get("cost_cents", 0))

    def budget_exhausted(self) -> bool:
        if self.budget_cents is None:
            return False
        return self.budget_spent() >= self.budget_cents

    # -- tripping --------------------------------------------------------

    def trip(self, reason: str) -> PartialResultStop:
        """Mark the guard tripped and return the stop to raise."""
        if not self.tripped:
            self.tripped = True
            self.reason = reason
        return PartialResultStop(self.reason or reason)

    def trip_if_expired(self) -> bool:
        """Deadline-only check for the scheduler: trips (without raising)
        when simulated time has passed the cap.  Returns the trip state so
        ``Session.runnable()`` can wake a suspended statement."""
        if self.tripped:
            return True
        if self.deadline_expired():
            self.trip(REASON_DEADLINE)
            return True
        return False

    def check(self) -> None:
        """Raise :class:`PartialResultStop` if the guard has tripped or a
        cap is now exceeded.  Called at every crowd boundary."""
        if self.tripped:
            raise PartialResultStop(self.reason or REASON_DEADLINE)
        if self.deadline_expired():
            raise self.trip(REASON_DEADLINE)
        if self.budget_exhausted():
            raise self.trip(REASON_BUDGET)
