"""Hash aggregation (GROUP BY and scalar aggregates)."""

from __future__ import annotations

from typing import Any, Iterator

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.pretty import format_expression
from repro.sqltypes import CNULL, NULL
from repro.storage.row import Scope


class _Accumulator:
    """State for one aggregate function within one group."""

    def __init__(self, call: ast.FunctionCall) -> None:
        self.name = call.name.upper()
        self.distinct = call.distinct
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self._seen: set = set()
        # branch flags hoisted out of the per-row add() path
        self._counts_star = self.name == "COUNT"
        self._sums = self.name in ("SUM", "AVG")
        self._wants_min = self.name == "MIN"
        self._wants_max = self.name == "MAX"

    def add(self, value: Any) -> None:
        if value is _STAR and self._counts_star:
            self.count += 1
            return
        if value is NULL or value is None or value is CNULL:
            return
        if self.distinct:
            key = value if _hashable(value) else repr(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self.count += 1
        if self._sums:
            value_type = type(value)
            if value_type is not int and value_type is not float and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ExecutionError(f"{self.name} needs numeric input")
            self.total = value if self.total is None else self.total + value
        elif self._wants_min:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self._wants_max:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.name == "COUNT":
            return self.count
        if self.name == "SUM":
            return NULL if self.total is None else self.total
        if self.name == "AVG":
            return NULL if self.total is None else self.total / self.count
        if self.name in ("MIN", "MAX"):
            return NULL if self.extreme is None else self.extreme
        raise ExecutionError(f"unknown aggregate {self.name!r}")


class _Star:
    pass


_STAR = _Star()


class AggregateOp(PhysicalOperator):
    """Group rows and evaluate aggregate calls.

    Output scope: one column per group-by expression (bound under the
    original table for plain column refs, so upstream references still
    resolve) followed by one column per aggregate, named by its rendered
    SQL (``COUNT(*)``), which the evaluator looks up when an aggregate
    call appears in upper expressions.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        group_by: tuple[ast.Expression, ...],
        aggregates: tuple[ast.FunctionCall, ...],
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates
        entries: list[tuple[str, str]] = []
        for expr in group_by:
            if isinstance(expr, ast.ColumnRef):
                entries.append((expr.table or "", expr.name))
            else:
                entries.append(("", format_expression(expr)))
        for call in aggregates:
            entries.append(("", format_expression(call)))
        self._scope = Scope(entries)

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        # pipeline breaker: the child is consumed entirely on first pull,
        # so extra output pulls never reach it
        return False

    def __iter__(self) -> Iterator[tuple]:
        from repro.plan.compiled import tuple_maker

        child_scope = self.child.scope
        input_fns = [
            self._aggregate_input_fn(call, child_scope)
            for call in self.aggregates
        ]
        if not self.group_by:
            # global aggregate: one accumulator set, no key machinery
            accumulators = [_Accumulator(call) for call in self.aggregates]
            pairs = list(zip(input_fns, accumulators))
            for values in self.child:
                for input_fn, accumulator in pairs:
                    accumulator.add(input_fn(values))
            yield tuple(acc.result() for acc in accumulators)
            return
        key_fn = tuple_maker(
            [self.compile_value(expr, child_scope) for expr in self.group_by]
        )
        groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
        order: list[tuple] = []
        get_group = groups.get
        for values in self.child:
            key_values = key_fn(values)
            try:
                entry = get_group(key_values)
                key = key_values
            except TypeError:  # unhashable key part: normalize via repr
                key = tuple(
                    v if _hashable(v) else repr(v) for v in key_values
                )
                entry = get_group(key)
            if entry is None:
                entry = (
                    key_values,
                    [_Accumulator(call) for call in self.aggregates],
                )
                groups[key] = entry
                order.append(key)
            _key_values, accumulators = entry
            for input_fn, accumulator in zip(input_fns, accumulators):
                accumulator.add(input_fn(values))
        for key in order:
            key_values, accumulators = groups[key]
            yield key_values + tuple(acc.result() for acc in accumulators)

    def _aggregate_input_fn(self, call: ast.FunctionCall, scope: Scope):
        (argument,) = call.args
        if isinstance(argument, ast.Star):
            return lambda values: _STAR
        return self.compile_value(argument, scope)


def _hashable(value: Any) -> bool:
    try:
        hash(value)
        return True
    except TypeError:
        return False
