"""Hash aggregation (GROUP BY and scalar aggregates)."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.pretty import format_expression
from repro.sqltypes import NULL, is_missing
from repro.storage.row import Scope


class _Accumulator:
    """State for one aggregate function within one group."""

    def __init__(self, call: ast.FunctionCall) -> None:
        self.name = call.name.upper()
        self.distinct = call.distinct
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if self.name == "COUNT" and value is _STAR:
            self.count += 1
            return
        if is_missing(value):
            return
        if self.distinct:
            key = value if _hashable(value) else repr(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self.count += 1
        if self.name in ("SUM", "AVG"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ExecutionError(f"{self.name} needs numeric input")
            self.total = value if self.total is None else self.total + value
        elif self.name == "MIN":
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.name == "MAX":
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.name == "COUNT":
            return self.count
        if self.name == "SUM":
            return NULL if self.total is None else self.total
        if self.name == "AVG":
            return NULL if self.total is None else self.total / self.count
        if self.name in ("MIN", "MAX"):
            return NULL if self.extreme is None else self.extreme
        raise ExecutionError(f"unknown aggregate {self.name!r}")


class _Star:
    pass


_STAR = _Star()


class AggregateOp(PhysicalOperator):
    """Group rows and evaluate aggregate calls.

    Output scope: one column per group-by expression (bound under the
    original table for plain column refs, so upstream references still
    resolve) followed by one column per aggregate, named by its rendered
    SQL (``COUNT(*)``), which the evaluator looks up when an aggregate
    call appears in upper expressions.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        group_by: tuple[ast.Expression, ...],
        aggregates: tuple[ast.FunctionCall, ...],
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.group_by = group_by
        self.aggregates = aggregates
        entries: list[tuple[str, str]] = []
        for expr in group_by:
            if isinstance(expr, ast.ColumnRef):
                entries.append((expr.table or "", expr.name))
            else:
                entries.append(("", format_expression(expr)))
        for call in aggregates:
            entries.append(("", format_expression(call)))
        self._scope = Scope(entries)

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        child_scope = self.child.scope
        groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
        order: list[tuple] = []
        for values in self.child:
            key_values = tuple(
                self.eval(expr, values, child_scope) for expr in self.group_by
            )
            key = tuple(
                v if _hashable(v) else repr(v) for v in key_values
            )
            entry = groups.get(key)
            if entry is None:
                entry = (
                    key_values,
                    [_Accumulator(call) for call in self.aggregates],
                )
                groups[key] = entry
                order.append(key)
            _key_values, accumulators = entry
            for call, accumulator in zip(self.aggregates, accumulators):
                accumulator.add(self._aggregate_input(call, values, child_scope))

        if not groups and not self.group_by:
            # global aggregate over empty input: one row of identities
            yield tuple(
                _Accumulator(call).result() for call in self.aggregates
            )
            return
        for key in order:
            key_values, accumulators = groups[key]
            yield key_values + tuple(acc.result() for acc in accumulators)

    def _aggregate_input(
        self, call: ast.FunctionCall, values: tuple, scope: Scope
    ) -> Any:
        (argument,) = call.args
        if isinstance(argument, ast.Star):
            return _STAR
        return self.eval(argument, values, scope)


def _hashable(value: Any) -> bool:
    try:
        hash(value)
        return True
    except TypeError:
        return False
