"""The CrowdProbe operator.

"This operator crowdsources missing data from CROWD columns and new
tuples" (paper §3.2.1).  Concretely:

* **anti-probes** first: for every primary-key value the predicate pinned
  (attached by the boundedness analysis) that has no stored tuple, ask
  the crowd to contribute the whole tuple and memorize it — this is what
  makes ``SELECT ... WHERE pk = 'X'`` return an answer a traditional
  DBMS cannot give;
* then, for every tuple flowing by whose *needed* crowd columns are
  CNULL, post a fill task, majority-vote the answers, memorize, and emit
  the completed tuple.

Execution is batch-at-a-time: the operator buffers a window of child
tuples (``batch_size``, planner-hinted), issues the fill tasks for every
CNULL row of the window — plus all anti-probes — up front, settles them
in one overlapped marketplace round, then emits.  A window of 1 restores
the seed's tuple-at-a-time behaviour.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.table import TableSchema
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ConstraintError
from repro.sqltypes import NULL, is_cnull, is_missing
from repro.storage.row import Scope


class CrowdProbeOp(PhysicalOperator):
    """Fill CNULL values (and anti-probe missing key-pinned tuples)."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        table: TableSchema,
        binding: str,
        columns: tuple[str, ...],
        anti_probe_keys: tuple[tuple, ...] = (),
        batch_size: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.table = table
        self.binding = binding
        self.columns = columns
        self.anti_probe_keys = anti_probe_keys
        self._batch_size = batch_size

    @property
    def scope(self) -> Scope:
        return self.child.scope

    @property
    def batch_size(self) -> int:
        if self._batch_size is not None:
            return max(1, self._batch_size)
        return self.context.batch_size

    def sources_crowd_on_pull(self) -> bool:
        return True

    def __iter__(self) -> Iterator[tuple]:
        if self.anti_probe_keys and self.table.crowd:
            self._run_anti_probes()
        child_scope = self.child.scope
        positions = self._column_positions(child_scope)
        if (
            self.context.task_manager is None
            or not positions
            or self.batch_size <= 1
        ):
            yield from self._iter_per_tuple(child_scope, positions)
            return
        window: list[tuple] = []
        for values in self.child:
            window.append(values)
            if len(window) >= self.batch_size:
                yield from self._fill_window(window, child_scope, positions)
                window = []
        if window:
            yield from self._fill_window(window, child_scope, positions)

    def _iter_per_tuple(
        self, child_scope: Scope, positions: list[tuple[str, int]]
    ) -> Iterator[tuple]:
        for values in self.child:
            missing = [
                column
                for column, position in positions
                if is_cnull(values[position])
            ]
            if missing and self.context.task_manager is not None:
                values = self._fill(values, child_scope, missing)
            yield values

    # -- anti-probe: source pinned-but-missing tuples ---------------------------------

    def _run_anti_probes(self) -> None:
        if self.context.task_manager is None:
            return
        heap = self.context.engine.table(self.table.name)
        specs = []
        for key in self.anti_probe_keys:
            if heap.lookup_primary_key(key) is not None:
                continue
            fixed = dict(zip(self.table.primary_key, key))
            specs.append((self.table, 1, fixed, None))
        if not specs:
            return
        if self.batch_size <= 1:
            results = [
                self.context.crowd_new_tuples(
                    self.table, 1, fixed_values=fixed
                )
                for _schema, _count, fixed, _known in specs
            ]
        else:
            # all anti-probes go to the marketplace together and settle
            # in one round
            results = self.context.crowd_new_tuples_many(specs)
        self.context.crowd_probe_tasks += len(specs)
        for new_tuples in results:
            for row in new_tuples:
                try:
                    self.context.engine.insert(
                        self.table.name,
                        [row.get(c, NULL) for c in self.table.column_names],
                        origin="crowd",
                    )
                except ConstraintError:
                    continue  # lost a race with a concurrent memorization

    # -- fill CNULL values --------------------------------------------------------------

    def _column_positions(self, scope: Scope) -> list[tuple[str, int]]:
        positions = []
        for column in self.columns:
            position = scope.try_resolve(column, self.binding)
            if position is not None:
                positions.append((column, position))
        return positions

    def _known_and_pk(
        self, values: tuple, scope: Scope
    ) -> tuple[dict, tuple]:
        known = {}
        for column in self.table.columns:
            position = scope.try_resolve(column.name, self.binding)
            if position is None:
                continue
            value = values[position]
            if not is_missing(value):
                known[column.name] = value
        pk = tuple(
            values[scope.resolve(c, self.binding)]
            for c in self.table.primary_key
        )
        return known, pk

    def _fill(
        self,
        values: tuple,
        scope: Scope,
        missing: list[str],
    ) -> tuple:
        known, pk = self._known_and_pk(values, scope)
        answers = self.context.crowd_fill(
            self.table, pk, tuple(missing), known
        )
        self.context.crowd_probe_tasks += 1
        return self._apply(values, scope, pk, answers)

    def _fill_window(
        self,
        window: list[tuple],
        scope: Scope,
        positions: list[tuple[str, int]],
    ) -> Iterator[tuple]:
        """Issue every CNULL row's fill task up front, settle the set in
        one round, then emit the window in order."""
        requests = []
        targets = []  # (window index, primary key)
        for i, values in enumerate(window):
            missing = [
                column
                for column, position in positions
                if is_cnull(values[position])
            ]
            if not missing:
                continue
            known, pk = self._known_and_pk(values, scope)
            requests.append((self.table, pk, tuple(missing), known))
            targets.append((i, pk))
        if requests:
            answer_lists = self.context.crowd_fill_many(requests)
            self.context.crowd_probe_tasks += len(requests)
            for (i, pk), answers in zip(targets, answer_lists):
                window[i] = self._apply(window[i], scope, pk, answers)
        yield from window

    def _apply(
        self, values: tuple, scope: Scope, pk: tuple, answers: dict
    ) -> tuple:
        new_values = list(values)
        for column, answer in answers.items():
            new_values[scope.resolve(column, self.binding)] = answer
        self._memorize(pk, answers)
        return tuple(new_values)

    def _memorize(self, pk: tuple, answers: dict) -> None:
        """Write crowd answers back to storage (always, per the paper)."""
        if not self.table.primary_key:
            return
        heap = self.context.engine.table(self.table.name)
        row = heap.lookup_primary_key(pk)
        if row is None:
            return
        for column, answer in answers.items():
            self.context.engine.set_value(
                self.table.name, row.rowid, column, answer, origin="crowd"
            )
