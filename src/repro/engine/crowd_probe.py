"""The CrowdProbe operator.

"This operator crowdsources missing data from CROWD columns and new
tuples" (paper §3.2.1).  Concretely:

* **anti-probes** first: for every primary-key value the predicate pinned
  (attached by the boundedness analysis) that has no stored tuple, ask
  the crowd to contribute the whole tuple and memorize it — this is what
  makes ``SELECT ... WHERE pk = 'X'`` return an answer a traditional
  DBMS cannot give;
* then, for every tuple flowing by whose *needed* crowd columns are
  CNULL, post a fill task, majority-vote the answers, memorize, and emit
  the completed tuple.
"""

from __future__ import annotations

from typing import Iterator

from repro.catalog.table import TableSchema
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.sqltypes import NULL, is_cnull, is_missing
from repro.storage.row import Scope


class CrowdProbeOp(PhysicalOperator):
    """Fill CNULL values (and anti-probe missing key-pinned tuples)."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        table: TableSchema,
        binding: str,
        columns: tuple[str, ...],
        anti_probe_keys: tuple[tuple, ...] = (),
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.table = table
        self.binding = binding
        self.columns = columns
        self.anti_probe_keys = anti_probe_keys

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        if self.anti_probe_keys and self.table.crowd:
            self._run_anti_probes()
        child_scope = self.child.scope
        positions = self._column_positions(child_scope)
        for values in self.child:
            missing = [
                column
                for column, position in positions
                if is_cnull(values[position])
            ]
            if missing and self.context.task_manager is not None:
                values = self._fill(values, child_scope, missing, positions)
            yield values

    # -- anti-probe: source pinned-but-missing tuples ---------------------------------

    def _run_anti_probes(self) -> None:
        if self.context.task_manager is None:
            return
        heap = self.context.engine.table(self.table.name)
        for key in self.anti_probe_keys:
            if heap.lookup_primary_key(key) is not None:
                continue
            fixed = dict(zip(self.table.primary_key, key))
            new_tuples = self.context.crowd_new_tuples(
                self.table, 1, fixed_values=fixed
            )
            self.context.crowd_probe_tasks += 1
            for row in new_tuples:
                try:
                    self.context.engine.insert(
                        self.table.name,
                        [row.get(c, NULL) for c in self.table.column_names],
                        origin="crowd",
                    )
                except Exception:
                    continue  # lost a race with a concurrent memorization

    # -- fill CNULL values --------------------------------------------------------------

    def _column_positions(self, scope: Scope) -> list[tuple[str, int]]:
        positions = []
        for column in self.columns:
            if scope.has(column, self.binding):
                positions.append((column, scope.resolve(column, self.binding)))
        return positions

    def _fill(
        self,
        values: tuple,
        scope: Scope,
        missing: list[str],
        positions: list[tuple[str, int]],
    ) -> tuple:
        known = {}
        for column in self.table.columns:
            if not scope.has(column.name, self.binding):
                continue
            value = values[scope.resolve(column.name, self.binding)]
            if not is_missing(value):
                known[column.name] = value
        pk = tuple(
            values[scope.resolve(c, self.binding)]
            for c in self.table.primary_key
        )
        answers = self.context.crowd_fill(
            self.table, pk, tuple(missing), known
        )
        self.context.crowd_probe_tasks += 1
        new_values = list(values)
        for column, answer in answers.items():
            new_values[scope.resolve(column, self.binding)] = answer
        self._memorize(pk, answers)
        return tuple(new_values)

    def _memorize(self, pk: tuple, answers: dict) -> None:
        """Write crowd answers back to storage (always, per the paper)."""
        if not self.table.primary_key:
            return
        heap = self.context.engine.table(self.table.name)
        row = heap.lookup_primary_key(pk)
        if row is None:
            return
        for column, answer in answers.items():
            self.context.engine.set_value(
                self.table.name, row.rowid, column, answer, origin="crowd"
            )
