"""Statement execution: the top of the engine.

The executor compiles and runs any CrowdSQL statement: DDL goes to the
catalog/storage (and triggers compile-time UI template generation for
crowd-related tables, per paper §3.1); DML evaluates expressions and
mutates heaps; SELECTs run through build → optimize → physical plan →
iterate.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional, Sequence

from repro.catalog.ddl import build_table_schema
from repro.engine.context import CrowdLedger, ExecutionContext
from repro.engine.guard import StatementGuard
from repro.engine.planner import PhysicalPlanner
from repro.errors import ExecutionError, PartialResultStop, PlanError
from repro.obs import QueryProfiler, render_analyze
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.plan.builder import PlanBuilder
from repro.plan.expressions import Evaluator
from repro.sql import ast
from repro.sql.pretty import format_statement
from repro.sqltypes import NULL, is_missing
from repro.storage.engine import StorageEngine
from repro.storage.row import Scope


class PlanCache:
    """LRU memo with hit/miss counters, shareable across executors.

    The executor's plan cache keys on ``(statement AST, engine plan
    epoch, optimizer)``; the epoch folds in the catalog version and
    every table's statistics epoch and index count, so DDL, ``ANALYZE``
    (including auto-analyze), and index creation all miss cleanly and
    the LRU bound evicts the orphaned entries.  The concurrent query
    server hands one instance to every session's executor, so a query
    planned in one session is a cache hit in all of them.  The same
    structure backs the connection's SQL-text parse memo.
    """

    def __init__(self, size: int = 64) -> None:
        self.size = max(0, size)
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
        return entry

    def store(self, key: tuple, compiled: Any) -> None:
        self.stats["misses"] += 1
        if not self.size:
            return
        self._entries[key] = compiled
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class ResultSet:
    """The outcome of one statement."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    statement: str = ""
    plan: Optional[OptimizationResult] = None
    # per-statement crowd telemetry: operator task counts plus the
    # quality/cost deltas (assignments paid, cents, adaptive HIT
    # extensions, gold probes, mean verdict confidence)
    crowd_stats: dict[str, float] = field(default_factory=dict)
    # "complete", or "partial" when a statement guard (deadline/budget
    # cap or an open platform breaker) stopped the statement early; the
    # rows are everything settled before the trip
    status: str = "complete"
    # structured trip reason when partial: deadline | budget | breaker
    partial_reason: Optional[str] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]

    def column(self, index: int = 0) -> list:
        """Values of one output column.

        The index is validated against the result schema (not just the
        rows), so an out-of-range index raises the same clear error on an
        empty result instead of silently returning ``[]``.
        """
        if self.columns and not -len(self.columns) <= index < len(self.columns):
            raise ExecutionError(
                f"column index {index} out of range for "
                f"{len(self.columns)} column(s)"
            )
        return [row[index] for row in self.rows]

    def pretty(self) -> str:
        """ASCII table rendering for examples and the demo.

        Zero-column results (DML, DDL) render as a row-count summary;
        zero-row results render the header with a ``(0 row(s))`` footer —
        both consistently derived from ``rows``/``rowcount``.
        """
        from repro.sqltypes import format_value

        if not self.columns:
            if self.rows:
                # a degenerate SELECT with no output columns: count rows,
                # don't silently claim "affected"
                return f"({len(self.rows)} row(s))"
            return f"({self.rowcount} row(s) affected)"
        rendered = [
            [format_value(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(name), *(len(r[i]) for r in rendered)) if rendered else len(name)
            for i, name in enumerate(self.columns)
        ]
        def line(ch: str = "-") -> str:
            return "+" + "+".join(ch * (w + 2) for w in widths) + "+"
        out = [line(), "| " + " | ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ) + " |", line("=")]
        for row in rendered:
            out.append(
                "| "
                + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                + " |"
            )
        out.append(line())
        out.append(f"({len(self.rows)} row(s))")
        return "\n".join(out)


class Executor:
    """Compiles and executes statements against one storage engine."""

    def __init__(
        self,
        engine: StorageEngine,
        optimizer: Optional[Optimizer] = None,
        task_manager: Optional[Any] = None,
        ui_manager: Optional[Any] = None,
        platform: Optional[str] = None,
        plan_cache: Optional[PlanCache] = None,
        plan_cache_size: int = 64,
        observability: Optional[Any] = None,  # repro.obs.Observability
        electronic_pool: Optional[Any] = None,  # repro.exec.pool.ElectronicPool
    ) -> None:
        self.engine = engine
        self.optimizer = optimizer if optimizer is not None else Optimizer(engine)
        self.task_manager = task_manager
        self.ui_manager = ui_manager
        self.platform = platform
        self.observability = observability
        # multi-core dispatch for vectorized regions; shared across the
        # server's sessions, threaded into every statement context
        self.electronic_pool = electronic_pool
        # crowd ledger for the statement currently running: set by
        # _run_compiled, inherited by correlated subqueries through
        # _make_context so their spend attributes to the outer statement
        self._active_ledger: Optional[CrowdLedger] = None
        # deadline/budget guard for the statement currently running,
        # mirrored into the context the same way the ledger is; the
        # scheduler reads it (via Session.active_guard) to cap how far
        # the marketplace clock may advance
        self._active_guard: Optional[StatementGuard] = None
        # caps requested by an ast.Guarded wrapper (WITH DEADLINE/BUDGET)
        self._guard_request: Optional[tuple] = None
        # caps carried on the wire per submission (Session.submit)
        self.guard_overrides: tuple = (None, None)
        self.builder = PlanBuilder(engine.catalog)
        # issue/yield/resume hook: the concurrent query server installs a
        # callback here so crowd waits suspend the session instead of
        # advancing the simulated platform clock in place
        self.crowd_waiter: Optional[Any] = None
        # repeat queries — including every per-outer-row compilation of a
        # correlated subquery — skip optimization entirely; pass a shared
        # PlanCache to pool plans across executors (the query server does)
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache(plan_cache_size)
        )

    @property
    def plan_cache_stats(self) -> dict[str, int]:
        return self.plan_cache.stats

    # -- public entry point ---------------------------------------------------------

    def execute(
        self, stmt: ast.Statement, parameters: Sequence[Any] = ()
    ) -> ResultSet:
        parameters = tuple(parameters)
        obs = self.observability
        if obs is None or not obs.enabled:
            return self._dispatch(stmt, parameters)
        started = perf_counter()
        result = self._dispatch(stmt, parameters)
        obs.observe_statement(
            result.statement or type(stmt).__name__,
            perf_counter() - started,
            rows=result.rowcount,
            cost_cents=int(result.crowd_stats.get("cost_cents", 0)),
            sql_fn=lambda: format_statement(stmt),
        )
        return result

    def _dispatch(self, stmt: ast.Statement, parameters: tuple) -> ResultSet:
        if isinstance(stmt, ast.Guarded):
            # peel the caps off and run the inner statement under them;
            # the plan cache keys on the inner AST, so the same query
            # with different caps shares one plan
            previous = self._guard_request
            self._guard_request = (stmt.deadline_ms, stmt.budget_cents)
            try:
                return self._dispatch(stmt.statement, parameters)
            finally:
                self._guard_request = previous
        if isinstance(stmt, (ast.Select, ast.SetOp)):
            return self._execute_select(stmt, parameters)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            self.engine.drop_table(stmt.name, if_exists=stmt.if_exists)
            return ResultSet(statement="DROP TABLE")
        if isinstance(stmt, ast.CreateIndex):
            # engine-level so the index build is logged and survives
            # replay/recovery (operator-built index caches stay unlogged)
            self.engine.create_index(
                stmt.table, stmt.name, stmt.columns, unique=stmt.unique
            )
            return ResultSet(statement="CREATE INDEX")
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt, parameters)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt, parameters)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt, parameters)
        if isinstance(stmt, ast.Explain):
            return self._execute_explain(stmt, parameters)
        if isinstance(stmt, ast.Analyze):
            return self._execute_analyze(stmt)
        if isinstance(stmt, ast.ShowTables):
            rows = [(name,) for name in self.engine.table_names()]
            return ResultSet(
                columns=["table_name"], rows=rows, rowcount=len(rows),
                statement="SHOW TABLES",
            )
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    # -- SELECT -----------------------------------------------------------------------

    def compile_select(self, stmt: ast.Statement) -> OptimizationResult:
        """Compile a SELECT or compound (set-operation) query."""
        return self._compile_cached(
            stmt, lambda: self.builder.build_statement(stmt)
        )

    def _compile_cached(
        self,
        stmt: ast.Statement,
        build: Callable[[], Any],
    ) -> OptimizationResult:
        """Optimize ``build()``'s plan, memoized on the statement AST.

        The key carries the engine's plan epoch (DDL version + statistics
        epoch + index population) and the optimizer's identity, so schema
        changes, ANALYZE, and optimizer swaps all miss cleanly.  Plans
        are parameter-value independent (estimation treats ``?`` as an
        opaque value), so one entry serves every binding.
        """
        key: Optional[tuple] = None
        if self.plan_cache.size:
            try:
                # the optimizer object itself is part of the key: a
                # swapped optimizer (different rules/cost mode) must miss,
                # and holding the reference keeps its identity from being
                # recycled while the entry lives
                key = (stmt, self.engine.plan_epoch(), self.optimizer)
                hash(key)
            except TypeError:
                key = None  # unhashable literal somewhere — just recompile
        if key is not None:
            cached = self.plan_cache.lookup(key)
            if cached is not None:
                if not cached.boundedness.bounded:
                    # the compile-time warning is part of the statement's
                    # contract — a cache hit must not swallow it
                    import warnings

                    from repro.errors import UnboundedQueryWarning

                    warnings.warn(
                        "query may request an unbounded amount of data "
                        f"from the crowd: {cached.boundedness.describe()}",
                        UnboundedQueryWarning,
                        stacklevel=3,
                    )
                return cached
        compiled = self.optimizer.optimize(build())
        if key is not None:
            self.plan_cache.store(key, compiled)
        return compiled

    def _execute_select(
        self, stmt: ast.Statement, parameters: tuple
    ) -> ResultSet:
        compiled = self.compile_select(stmt)
        columns, rows, crowd_stats, partial_reason = self._run_compiled(
            compiled, parameters
        )
        return ResultSet(
            columns=columns,
            rows=rows,
            rowcount=len(rows),
            statement="SELECT",
            plan=compiled,
            crowd_stats=crowd_stats,
            status="partial" if partial_reason else "complete",
            partial_reason=partial_reason,
        )

    @property
    def active_guard(self) -> Optional[StatementGuard]:
        """The running statement's deadline/budget guard (None between
        statements or for unguarded ones)."""
        return self._active_guard

    def _resolve_guard_caps(self) -> tuple:
        """Effective (deadline_ms, budget_cents): statement syntax wins,
        then per-submission wire overrides, then ``connect()`` defaults."""
        deadline_ms, budget_cents = self._guard_request or (None, None)
        override_deadline, override_budget = self.guard_overrides
        if deadline_ms is None:
            deadline_ms = override_deadline
        if budget_cents is None:
            budget_cents = override_budget
        config = getattr(self.task_manager, "config", None)
        if config is not None:
            if deadline_ms is None:
                deadline_ms = getattr(config, "statement_deadline_ms", None)
            if budget_cents is None:
                budget_cents = getattr(config, "statement_budget_cents", None)
        return deadline_ms, budget_cents

    def _note_partial(self, reason: str) -> None:
        manager = self.task_manager
        if manager is None:
            return
        manager.stats.bump("partial_results")
        manager.stats.bump(f"partial_{reason}")
        if manager.tracer is not None:
            manager.tracer.emit("statement.partial", reason=reason)

    def _run_compiled(
        self,
        compiled: OptimizationResult,
        parameters: tuple,
        profiler: Optional[QueryProfiler] = None,
    ) -> tuple[list[str], list[tuple], dict[str, float], Optional[str]]:
        """Run one compiled query under a fresh per-statement crowd
        ledger, so concurrent sessions sharing the Task Manager report
        only their own spend.  Correlated subqueries executed while
        iterating inherit the ledger (their spend belongs to this
        statement); a nested top-level run (INSERT ... SELECT) saves and
        restores it.

        A :class:`StatementGuard` runs alongside the ledger; when it
        trips mid-iteration the rows produced so far are kept and the
        trip reason is returned (fourth element, None when complete).
        """
        previous = self._active_ledger
        previous_guard = self._active_guard
        self._active_ledger = (
            CrowdLedger() if self.task_manager is not None else None
        )
        guard = None
        if self.task_manager is not None:
            deadline_ms, budget_cents = self._resolve_guard_caps()
            guard = StatementGuard(
                deadline_ms,
                budget_cents,
                now_fn=self._sim_clock(),
                ledger=self._active_ledger,
            )
        self._active_guard = guard
        try:
            context = self._make_context(parameters)
            operator = PhysicalPlanner(
                context,
                profiler=profiler,
                bindings=getattr(compiled, "bindings", None) or None,
            ).plan(compiled.plan)
            partial_reason: Optional[str] = None
            rows: list[tuple] = []
            try:
                for row in operator:
                    rows.append(row)
            except PartialResultStop as stop:
                partial_reason = stop.reason
                self._note_partial(stop.reason)
            columns = [entry[1] for entry in operator.scope.entries]
            crowd_stats = {
                "probe_tasks": context.crowd_probe_tasks,
                "join_tasks": context.crowd_join_tasks,
                "compare_tasks": context.crowd_compare_tasks,
                "rows_scanned": context.rows_scanned,
            }
            crowd_stats.update(context.crowd_quality_stats())
            return columns, rows, crowd_stats, partial_reason
        finally:
            self._active_ledger = previous
            self._active_guard = previous_guard

    def _execute_explain(
        self, stmt: ast.Explain, parameters: tuple = ()
    ) -> ResultSet:
        inner = stmt.statement
        if isinstance(inner, ast.Guarded):
            inner = inner.statement  # EXPLAIN shows the plan; caps don't apply
        if not isinstance(inner, (ast.Select, ast.SetOp)):
            raise ExecutionError("EXPLAIN supports SELECT statements only")
        compiled = self.compile_select(inner)
        if stmt.analyze:
            return self._execute_explain_analyze(compiled, parameters)
        lines = compiled.explain().splitlines()
        return ResultSet(
            columns=["plan"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
            statement="EXPLAIN",
            plan=compiled,
        )

    def _execute_explain_analyze(
        self, compiled: OptimizationResult, parameters: tuple
    ) -> ResultSet:
        """EXPLAIN ANALYZE: run the query with every operator wrapped in
        a measuring proxy, then render estimate-vs-actual per node."""
        profiler = QueryProfiler(
            task_stats=(
                self.task_manager.stats
                if self.task_manager is not None
                else None
            ),
            sim_clock=self._sim_clock(),
        )
        started = perf_counter()
        _columns, _rows, crowd_stats, _partial = self._run_compiled(
            compiled, parameters, profiler=profiler
        )
        total_seconds = perf_counter() - started
        flag_ratio = (
            self.observability.misestimate_ratio
            if self.observability is not None
            else 4.0
        )
        lines = render_analyze(
            compiled,
            profiler,
            total_seconds,
            crowd_stats=crowd_stats,
            flag_ratio=flag_ratio,
        ).splitlines()
        return ResultSet(
            columns=["plan"],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
            statement="EXPLAIN ANALYZE",
            plan=compiled,
            crowd_stats=crowd_stats,
        )

    def _sim_clock(self) -> Optional[Callable[[], float]]:
        """Busiest-platform simulated clock, for per-node sim time."""
        registry = getattr(self.task_manager, "platforms", None)
        if registry is None:
            return None

        def now() -> float:
            latest = 0.0
            for name in registry.names():
                clock = getattr(registry.get(name), "clock", None)
                if clock is not None:
                    latest = max(latest, clock.now)
            return latest

        return now

    def _execute_analyze(self, stmt: ast.Analyze) -> ResultSet:
        analyzed = self.engine.analyze(stmt.table)
        rows = [
            (
                name,
                stats.row_count,
                sum(
                    1 for c in stats.columns.values() if c.histogram is not None
                ),
                stats.epoch,
            )
            for name, stats in analyzed
        ]
        return ResultSet(
            columns=["table_name", "row_count", "histograms", "stats_epoch"],
            rows=rows,
            rowcount=len(rows),
            statement="ANALYZE",
        )

    # -- DDL ---------------------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTable) -> ResultSet:
        schema = build_table_schema(stmt)
        created = self.engine.create_table(
            schema, if_not_exists=stmt.if_not_exists
        )
        if created and self.ui_manager is not None and schema.is_crowd_related:
            # compile-time UI creation (paper §3.1)
            columns = tuple(c.name for c in schema.crowd_columns)
            if columns:
                self.ui_manager.fill_template(schema, columns)
            if schema.crowd:
                self.ui_manager.new_tuple_template(schema)
        return ResultSet(statement="CREATE TABLE")

    # -- DML ---------------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert, parameters: tuple) -> ResultSet:
        evaluator = Evaluator(parameters=parameters)
        empty_scope = Scope([])
        count = 0
        if stmt.query is not None:
            result = self._execute_select(stmt.query, parameters)
            for row in result.rows:
                self.engine.insert(
                    stmt.table, list(row), stmt.columns or None
                )
                count += 1
        else:
            for row_exprs in stmt.rows:
                values = [
                    evaluator.value(expr, (), empty_scope) for expr in row_exprs
                ]
                self.engine.insert(stmt.table, values, stmt.columns or None)
                count += 1
        return ResultSet(rowcount=count, statement="INSERT")

    def _execute_update(self, stmt: ast.Update, parameters: tuple) -> ResultSet:
        heap = self.engine.table(stmt.table)
        schema = heap.schema
        context = self._make_context(parameters)
        scope = Scope.for_table(stmt.table, schema.column_names)
        for name, _expr in stmt.assignments:
            schema.column(name)  # validate
        where = (
            context.compile_predicate_fn(stmt.where, scope)
            if stmt.where is not None
            else None
        )
        assignments = [
            (schema.column(name), context.compile_value_fn(expr, scope))
            for name, expr in stmt.assignments
        ]
        targets = []
        for row in heap.scan(snapshot=True):
            if where is not None and where(row.values).value is not True:
                continue
            targets.append(row)
        from repro.sqltypes import coerce

        for row in targets:
            new_values = list(row.values)
            for column, value_fn in assignments:
                value = value_fn(row.values)
                new_values[column.ordinal] = (
                    value if is_missing(value) else coerce(value, column.sql_type)
                )
            self.engine.update(stmt.table, row.rowid, tuple(new_values))
        return ResultSet(rowcount=len(targets), statement="UPDATE")

    def _execute_delete(self, stmt: ast.Delete, parameters: tuple) -> ResultSet:
        heap = self.engine.table(stmt.table)
        schema = heap.schema
        context = self._make_context(parameters)
        scope = Scope.for_table(stmt.table, schema.column_names)
        where = (
            context.compile_predicate_fn(stmt.where, scope)
            if stmt.where is not None
            else None
        )
        targets = []
        for row in heap.scan(snapshot=True):
            if where is not None and where(row.values).value is not True:
                continue
            targets.append(row.rowid)
        for rowid in targets:
            self.engine.delete(stmt.table, rowid)
        return ResultSet(rowcount=len(targets), statement="DELETE")

    # -- plumbing -----------------------------------------------------------------------

    def _make_context(self, parameters: tuple) -> ExecutionContext:
        context = ExecutionContext(
            engine=self.engine,
            task_manager=self.task_manager,
            parameters=parameters,
            platform=self.platform,
            subquery_executor=self._run_subquery,
            crowd_waiter=self.crowd_waiter,
            crowd_ledger=self._active_ledger,
            guard=self._active_guard,
            compile_expressions=getattr(
                self.optimizer, "compile_expressions", True
            ),
            ordered_conjuncts=getattr(self.optimizer, "cost_based", True),
            electronic_pool=self.electronic_pool,
        )
        return context

    def _run_subquery(
        self, query: ast.Select, outer_values: tuple, outer_scope: Scope
    ) -> list[tuple]:
        """Execute a (possibly correlated) subquery for one outer row."""
        compiled = self._compile_cached(
            query, lambda: self.builder.build_select(query)
        )
        context = self._make_context(())
        planner = PhysicalPlanner(
            context, correlation=(outer_values, outer_scope)
        )
        operator = planner.plan(compiled.plan)
        return list(operator)
