"""Filter, projection, distinct, limit, and alias operators."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.exec.vector import chunked as _chunked
from repro.plan.compiled import is_electronic
from repro.sql import ast
from repro.storage.row import Scope


class FilterOp(PhysicalOperator):
    """Keep rows whose predicate evaluates to TRUE (3VL).

    The predicate is compiled once at plan time; electronic predicates
    additionally run batch-at-a-time, filtering ``BATCH_ROWS``-row chunks
    through one list comprehension instead of a per-row generator
    round-trip (gated on the child never sourcing crowd data on pull, so
    the eager chunk cannot issue crowd tasks a stop-after bound would
    have prevented).

    Mixed predicates are evaluated as *partitioned conjuncts* (unless
    ``context.ordered_conjuncts`` is off): the purely electronic
    conjuncts — which the optimizer already ordered by
    selectivity-per-cost — run first with short-circuiting, and only
    rows surviving all of them evaluate the crowd/subquery tail.  A row
    an electronic conjunct rejects never spends a cent.  The tail itself
    is never short-circuited, so the window prefetch below stays exact
    and batch and per-row execution issue identical ballot sequences.

    A tail containing CROWDEQUAL runs batch-at-a-time when a window is
    configured: the operator buffers ``batch_size`` child rows, filters
    them electronically, issues the survivors' ballots together, settles
    them in one overlapped round, and only then evaluates the tail per
    row — the evaluation hits the Task Manager's comparison cache and
    never waits.  Only CASE branches are lazy, so those predicates keep
    the per-row path.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        predicate: ast.Expression,
        batch_size: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.predicate_expr = predicate
        self._batch_size = batch_size

    @property
    def scope(self) -> Scope:
        return self.child.scope

    @property
    def batch_size(self) -> int:
        if self._batch_size is not None:
            return max(1, self._batch_size)
        return self.context.batch_size

    def _partitioned_conjuncts(
        self,
    ) -> Optional[tuple[list[ast.Expression], list[ast.Expression]]]:
        """(electronic conjuncts, crowd/subquery tail), or None when the
        predicate has no mixed AND-chain to partition."""
        from repro.optimizer.rules import split_conjuncts

        if not getattr(self.context, "ordered_conjuncts", True):
            return None
        conjuncts = split_conjuncts(self.predicate_expr)
        if len(conjuncts) < 2:
            return None
        electronic = [c for c in conjuncts if is_electronic(c)]
        tail = [c for c in conjuncts if not is_electronic(c)]
        if not electronic or not tail:
            return None
        return electronic, tail

    def __iter__(self) -> Iterator[tuple]:
        child_scope = self.child.scope
        partitioned = self._partitioned_conjuncts()
        if partitioned is not None:
            yield from self._iter_partitioned(*partitioned)
            return
        predicate = self.compile_predicate(self.predicate_expr, child_scope)
        prefetchable = (
            self._prefetchable_equals(self.predicate_expr)
            if self.context.task_manager is not None and self.batch_size > 1
            else ()
        )
        if not prefetchable:
            if is_electronic(self.predicate_expr) and not (
                self.child.sources_crowd_on_pull()
            ):
                yield from self._iter_chunked(predicate)
                return
            for values in self.child:
                if predicate(values).value is True:
                    yield values
            return
        operand_fns = self._operand_fns(prefetchable)
        window: list[tuple] = []
        for values in self.child:
            window.append(values)
            if len(window) >= self.batch_size:
                yield from self._filter_window(
                    window, predicate, prefetchable, operand_fns
                )
                window = []
        if window:
            yield from self._filter_window(
                window, predicate, prefetchable, operand_fns
            )

    # -- partitioned conjunct evaluation ---------------------------------------

    def _iter_partitioned(
        self,
        electronic: list[ast.Expression],
        tail: list[ast.Expression],
    ) -> Iterator[tuple]:
        from repro.optimizer.rules import conjoin

        child_scope = self.child.scope
        electronic_fns = [
            self.compile_predicate(c, child_scope) for c in electronic
        ]
        tail_fns = [self.compile_predicate(c, child_scope) for c in tail]
        tail_predicate = conjoin(tail)
        prefetchable = (
            self._prefetchable_equals(tail_predicate)
            if self.context.task_manager is not None and self.batch_size > 1
            else ()
        )
        if not prefetchable:
            for values in self.child:
                if self._electronic_pass(electronic_fns, values) and (
                    self._tail_pass(tail_fns, values)
                ):
                    yield values
            return
        operand_fns = self._operand_fns(prefetchable)
        window: list[tuple] = []
        for values in self.child:
            window.append(values)
            if len(window) >= self.batch_size:
                yield from self._partitioned_window(
                    window, electronic_fns, tail_fns, prefetchable, operand_fns
                )
                window = []
        if window:
            yield from self._partitioned_window(
                window, electronic_fns, tail_fns, prefetchable, operand_fns
            )

    @staticmethod
    def _electronic_pass(fns, values) -> bool:
        """Short-circuiting conjunction: electronic conjuncts have no
        observable side effects, so stopping at the first non-TRUE
        verdict is safe — and skips every crowd cent the tail would
        have spent on this row."""
        return all(fn(values).value is True for fn in fns)

    @staticmethod
    def _tail_pass(fns, values) -> bool:
        """Non-short-circuiting conjunction over the crowd/subquery
        tail: every conjunct evaluates, so window prefetch stays exact
        and batch and per-row execution stay call-for-call identical."""
        passed = True
        for fn in fns:
            if fn(values).value is not True:
                passed = False
        return passed

    def _partitioned_window(
        self,
        window: list[tuple],
        electronic_fns,
        tail_fns,
        equals: tuple[ast.CrowdEqual, ...],
        operand_fns: dict,
    ) -> Iterator[tuple]:
        survivors = [
            values
            for values in window
            if self._electronic_pass(electronic_fns, values)
        ]
        self._prefetch_pairs(survivors, equals, operand_fns)
        for values in survivors:
            if self._tail_pass(tail_fns, values):
                yield values

    # -- shared plumbing ---------------------------------------------------------

    def _operand_fns(self, equals: tuple[ast.CrowdEqual, ...]) -> dict:
        child_scope = self.child.scope
        return {
            node: (
                self.compile_value(node.left, child_scope),
                self.compile_value(node.right, child_scope),
            )
            for node in equals
        }

    def _iter_chunked(self, predicate) -> Iterator[tuple]:
        """Batch-at-a-time electronic filtering over row chunks."""
        for chunk in _chunked(self.child):
            yield from [v for v in chunk if predicate(v).value is True]

    def sources_crowd_on_pull(self) -> bool:
        return (
            not is_electronic(self.predicate_expr)
            or self.child.sources_crowd_on_pull()
        )

    def _prefetchable_equals(
        self, predicate: ast.Expression
    ) -> tuple[ast.CrowdEqual, ...]:
        """The CROWDEQUAL nodes whose ballots the window can issue up
        front — exactly the ones per-row evaluation is guaranteed to
        reach, with operands that are cheap and pure to evaluate twice."""
        nodes = list(ast.walk_expression(predicate))
        if any(isinstance(node, ast.CaseExpr) for node in nodes):
            return ()  # CASE branches short-circuit: reach is row-dependent
        equals = tuple(
            node for node in nodes if isinstance(node, ast.CrowdEqual)
        )
        for node in equals:
            for operand in (node.left, node.right):
                inner = list(ast.walk_expression(operand))
                if any(
                    isinstance(
                        e,
                        (
                            ast.CrowdEqual,
                            ast.CrowdOrder,
                            ast.ScalarSubquery,
                            ast.ExistsExpr,
                            ast.InSubquery,
                        ),
                    )
                    for e in inner
                ):
                    return ()
        return equals

    def _prefetch_pairs(
        self,
        rows: list[tuple],
        equals: tuple[ast.CrowdEqual, ...],
        operand_fns: dict,
    ) -> None:
        from repro.sqltypes import is_missing

        pairs = []
        for values in rows:
            for node in equals:
                left_fn, right_fn = operand_fns[node]
                left = left_fn(values)
                right = right_fn(values)
                if is_missing(left) or is_missing(right) or left == right:
                    continue  # evaluation resolves these without a ballot
                pairs.append((left, right, node.question))
        if pairs:
            self.context.prefetch_compare_equal(pairs)

    def _filter_window(
        self,
        window: list[tuple],
        predicate,
        equals: tuple[ast.CrowdEqual, ...],
        operand_fns: dict,
    ) -> Iterator[tuple]:
        self._prefetch_pairs(window, equals, operand_fns)
        for values in window:
            if predicate(values).value is True:
                yield values


class ProjectOp(PhysicalOperator):
    """Compute the select-list expressions.

    Select-list expressions compile to closures at plan time; electronic
    projections run batch-at-a-time over ``BATCH_ROWS``-row chunks.
    """

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        items: tuple[tuple[ast.Expression, str], ...],
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.items = items
        self._scope = Scope([("", name) for _expr, name in items])

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        return any(
            not is_electronic(expr) for expr, _name in self.items
        ) or self.child.sources_crowd_on_pull()

    def __iter__(self) -> Iterator[tuple]:
        from repro.plan.compiled import tuple_maker

        child_scope = self.child.scope
        row_fn = tuple_maker(
            [
                self.compile_value(expr, child_scope)
                for expr, _name in self.items
            ]
        )
        if all(
            is_electronic(expr) for expr, _name in self.items
        ) and not self.child.sources_crowd_on_pull():
            for chunk in _chunked(self.child):
                yield from [row_fn(v) for v in chunk]
            return
        for values in self.child:
            yield row_fn(values)


class DistinctOp(PhysicalOperator):
    """Hash-based duplicate elimination."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        seen: set = set()
        for values in self.child:
            key = tuple(_hashable(v) for v in values)
            if key in seen:
                continue
            seen.add(key)
            yield values


class LimitOp(PhysicalOperator):
    """Stop-after: skip ``offset`` rows, then yield at most ``limit``."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        limit: Optional[int],
        offset: int = 0,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.limit = limit
        self.offset = offset

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        skipped = 0
        emitted = 0
        for values in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and emitted >= self.limit:
                return
            emitted += 1
            yield values
            if self.limit is not None and emitted >= self.limit:
                return


class SubqueryAliasOp(PhysicalOperator):
    """Re-bind a derived table's columns under its alias."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        alias: str,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.alias = alias
        self._scope = child.scope.rename(alias)

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        yield from self.child


class SetOpOp(PhysicalOperator):
    """UNION [ALL] / EXCEPT / INTERSECT with SQL set semantics.

    UNION, EXCEPT, and INTERSECT eliminate duplicates (per the SQL
    standard); UNION ALL concatenates.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        op: str,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.left = left
        self.right = right
        self.op = op

    @property
    def scope(self) -> Scope:
        return self.left.scope

    def __iter__(self) -> Iterator[tuple]:
        if self.op == "UNION ALL":
            yield from self.left
            yield from self.right
            return
        if self.op == "UNION":
            seen: set = set()
            for values in self.left:
                key = tuple(_hashable(v) for v in values)
                if key not in seen:
                    seen.add(key)
                    yield values
            for values in self.right:
                key = tuple(_hashable(v) for v in values)
                if key not in seen:
                    seen.add(key)
                    yield values
            return
        right_keys = {
            tuple(_hashable(v) for v in values) for values in self.right
        }
        emitted: set = set()
        for values in self.left:
            key = tuple(_hashable(v) for v in values)
            if key in emitted:
                continue
            if self.op == "EXCEPT" and key in right_keys:
                continue
            if self.op == "INTERSECT" and key not in right_keys:
                continue
            emitted.add(key)
            yield values


def _hashable(value):
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
