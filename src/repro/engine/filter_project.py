"""Filter, projection, distinct, limit, and alias operators."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.sql import ast
from repro.storage.row import Scope


class FilterOp(PhysicalOperator):
    """Keep rows whose predicate evaluates to TRUE (3VL)."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        predicate: ast.Expression,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.predicate_expr = predicate

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        child_scope = self.child.scope
        for values in self.child:
            if self.predicate(self.predicate_expr, values, child_scope).value is True:
                yield values


class ProjectOp(PhysicalOperator):
    """Compute the select-list expressions."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        items: tuple[tuple[ast.Expression, str], ...],
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.items = items
        self._scope = Scope([("", name) for _expr, name in items])

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        child_scope = self.child.scope
        for values in self.child:
            yield tuple(
                self.eval(expr, values, child_scope) for expr, _name in self.items
            )


class DistinctOp(PhysicalOperator):
    """Hash-based duplicate elimination."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        seen: set = set()
        for values in self.child:
            key = tuple(_hashable(v) for v in values)
            if key in seen:
                continue
            seen.add(key)
            yield values


class LimitOp(PhysicalOperator):
    """Stop-after: skip ``offset`` rows, then yield at most ``limit``."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        limit: Optional[int],
        offset: int = 0,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.limit = limit
        self.offset = offset

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def __iter__(self) -> Iterator[tuple]:
        skipped = 0
        emitted = 0
        for values in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and emitted >= self.limit:
                return
            emitted += 1
            yield values
            if self.limit is not None and emitted >= self.limit:
                return


class SubqueryAliasOp(PhysicalOperator):
    """Re-bind a derived table's columns under its alias."""

    def __init__(
        self,
        context: ExecutionContext,
        child: PhysicalOperator,
        alias: str,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.child = child
        self.alias = alias
        self._scope = child.scope.rename(alias)

    @property
    def scope(self) -> Scope:
        return self._scope

    def __iter__(self) -> Iterator[tuple]:
        yield from self.child


class SetOpOp(PhysicalOperator):
    """UNION [ALL] / EXCEPT / INTERSECT with SQL set semantics.

    UNION, EXCEPT, and INTERSECT eliminate duplicates (per the SQL
    standard); UNION ALL concatenates.
    """

    def __init__(
        self,
        context: ExecutionContext,
        left: PhysicalOperator,
        right: PhysicalOperator,
        op: str,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.left = left
        self.right = right
        self.op = op

    @property
    def scope(self) -> Scope:
        return self.left.scope

    def __iter__(self) -> Iterator[tuple]:
        if self.op == "UNION ALL":
            yield from self.left
            yield from self.right
            return
        if self.op == "UNION":
            seen: set = set()
            for values in self.left:
                key = tuple(_hashable(v) for v in values)
                if key not in seen:
                    seen.add(key)
                    yield values
            for values in self.right:
                key = tuple(_hashable(v) for v in values)
                if key not in seen:
                    seen.add(key)
                    yield values
            return
        right_keys = {
            tuple(_hashable(v) for v in values) for values in self.right
        }
        emitted: set = set()
        for values in self.left:
            key = tuple(_hashable(v) for v in values)
            if key in emitted:
                continue
            if self.op == "EXCEPT" and key in right_keys:
                continue
            if self.op == "INTERSECT" and key not in right_keys:
                continue
            emitted.add(key)
            yield values


def _hashable(value):
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)
