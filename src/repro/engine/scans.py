"""Scan operators, including the open-world CROWD-table scan."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.table import TableSchema
from repro.engine.base import Correlation, PhysicalOperator
from repro.engine.context import ExecutionContext
from repro.errors import ConstraintError
from repro.sqltypes import NULL, is_missing
from repro.storage.row import Scope


class TableScan(PhysicalOperator):
    """Scan the stored tuples of a table.

    For a CROWD table with a ``limit_hint`` (attached by stop-after
    push-down), the scan embodies the open-world assumption: when the
    stored tuples run out before the bound is reached, it asks the crowd
    for more, memorizes them, and keeps yielding — exactly the bounded
    sourcing the paper's optimizer guarantees.
    """

    def __init__(
        self,
        context: ExecutionContext,
        table: TableSchema,
        binding: str,
        limit_hint: Optional[int] = None,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.table = table
        self.binding = binding
        self.limit_hint = limit_hint
        self._scope = Scope.for_table(binding, table.column_names)

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        # open-world sourcing: a CROWD-table scan may ask the crowd for
        # more tuples once the stored ones run out
        return self.table.crowd

    def __iter__(self) -> Iterator[tuple]:
        heap = self.context.engine.table(self.table.name)
        # crowd execution can insert rows while this scan is suspended on
        # a future (another session under the server, or a crowd probe
        # into the scanned CROWD table); snapshot only then — the common
        # electronic scan iterates the heap directly
        snapshot = self.context.task_manager is not None and (
            self.context.crowd_waiter is not None or self.table.crowd
        )
        yielded = 0
        try:
            for values in heap.scan_values(snapshot=snapshot):
                yielded += 1
                yield values
        finally:
            # one counter update per scan (or early close), not per row
            self.context.rows_scanned += yielded
        if (
            self.table.crowd
            and self.limit_hint is not None
            and yielded < self.limit_hint
            and self.context.task_manager is not None
        ):
            yield from self._source_more(self.limit_hint - yielded)

    def _source_more(self, count: int) -> Iterator[tuple]:
        """Open-world sourcing, bounded by the stop-after hint."""
        heap = self.context.engine.table(self.table.name)
        known = _known_primary_keys(heap, self.table)
        new_tuples = self.context.crowd_new_tuples(
            self.table, count, known_keys=known
        )
        self.context.crowd_probe_tasks += len(new_tuples)
        for values in new_tuples:
            try:
                row = self.context.engine.insert(
                    self.table.name,
                    [values.get(c, NULL) for c in self.table.column_names],
                    origin="crowd",
                )
            except ConstraintError:
                # a concurrent session memorized this tuple while we were
                # suspended on the shared crowd future: emit the stored
                # row so identical queries return identical answers
                pk = tuple(
                    values.get(c, NULL) for c in self.table.primary_key
                )
                row = heap.lookup_primary_key(pk) if pk else None
                if row is not None:
                    yield row.values
                continue
            yield row.values


class IndexLookup(PhysicalOperator):
    """Equality lookup through an index (used by CrowdJoin probes).

    With ``prefix=True`` the key columns are a leading subset of an
    ordered index's key; the lookup scans that key prefix instead of
    requiring (or auto-creating) an exact-key index.
    """

    def __init__(
        self,
        context: ExecutionContext,
        table: TableSchema,
        binding: str,
        key_columns: tuple[str, ...],
        key_values: tuple,
        prefix: bool = False,
        correlation: Correlation = None,
    ) -> None:
        super().__init__(context, correlation)
        self.table = table
        self.binding = binding
        self.key_columns = key_columns
        self.key_values = key_values
        self.prefix = prefix
        self._scope = Scope.for_table(binding, table.column_names)

    @property
    def scope(self) -> Scope:
        return self._scope

    def sources_crowd_on_pull(self) -> bool:
        return False  # lookups only read stored tuples

    def __iter__(self) -> Iterator[tuple]:
        heap = self.context.engine.table(self.table.name)
        if any(is_missing(value) for value in self.key_values):
            return
        if self.prefix:
            index = heap.ordered_index_with_prefix(self.key_columns)
            if index is None:  # dropped since planning: nothing to serve
                return
            rowids = index.prefix_lookup(self.key_values)
        else:
            index = heap.index_on(self.key_columns)
            if index is None:
                index = heap.create_index(
                    f"{self.table.name}_auto_{'_'.join(self.key_columns)}",
                    self.key_columns,
                )
            rowids = index.lookup(self.key_values)
        for rowid in sorted(rowids):
            self.context.rows_scanned += 1
            yield heap.get(rowid).values


class SingleRowOp(PhysicalOperator):
    """Produces exactly one empty tuple (SELECT without FROM)."""

    @property
    def scope(self) -> Scope:
        return Scope([])

    def sources_crowd_on_pull(self) -> bool:
        return False

    def __iter__(self) -> Iterator[tuple]:
        yield ()


def _known_primary_keys(heap, table: TableSchema):
    """Normalized PK tuples already stored (for open-world dedup).

    The heap maintains this set incrementally on insert/update/delete, so
    sourcing calls no longer pay a full scan-and-normalize per request.
    """
    if not table.primary_key:
        return set()
    return heap.normalized_primary_keys()
