"""Physical execution engine: operators, planner, executor."""

from repro.engine.context import ExecutionContext
from repro.engine.executor import Executor, ResultSet
from repro.engine.planner import PhysicalPlanner

__all__ = ["ExecutionContext", "Executor", "PhysicalPlanner", "ResultSet"]
