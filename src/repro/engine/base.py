"""Physical operator base class.

Operators follow the iterator model: construct, then iterate value
tuples; ``scope`` names the tuple positions.  ``correlation`` carries the
outer row of a correlated subquery — expression evaluation appends the
outer values and scope so outer column references resolve.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Optional

from repro.engine.context import ExecutionContext
from repro.sql import ast
from repro.sqltypes import TriBool
from repro.storage.row import Scope

Correlation = Optional[tuple[tuple, Scope]]


class PhysicalOperator(abc.ABC):
    """One node of a physical plan."""

    def __init__(
        self, context: ExecutionContext, correlation: Correlation = None
    ) -> None:
        self.context = context
        self.correlation = correlation

    @property
    @abc.abstractmethod
    def scope(self) -> Scope:
        """Names for the value tuples this operator produces."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[tuple]:
        """Yield value tuples."""

    def children(self) -> tuple["PhysicalOperator", ...]:
        """The input operators (operators uniformly name them ``child`` or
        ``left``/``right``)."""
        found = []
        for name in ("child", "left", "right"):
            node = getattr(self, name, None)
            if isinstance(node, PhysicalOperator):
                found.append(node)
        return tuple(found)

    def sources_crowd_on_pull(self) -> bool:
        """True when pulling *more* rows from this operator than the
        consumer strictly needs could issue extra crowd tasks.

        Batch-at-a-time loops buffer a chunk of child rows before
        yielding, which is free for electronic plans but would break the
        stop-after crowd bound over an open-world scan; operators consult
        this before choosing the eager chunked loop.  Pipeline breakers
        (sort, aggregation) consume their input entirely either way and
        override accordingly.

        An operator :meth:`children` cannot see (a future leaf, or inputs
        under unconventional attribute names) answers True: unknown
        operators must degrade to slower-but-safe tuple-at-a-time
        execution, never to eager chunking.  Leaves that truly never
        source crowd work (index lookups, SELECT-without-FROM) override.
        """
        children = self.children()
        if not children:
            return True
        return any(child.sources_crowd_on_pull() for child in children)

    # -- expression helpers -------------------------------------------------------

    def _full(self, values: tuple, scope: Scope) -> tuple[tuple, Scope]:
        if self.correlation is None:
            return values, scope
        from repro.storage.row import LayeredScope

        outer_values, outer_scope = self.correlation
        return values + outer_values, LayeredScope(scope, outer_scope)

    def eval(self, expr: ast.Expression, values: tuple, scope: Scope) -> Any:
        full_values, full_scope = self._full(values, scope)
        return self.context.evaluator.value(expr, full_values, full_scope)

    def predicate(
        self, expr: ast.Expression, values: tuple, scope: Scope
    ) -> TriBool:
        full_values, full_scope = self._full(values, scope)
        return self.context.evaluator.predicate(expr, full_values, full_scope)

    # -- compiled expression helpers ----------------------------------------------

    def compile_value(self, expr: ast.Expression, scope: Scope):
        """Plan-time compile of ``expr`` into a ``row values -> value``
        closure; the correlated outer row, fixed per operator instance,
        is appended inside the closure."""
        if self.correlation is None:
            return self.context.compile_value_fn(expr, scope)
        from repro.storage.row import LayeredScope

        outer_values, outer_scope = self.correlation
        fn = self.context.compile_value_fn(
            expr, LayeredScope(scope, outer_scope)
        )
        return lambda values: fn(values + outer_values)

    def compile_predicate(self, expr: ast.Expression, scope: Scope):
        """Plan-time compile of ``expr`` into a ``row values -> TriBool``
        closure (see :meth:`compile_value`)."""
        if self.correlation is None:
            return self.context.compile_predicate_fn(expr, scope)
        from repro.storage.row import LayeredScope

        outer_values, outer_scope = self.correlation
        fn = self.context.compile_predicate_fn(
            expr, LayeredScope(scope, outer_scope)
        )
        return lambda values: fn(values + outer_values)
