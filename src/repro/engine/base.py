"""Physical operator base class.

Operators follow the iterator model: construct, then iterate value
tuples; ``scope`` names the tuple positions.  ``correlation`` carries the
outer row of a correlated subquery — expression evaluation appends the
outer values and scope so outer column references resolve.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, Optional

from repro.engine.context import ExecutionContext
from repro.sql import ast
from repro.sqltypes import TriBool
from repro.storage.row import Scope

Correlation = Optional[tuple[tuple, Scope]]


class PhysicalOperator(abc.ABC):
    """One node of a physical plan."""

    def __init__(
        self, context: ExecutionContext, correlation: Correlation = None
    ) -> None:
        self.context = context
        self.correlation = correlation

    @property
    @abc.abstractmethod
    def scope(self) -> Scope:
        """Names for the value tuples this operator produces."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[tuple]:
        """Yield value tuples."""

    # -- expression helpers -------------------------------------------------------

    def _full(self, values: tuple, scope: Scope) -> tuple[tuple, Scope]:
        if self.correlation is None:
            return values, scope
        from repro.storage.row import LayeredScope

        outer_values, outer_scope = self.correlation
        return values + outer_values, LayeredScope(scope, outer_scope)

    def eval(self, expr: ast.Expression, values: tuple, scope: Scope) -> Any:
        full_values, full_scope = self._full(values, scope)
        return self.context.evaluator.value(expr, full_values, full_scope)

    def predicate(
        self, expr: ast.Expression, values: tuple, scope: Scope
    ) -> TriBool:
        full_values, full_scope = self._full(values, scope)
        return self.context.evaluator.predicate(expr, full_values, full_scope)
