"""Execution context: the runtime services physical operators share.

One context serves one statement execution.  It bundles the storage
engine, the Task Manager (absent for purely electronic queries), the
expression evaluator, and the subquery executor, and implements the
:class:`~repro.plan.expressions.EvalContext` protocol so CROWDEQUAL and
subqueries evaluate inside ordinary predicates.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ExecutionError
from repro.plan.expressions import Evaluator
from repro.sql import ast
from repro.sqltypes import NULL
from repro.storage.engine import StorageEngine
from repro.storage.row import Scope


class ExecutionContext:
    """Shared runtime state for one statement."""

    def __init__(
        self,
        engine: StorageEngine,
        task_manager: Optional[Any] = None,  # TaskManager, optional import cycle
        parameters: tuple = (),
        platform: Optional[str] = None,
        subquery_executor: Optional[
            Callable[[ast.Select, tuple, Scope], list[tuple]]
        ] = None,
    ) -> None:
        self.engine = engine
        self.task_manager = task_manager
        self.parameters = parameters
        self.platform = platform
        self._subquery_executor = subquery_executor
        self.evaluator = Evaluator(context=self, parameters=parameters)
        # per-execution metrics surfaced by EXPLAIN ANALYZE-style reporting
        self.rows_scanned = 0
        self.crowd_probe_tasks = 0
        self.crowd_join_tasks = 0
        self.crowd_compare_tasks = 0

    # -- EvalContext protocol -----------------------------------------------------

    def crowd_equal(self, left: Any, right: Any, question: Optional[str]) -> bool:
        if self.task_manager is None:
            raise ExecutionError(
                "query needs CROWDEQUAL but no crowd platform is configured"
            )
        self.crowd_compare_tasks += 1
        return self.task_manager.compare_equal(
            left, right, question, platform=self.platform
        )

    def crowd_order(self, left: Any, right: Any, question: str) -> bool:
        if self.task_manager is None:
            raise ExecutionError(
                "query needs CROWDORDER but no crowd platform is configured"
            )
        self.crowd_compare_tasks += 1
        return self.task_manager.compare_order(
            left, right, question, platform=self.platform
        )

    def scalar_subquery(self, query: ast.Select, values: tuple, scope: Scope) -> Any:
        rows = self._run_subquery(query, values, scope)
        if not rows:
            return NULL
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must select exactly one column")
        return rows[0][0]

    def subquery_values(self, query: ast.Select, values: tuple, scope: Scope) -> list:
        rows = self._run_subquery(query, values, scope)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("subquery must select exactly one column")
        return [row[0] for row in rows]

    def _run_subquery(
        self, query: ast.Select, values: tuple, scope: Scope
    ) -> list[tuple]:
        if self._subquery_executor is None:
            raise ExecutionError("subqueries are not available in this context")
        return self._subquery_executor(query, values, scope)
