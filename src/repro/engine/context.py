"""Execution context: the runtime services physical operators share.

One context serves one statement execution.  It bundles the storage
engine, the Task Manager (absent for purely electronic queries), the
expression evaluator, and the subquery executor, and implements the
:class:`~repro.plan.expressions.EvalContext` protocol so CROWDEQUAL and
subqueries evaluate inside ordinary predicates.

Every crowd request an operator makes flows through the ``crowd_*``
helpers here, which implement the issue/yield/resume protocol: issue the
tasks (non-blocking ``begin_*`` on the Task Manager), then hand the
future to :meth:`wait_crowd`.  Standalone connections resolve the wait by
advancing the simulated platform clock in place; under the concurrent
query server a ``crowd_waiter`` callback is installed that *suspends the
whole session* until the scheduler has results, so other sessions run
while this one's HITs are pending.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import CircuitOpenError, ExecutionError, PartialResultStop
from repro.plan.expressions import Evaluator
from repro.sql import ast
from repro.sqltypes import NULL
from repro.storage.engine import StorageEngine
from repro.storage.row import Scope


class CrowdLedger:
    """Per-statement attribution of crowd spend.

    The context records every future a statement waits on (mirrors and
    HIT-group members resolve to their settlement parent, deduplicated),
    and the Task Manager stamps each future with its own settlement
    accounting.  Summing those per-future figures gives the statement
    *its* cents/assignments even when concurrent sessions interleave —
    a global counter delta would absorb everyone else's spend.

    A future shared through the task pool (two sessions deduplicating
    onto one HIT) attributes its full spend to every waiter: each of
    those statements needed the answer and would have paid for it alone.
    """

    def __init__(self) -> None:
        self._futures: dict[int, Any] = {}

    def record(self, future: Any) -> None:
        target = (
            future.mirror_of
            if getattr(future, "mirror_of", None) is not None
            else future
        )
        self._futures.setdefault(id(target), target)

    def summary(self) -> dict[str, float]:
        hits = assignments = cents = extensions = 0
        confidence_sum = 0.0
        confidence_count = 0
        for future in self._futures.values():
            hits += len(future.hits)
            extensions += getattr(future, "extension_assignments", 0)
            accounting = getattr(future, "accounting", None)
            if accounting is None:
                continue  # cache-resolved future: no platform spend
            assignments += accounting["assignments"]
            cents += accounting["cost_cents"]
            confidence_sum += accounting["confidence_sum"]
            confidence_count += accounting["confidence_count"]
        return {
            "hits": hits,
            "assignments": assignments,
            "cost_cents": cents,
            "extension_assignments": extensions,
            "confidence_sum": confidence_sum,
            "confidence_count": confidence_count,
        }


class ExecutionContext:
    """Shared runtime state for one statement."""

    def __init__(
        self,
        engine: StorageEngine,
        task_manager: Optional[Any] = None,  # TaskManager, optional import cycle
        parameters: tuple = (),
        platform: Optional[str] = None,
        subquery_executor: Optional[
            Callable[[ast.Select, tuple, Scope], list[tuple]]
        ] = None,
        crowd_waiter: Optional[Callable[[Any], None]] = None,
        compile_expressions: bool = True,
        ordered_conjuncts: bool = True,
        crowd_ledger: Optional[CrowdLedger] = None,
        electronic_pool: Optional[Any] = None,
        guard: Optional[Any] = None,  # StatementGuard, deadline/budget caps
    ) -> None:
        self.engine = engine
        self.task_manager = task_manager
        self.parameters = parameters
        self.platform = platform
        # per-statement deadline/budget guard: checked at every crowd
        # boundary; a trip raises PartialResultStop, which the executor
        # converts into a status="partial" result
        self.guard = guard
        self._subquery_executor = subquery_executor
        self.crowd_waiter = crowd_waiter
        self.compile_expressions = compile_expressions
        # multi-core dispatch for binder-approved electronic regions
        # (repro.exec.pool.ElectronicPool); None executes them in place
        self.electronic_pool = electronic_pool
        # cost-based conjunct evaluation: FilterOp partitions AND-chains
        # into an electronic short-circuit prefix and a crowd/subquery
        # tail (identical for compiled and interpreted expressions);
        # False restores whole-predicate evaluation for every row
        self.ordered_conjuncts = ordered_conjuncts
        self.evaluator = Evaluator(context=self, parameters=parameters)
        # per-execution metrics surfaced by EXPLAIN ANALYZE-style reporting
        self.rows_scanned = 0
        self.crowd_probe_tasks = 0
        self.crowd_join_tasks = 0
        self.crowd_compare_tasks = 0
        # per-statement crowd attribution: every future this statement
        # waits on is recorded here (the executor threads one ledger
        # through a statement and its subqueries)
        self.crowd_ledger = crowd_ledger
        # quality/cost telemetry: snapshot the Task Manager counters at
        # statement start so the ResultSet can report this query's own
        # spend (assignments, cents, adaptive extensions, gold probes)
        # and mean verdict confidence rather than connection lifetime
        # totals.  Snapshots flatten dynamically created counters too
        # (TaskManagerStats.extra), and the delta below defaults missing
        # keys to 0 on *both* sides, so a counter that first appears
        # mid-query yields a true delta instead of an absolute total.
        self._crowd_stats_before: dict[str, float] = (
            task_manager.stats.snapshot() if task_manager is not None else {}
        )

    def crowd_quality_stats(self) -> dict[str, float]:
        """This statement's quality/cost attribution over the crowd.

        Keys: ``hits_posted``, ``assignments``, ``cost_cents``,
        ``hit_extensions``, ``gold_hits``, ``mean_confidence`` (0.0 when
        no verdict settled during the statement).

        With a :class:`CrowdLedger` attached (the executor always
        attaches one for SELECTs), figures are summed over the futures
        *this* statement waited on — exact even when concurrent server
        sessions spend in between.  Gold probes are charged via the
        gold-only counters (probes shadow whole marketplace rounds, not
        individual futures).  Without a ledger, figures fall back to
        global counter deltas (single-statement contexts).
        """
        if self.task_manager is None:
            return {}
        after = self.task_manager.stats.snapshot()
        before = self._crowd_stats_before

        def delta(key: str) -> float:
            return after.get(key, 0) - before.get(key, 0)

        if self.crowd_ledger is not None:
            summary = self.crowd_ledger.summary()
            verdicts = summary["confidence_count"]
            mean_confidence = (
                summary["confidence_sum"] / verdicts if verdicts else 0.0
            )
            return {
                "hits_posted": int(
                    summary["hits"] + delta("gold_hits_posted")
                ),
                "assignments": int(
                    summary["assignments"]
                    + delta("gold_assignments_received")
                ),
                "cost_cents": int(
                    summary["cost_cents"] + delta("gold_cost_cents")
                ),
                "hit_extensions": int(summary["extension_assignments"]),
                "gold_hits": int(delta("gold_hits_posted")),
                "mean_confidence": round(mean_confidence, 4),
            }
        verdicts = delta("confidence_count")
        mean_confidence = (
            delta("confidence_sum") / verdicts if verdicts else 0.0
        )
        return {
            "hits_posted": int(delta("hits_posted")),
            "assignments": int(delta("assignments_received")),
            "cost_cents": int(delta("cost_cents")),
            "hit_extensions": int(delta("hit_extensions")),
            "gold_hits": int(delta("gold_hits_posted")),
            "mean_confidence": round(mean_confidence, 4),
        }

    # -- plan-time expression compilation -----------------------------------------

    def compile_value_fn(self, expr: ast.Expression, scope: Scope):
        """Compile ``expr`` to a ``values -> SQL value`` closure against
        ``scope`` (interpreted closure when compilation is disabled)."""
        if self.compile_expressions:
            from repro.plan.compiled import compile_value

            return compile_value(
                expr, scope, context=self, parameters=self.parameters
            )
        evaluator = self.evaluator
        return lambda values: evaluator.value(expr, values, scope)

    def compile_predicate_fn(self, expr: ast.Expression, scope: Scope):
        """Compile ``expr`` to a ``values -> TriBool`` closure against
        ``scope`` (interpreted closure when compilation is disabled)."""
        if self.compile_expressions:
            from repro.plan.compiled import compile_predicate

            return compile_predicate(
                expr, scope, context=self, parameters=self.parameters
            )
        evaluator = self.evaluator
        return lambda values: evaluator.predicate(expr, values, scope)

    # -- issue / yield / resume ---------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Window for batch crowd execution (1 = tuple-at-a-time)."""
        if self.task_manager is None:
            return 1
        return max(1, getattr(self.task_manager.config, "batch_size", 1))

    def _guard_check(self) -> None:
        if self.guard is not None:
            self.guard.check()

    def _crowd_begin(self, issue: Callable[[], Any]) -> Any:
        """Gate one ``begin_*`` call on the statement guard.

        An open circuit breaker degrades the statement to a partial
        result when a guard is attached (SELECTs); without one the
        refusal propagates like any platform error."""
        self._guard_check()
        try:
            return issue()
        except CircuitOpenError as error:
            if self.guard is None:
                raise
            raise self.guard.trip("breaker") from error

    def wait_crowd(self, future: Any) -> None:
        """Block until ``future`` is settled.

        Serial mode advances the platform's discrete-event clock right
        here; cooperative mode yields the session to the scheduler, which
        resumes it only once the future has been settled.  A statement
        guard caps the wait: on expiry the future stays live in the task
        pool and the statement unwinds with :class:`PartialResultStop`.
        """
        if self.crowd_ledger is not None:
            self.crowd_ledger.record(future)
        if future.settled:
            return
        self._guard_check()
        if self.crowd_waiter is not None:
            self.crowd_waiter(future)
            if not future.settled:
                if self.guard is not None and self.guard.tripped:
                    raise PartialResultStop(self.guard.reason or "deadline")
                raise ExecutionError(
                    "cooperative scheduler resumed a session before its "
                    "crowd future settled"
                )
        else:
            until = self.guard.deadline_at if self.guard is not None else None
            if until is None:
                self.task_manager.wait(future)
            else:
                self.task_manager.wait(future, until=until)
                if not future.settled:
                    raise self.guard.trip("deadline")

    def wait_crowd_many(self, futures: list) -> None:
        """Block until every future of a batch is settled.

        Serial mode drives the whole set through one overlapped
        marketplace round; cooperative mode suspends the session on the
        *set*, and the scheduler resumes it once all members settled.
        A statement guard caps the wait as in :meth:`wait_crowd`.
        """
        if self.crowd_ledger is not None:
            for future in futures:
                self.crowd_ledger.record(future)
        pending = [f for f in futures if not f.settled]
        if not pending:
            return
        self._guard_check()
        if self.crowd_waiter is not None:
            self.crowd_waiter(pending if len(pending) > 1 else pending[0])
            if any(not f.settled for f in pending):
                if self.guard is not None and self.guard.tripped:
                    raise PartialResultStop(self.guard.reason or "deadline")
                raise ExecutionError(
                    "cooperative scheduler resumed a session before its "
                    "crowd future set settled"
                )
        else:
            until = self.guard.deadline_at if self.guard is not None else None
            if until is None:
                self.task_manager.wait_many(pending)
            else:
                self.task_manager.wait_many(pending, until=until)
                if any(not f.settled for f in pending):
                    raise self.guard.trip("deadline")

    def crowd_fill(
        self,
        schema: Any,
        primary_key: tuple,
        columns: tuple[str, ...],
        known_values: dict[str, Any],
    ) -> dict[str, Any]:
        """Issue a fill task, yield until answered, return typed values."""
        future = self._crowd_begin(
            lambda: self.task_manager.begin_fill(
                schema, primary_key, columns, known_values,
                platform=self.platform,
            )
        )
        self.wait_crowd(future)
        return future.result()

    def crowd_new_tuples(
        self,
        schema: Any,
        count: int,
        fixed_values: Optional[dict[str, Any]] = None,
        known_keys: Optional[set] = None,
    ) -> list[dict[str, Any]]:
        """Issue new-tuple tasks, yield until answered, return the tuples."""
        future = self._crowd_begin(
            lambda: self.task_manager.begin_new_tuples(
                schema,
                count,
                fixed_values=fixed_values,
                platform=self.platform,
                known_keys=known_keys,
            )
        )
        self.wait_crowd(future)
        return future.result()

    # -- batch issue / settle-once -------------------------------------------------

    def crowd_fill_many(self, requests: list[tuple]) -> list[dict[str, Any]]:
        """Issue a window's fill tasks together, settle once, return the
        typed values per request (see ``TaskManager.begin_fill_many``)."""
        futures = self._crowd_begin(
            lambda: self.task_manager.begin_fill_many(
                requests, platform=self.platform
            )
        )
        self.wait_crowd_many(futures)
        return [future.result() for future in futures]

    def crowd_new_tuples_many(
        self, specs: list[tuple]
    ) -> list[list[dict[str, Any]]]:
        """Issue several new-tuple requests (``(schema, count,
        fixed_values, known_keys)`` each) up front, settle the set once,
        and return the sourced tuples per request."""
        futures = [
            self._crowd_begin(
                lambda schema=schema, count=count, fixed_values=fixed_values,
                known_keys=known_keys: self.task_manager.begin_new_tuples(
                    schema,
                    count,
                    fixed_values=fixed_values,
                    platform=self.platform,
                    known_keys=known_keys,
                )
            )
            for schema, count, fixed_values, known_keys in specs
        ]
        self.wait_crowd_many(futures)
        return [future.result() for future in futures]

    def prefetch_compare_equal(self, pairs: list[tuple]) -> None:
        """Issue a window's CROWDEQUAL ballots together and settle them in
        one round; the answers land in the Task Manager's comparison
        cache, so per-row predicate evaluation afterwards never waits."""
        from repro.crowd.quality import normalize_answer

        futures = []
        seen: set[tuple] = set()
        for left, right, question in pairs:
            left_key = normalize_answer(left)
            right_key = normalize_answer(right)
            if (left_key, right_key) in seen or (right_key, left_key) in seen:
                continue  # one ballot answers both orientations
            seen.add((left_key, right_key))
            futures.append(
                self._crowd_begin(
                    lambda left=left, right=right, question=question:
                    self.task_manager.begin_compare_equal(
                        left, right, question, platform=self.platform
                    )
                )
            )
        self.wait_crowd_many(futures)

    def prefetch_compare_order(self, triples: list[tuple]) -> None:
        """Issue a round's CROWDORDER ballots together and settle them in
        one overlapped wait (crowd-sort batching)."""
        from repro.crowd.quality import normalize_answer

        futures = []
        seen: set[tuple] = set()
        for left, right, question in triples:
            left_key = normalize_answer(left)
            right_key = normalize_answer(right)
            if (
                (question, left_key, right_key) in seen
                or (question, right_key, left_key) in seen
            ):
                continue  # mirrored ballots share one HIT
            seen.add((question, left_key, right_key))
            futures.append(
                self._crowd_begin(
                    lambda left=left, right=right, question=question:
                    self.task_manager.begin_compare_order(
                        left, right, question, platform=self.platform
                    )
                )
            )
        self.wait_crowd_many(futures)

    # -- EvalContext protocol -----------------------------------------------------

    def crowd_equal(self, left: Any, right: Any, question: Optional[str]) -> bool:
        if self.task_manager is None:
            raise ExecutionError(
                "query needs CROWDEQUAL but no crowd platform is configured"
            )
        self.crowd_compare_tasks += 1
        future = self._crowd_begin(
            lambda: self.task_manager.begin_compare_equal(
                left, right, question, platform=self.platform
            )
        )
        self.wait_crowd(future)
        return future.result()

    def crowd_order(self, left: Any, right: Any, question: str) -> bool:
        if self.task_manager is None:
            raise ExecutionError(
                "query needs CROWDORDER but no crowd platform is configured"
            )
        self.crowd_compare_tasks += 1
        future = self._crowd_begin(
            lambda: self.task_manager.begin_compare_order(
                left, right, question, platform=self.platform
            )
        )
        self.wait_crowd(future)
        return future.result()

    def scalar_subquery(self, query: ast.Select, values: tuple, scope: Scope) -> Any:
        rows = self._run_subquery(query, values, scope)
        if not rows:
            return NULL
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must select exactly one column")
        return rows[0][0]

    def subquery_values(self, query: ast.Select, values: tuple, scope: Scope) -> list:
        rows = self._run_subquery(query, values, scope)
        if rows and len(rows[0]) != 1:
            raise ExecutionError("subquery must select exactly one column")
        return [row[0] for row in rows]

    def _run_subquery(
        self, query: ast.Select, values: tuple, scope: Scope
    ) -> list[tuple]:
        if self._subquery_executor is None:
            raise ExecutionError("subqueries are not available in this context")
        return self._subquery_executor(query, values, scope)
