"""Ensure the in-tree sources are importable even without installation."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
