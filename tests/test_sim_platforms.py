"""Tests for the simulated AMT and mobile platforms (marketplace loop)."""

import pytest

from repro.crowd.model import HIT, FillTask, HITStatus, reset_id_counters
from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.sim.behavior import BehaviorConfig
from repro.crowd.sim.mobile import VLDB_VENUE, SimulatedMobilePlatform
from repro.crowd.sim.population import generate_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.errors import CrowdPlatformError


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_id_counters()


@pytest.fixture
def oracle():
    oracle = GroundTruthOracle()
    oracle.load_fill("Talk", ("CrowdDB",), {"abstract": "the abstract"})
    return oracle


def make_hit(reward=2, assignments=3):
    task = FillTask(
        table="Talk",
        primary_key=("CrowdDB",),
        columns=("abstract",),
        known_values={"title": "CrowdDB"},
    )
    return HIT(task=task, reward_cents=reward, assignments_requested=assignments)


class TestSimulatedAMT:
    def test_hits_complete(self, oracle):
        platform = SimulatedAMT(oracle, population=50, seed=1)
        hit = make_hit()
        platform.post_hit(hit)
        done = platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        assert done
        assert hit.status is HITStatus.COMPLETED
        assert len(hit.assignments) == 3

    def test_deterministic_given_seed(self, oracle):
        def run(seed):
            reset_id_counters()
            platform = SimulatedAMT(oracle, population=50, seed=seed)
            hit = make_hit()
            platform.post_hit(hit)
            platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
            return [
                (a.worker_id, a.submitted_at) for a in hit.assignments
            ]

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_worker_does_not_repeat_a_hit(self, oracle):
        platform = SimulatedAMT(oracle, population=50, seed=2)
        hit = make_hit(assignments=5)
        platform.post_hit(hit)
        platform.wait_for_hits([hit.hit_id], timeout=96 * 3600)
        workers = [a.worker_id for a in hit.assignments]
        assert len(workers) == len(set(workers))

    def test_higher_reward_completes_faster(self, oracle):
        def completion_time(reward):
            reset_id_counters()
            platform = SimulatedAMT(oracle, population=100, seed=3)
            hits = [make_hit(reward=reward) for _ in range(20)]
            for hit in hits:
                platform.post_hit(hit)
            platform.wait_for_hits([h.hit_id for h in hits], timeout=96 * 3600)
            return platform.clock.now

        assert completion_time(8) < completion_time(1)

    def test_expiry(self, oracle):
        platform = SimulatedAMT(oracle, population=5, seed=4)
        hit = make_hit(assignments=50)
        hit.expires_at = 60.0  # one minute: nowhere near enough
        platform.post_hit(hit)
        platform.wait_for_hits([hit.hit_id], timeout=3600)
        assert hit.status is HITStatus.EXPIRED

    def test_double_post_rejected(self, oracle):
        platform = SimulatedAMT(oracle, population=5, seed=5)
        hit = make_hit()
        platform.post_hit(hit)
        with pytest.raises(CrowdPlatformError):
            platform.post_hit(hit)

    def test_unknown_hit(self, oracle):
        platform = SimulatedAMT(oracle, population=5, seed=6)
        with pytest.raises(CrowdPlatformError):
            platform.get_hit("nope")

    def test_cost_accounting(self, oracle):
        platform = SimulatedAMT(oracle, population=50, seed=7)
        hit = make_hit(reward=5)
        platform.post_hit(hit)
        platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        assert platform.total_cost_cents == 15  # 3 assignments x 5c
        assert platform.assignments_submitted == 3

    def test_empty_population_rejected(self, oracle):
        with pytest.raises(CrowdPlatformError):
            SimulatedAMT(oracle, workers=[], population=0)

    def test_hits_per_worker_distribution(self, oracle):
        platform = SimulatedAMT(oracle, population=80, seed=8)
        hits = [make_hit(assignments=1) for _ in range(120)]
        for hit in hits:
            platform.post_hit(hit)
        platform.wait_for_hits([h.hit_id for h in hits], timeout=10 * 24 * 3600)
        counts = sorted(platform.hits_per_worker().values(), reverse=True)
        assert sum(counts) >= 100
        # heavy tail: busiest decile does far more than its share
        top = sum(counts[: max(1, len(counts) // 10)])
        assert top / sum(counts) > 0.15

    def test_on_assignment_hook(self, oracle):
        platform = SimulatedAMT(oracle, population=50, seed=9)
        seen = []
        platform.on_assignment.append(lambda hit, a: seen.append(a.worker_id))
        hit = make_hit()
        platform.post_hit(hit)
        platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        assert len(seen) == 3


class TestMobilePlatform:
    def test_local_hit_completes(self, oracle):
        platform = SimulatedMobilePlatform(oracle, population=40, seed=1)
        hit = make_hit()
        hit.locality = (VLDB_VENUE[0], VLDB_VENUE[1], 5.0)
        platform.post_hit(hit)
        done = platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        assert done and len(hit.assignments) == 3

    def test_locality_filter_excludes_far_workers(self, oracle):
        # place every worker ~110 km away from the venue
        far_region = (VLDB_VENUE[0] + 1.0, VLDB_VENUE[1], 0.5)
        workers = generate_population(30, seed=2, region=far_region)
        platform = SimulatedMobilePlatform(oracle, workers=workers, seed=2)
        hit = make_hit()
        hit.locality = (VLDB_VENUE[0], VLDB_VENUE[1], 2.0)
        platform.post_hit(hit)
        done = platform.wait_for_hits([hit.hit_id], timeout=6 * 3600)
        assert not done
        assert len(hit.assignments) == 0

    def test_nonlocal_hit_open_to_everyone(self, oracle):
        platform = SimulatedMobilePlatform(oracle, population=40, seed=3)
        hit = make_hit()  # no locality constraint
        platform.post_hit(hit)
        assert platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)

    def test_burstiness_profile(self, oracle):
        platform = SimulatedMobilePlatform(
            oracle, population=40, seed=4,
            session_minutes=90, break_minutes=30,
        )
        in_session = platform.arrival_rate()
        platform.clock.advance_to(95 * 60.0)  # inside the coffee break
        in_break = platform.arrival_rate()
        assert in_break > in_session * 4
