"""Integration tests: crowd operators through full CrowdSQL execution.

Uses the scripted (perfect, instantaneous) crowd so assertions are exact;
the noisy simulated platforms are covered by test_simulated_end_to_end.
"""

import pytest

from repro.sqltypes import CNULL, NULL, is_cnull


class TestCrowdProbeColumns:
    def test_paper_motivating_query(self, demo_db):
        """SELECT abstract FROM Talk WHERE title = 'CrowdDB' must return
        the crowdsourced abstract instead of an empty/CNULL answer."""
        result = demo_db.execute(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
        )
        assert result.rows == [
            ("CrowdDB answers queries with crowdsourcing.",)
        ]

    def test_answers_are_memorized(self, demo_db):
        demo_db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")
        stored = demo_db.engine.table("Talk").lookup_primary_key(("CrowdDB",))
        assert stored.values[1] == "CrowdDB answers queries with crowdsourcing."
        # second run must not post new HITs (cached in storage)
        before = demo_db.crowd_stats["hits_posted"]
        demo_db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")
        assert demo_db.crowd_stats["hits_posted"] == before

    def test_only_needed_columns_probed(self, demo_db):
        demo_db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'")
        stored = demo_db.engine.table("Talk").lookup_primary_key(("Qurk",))
        assert is_cnull(stored.values[2])  # nb_attendees untouched

    def test_predicate_on_crowd_column_triggers_probe(self, demo_db):
        rows = demo_db.query("SELECT title FROM Talk WHERE nb_attendees > 70")
        assert sorted(rows) == [("CrowdDB",), ("Qurk",)]

    def test_predicate_pushdown_limits_probes(self, demo_db):
        """With the title filter pushed below the probe, only one fill
        task is posted even though three talks are stored."""
        demo_db.execute("SELECT abstract FROM Talk WHERE title = 'PIQL'")
        assert demo_db.crowd_stats["fill_requests"] == 1

    def test_aggregate_over_crowd_column(self, demo_db):
        result = demo_db.execute("SELECT AVG(nb_attendees) FROM Talk")
        assert result.scalar() == pytest.approx((120 + 80 + 60) / 3)

    def test_worker_no_value_stores_null(self, demo_db):
        demo_db.execute("INSERT INTO Talk (title) VALUES ('Mystery')")
        result = demo_db.execute(
            "SELECT abstract FROM Talk WHERE title = 'Mystery'"
        )
        assert result.rows == [(NULL,)]
        stored = demo_db.engine.table("Talk").lookup_primary_key(("Mystery",))
        assert stored.values[1] is NULL  # memorized as known-absent


class TestCrowdTableSourcing:
    def test_anti_probe_sources_missing_tuple(self, demo_db):
        result = demo_db.execute(
            "SELECT name, title FROM NotableAttendee WHERE name = 'Sam Madden'"
        )
        assert result.rows == [("Sam Madden", "Qurk")]
        # memorized
        heap = demo_db.engine.table("NotableAttendee")
        assert heap.lookup_primary_key(("Sam Madden",)) is not None

    def test_anti_probe_skipped_when_stored(self, demo_db):
        demo_db.execute(
            "INSERT INTO NotableAttendee VALUES ('Sam Madden', 'Qurk')"
        )
        before = demo_db.crowd_stats["hits_posted"]
        demo_db.execute(
            "SELECT title FROM NotableAttendee WHERE name = 'Sam Madden'"
        )
        assert demo_db.crowd_stats["hits_posted"] == before

    def test_limit_bounded_open_world_scan(self, demo_db):
        result = demo_db.execute("SELECT name FROM NotableAttendee LIMIT 2")
        assert len(result.rows) == 2

    def test_unbounded_scan_runs_closed_world(self, demo_db):
        """An unbounded crowd-table query warns at compile time and only
        returns stored tuples."""
        demo_db.execute(
            "INSERT INTO NotableAttendee VALUES ('Stored Person', 'Qurk')"
        )
        before = demo_db.crowd_stats["hits_posted"]
        with pytest.warns(Warning):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("always")
                result = demo_db.execute("SELECT name FROM NotableAttendee")
        assert ("Stored Person",) in result.rows
        assert demo_db.crowd_stats["hits_posted"] == before


class TestCrowdJoin:
    def test_join_sources_matching_tuples(self, demo_db):
        rows = demo_db.query(
            "SELECT t.title, n.name FROM Talk t "
            "JOIN NotableAttendee n ON n.title = t.title"
        )
        assert ("Qurk", "Sam Madden") in rows
        crowd_db_names = {name for title, name in rows if title == "CrowdDB"}
        assert crowd_db_names & {"Mike Franklin", "Donald Kossmann"}

    def test_join_memorizes_inner_tuples(self, demo_db):
        demo_db.query(
            "SELECT n.name FROM Talk t JOIN NotableAttendee n "
            "ON n.title = t.title"
        )
        assert len(demo_db.engine.table("NotableAttendee")) >= 2

    def test_join_does_not_reprobe_stored_keys(self, demo_db):
        demo_db.query(
            "SELECT n.name FROM Talk t JOIN NotableAttendee n "
            "ON n.title = t.title"
        )
        before = demo_db.crowd_stats["new_tuple_requests"]
        demo_db.query(
            "SELECT n.name FROM Talk t JOIN NotableAttendee n "
            "ON n.title = t.title"
        )
        after = demo_db.crowd_stats["new_tuple_requests"]
        # keys already probed within the first query are looked up in
        # storage; only keys with no stored match are probed again
        assert after - before <= 1  # PIQL has no attendees: may re-probe


class TestCrowdEqual:
    def test_entity_resolution(self, demo_db):
        demo_db.execute("CREATE TABLE Company (name STRING PRIMARY KEY)")
        demo_db.execute(
            "INSERT INTO Company VALUES ('I.B.M.'), ('Microsoft'), "
            "('International Business Machines')"
        )
        rows = demo_db.query(
            "SELECT name FROM Company WHERE CROWDEQUAL(name, 'IBM')"
        )
        assert sorted(rows) == [
            ("I.B.M.",),
            ("International Business Machines",),
        ]

    def test_exact_match_never_asks_crowd(self, demo_db):
        demo_db.execute("CREATE TABLE c2 (name STRING PRIMARY KEY)")
        demo_db.execute("INSERT INTO c2 VALUES ('IBM')")
        before = demo_db.crowd_stats["compare_requests"]
        rows = demo_db.query("SELECT name FROM c2 WHERE CROWDEQUAL(name, 'IBM')")
        assert rows == [("IBM",)]
        assert demo_db.crowd_stats["compare_requests"] == before

    def test_answers_cached_across_queries(self, demo_db):
        demo_db.execute("CREATE TABLE c3 (name STRING PRIMARY KEY)")
        demo_db.execute("INSERT INTO c3 VALUES ('I.B.M.')")
        demo_db.query("SELECT name FROM c3 WHERE CROWDEQUAL(name, 'IBM')")
        before = demo_db.crowd_stats["compare_requests"]
        demo_db.query("SELECT name FROM c3 WHERE CROWDEQUAL(name, 'IBM')")
        assert demo_db.crowd_stats["compare_requests"] == before


class TestCrowdOrder:
    def test_example3_full_ranking(self, demo_db):
        rows = demo_db.query(
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, 'Which talk did you like better')"
        )
        assert rows == [("CrowdDB",), ("Qurk",), ("PIQL",)]

    def test_top_k_with_limit(self, demo_db):
        rows = demo_db.query(
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, 'Which talk did you like better') LIMIT 2"
        )
        assert rows == [("CrowdDB",), ("Qurk",)]

    def test_descending(self, demo_db):
        rows = demo_db.query(
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, 'Which talk did you like better') DESC"
        )
        assert rows == [("PIQL",), ("Qurk",), ("CrowdDB",)]

    def test_top_k_uses_fewer_comparisons_than_full_sort(self, demo_oracle):
        from repro import connect
        from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn

        import random

        demo_oracle.load_ranking("rank?", {f"T{i:02d}": float(i) for i in range(20)})
        order = list(range(20))
        random.Random(4).shuffle(order)  # unsorted input: full sort pays

        def run(sql):
            db = connect(
                oracle=demo_oracle,
                platforms=(ScriptedPlatform(oracle_answer_fn(demo_oracle)),),
                default_platform="scripted",
            )
            db.execute("CREATE TABLE items (t STRING PRIMARY KEY)")
            for i in order:
                db.execute(f"INSERT INTO items VALUES ('T{i:02d}')")
            db.query(sql)
            return db.crowd_stats["compare_requests"]

        top2 = run("SELECT t FROM items ORDER BY CROWDORDER(t, 'rank?') LIMIT 2")
        full = run("SELECT t FROM items ORDER BY CROWDORDER(t, 'rank?')")
        assert top2 < full

    def test_comparisons_cached_within_sort(self, demo_db):
        demo_db.query(
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, 'Which talk did you like better')"
        )
        requests = demo_db.crowd_stats["compare_requests"]
        # 3 items need at most C(3,2) = 3 distinct ballots
        assert requests <= 3

    def test_mixed_keys(self, demo_db):
        rows = demo_db.query(
            "SELECT title FROM Talk ORDER BY "
            "nb_attendees DESC, CROWDORDER(title, 'Which talk did you like better')"
        )
        assert rows == [("CrowdDB",), ("Qurk",), ("PIQL",)]


class TestPlatformChoice:
    def test_default_platform_selectable(self, demo_oracle):
        from repro import connect

        db = connect(oracle=demo_oracle, seed=5, default_platform="mobile")
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        result = db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")
        assert result.rows[0][0] is not CNULL

    def test_switching_platform(self, demo_oracle):
        from repro import connect

        db = connect(oracle=demo_oracle, seed=5)
        db.set_platform("mobile")
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('Qurk')")
        result = db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'")
        assert result.rows[0][0]

    def test_unknown_platform_errors(self, demo_db):
        from repro.errors import CrowdPlatformError

        demo_db.set_platform("nonexistent")
        with pytest.raises(CrowdPlatformError):
            demo_db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'")


class TestSimulatedEndToEnd:
    """The same scenarios over the noisy discrete-event simulation."""

    def test_fill_with_majority_vote(self, sim_db):
        sim_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        sim_db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        result = sim_db.execute(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
        )
        answer = result.rows[0][0]
        assert isinstance(answer, str) and "crowdsourcing" in answer.lower()

    def test_crowd_cost_accounted(self, sim_db):
        sim_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        sim_db.execute("INSERT INTO Talk (title) VALUES ('Qurk')")
        sim_db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'")
        stats = sim_db.crowd_stats
        assert stats["cost_cents"] == stats["assignments_received"] * 2

    def test_wrm_sees_payments(self, sim_db):
        sim_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        sim_db.execute("INSERT INTO Talk (title) VALUES ('PIQL')")
        sim_db.execute("SELECT abstract FROM Talk WHERE title = 'PIQL'")
        assert sim_db.wrm.total_paid_cents > 0
