"""Tests for UNION / UNION ALL / EXCEPT / INTERSECT."""

import pytest

from repro.errors import ParseError, PlanError
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.pretty import format_statement


@pytest.fixture
def db(plain_db):
    plain_db.executescript(
        """
        CREATE TABLE a (x INTEGER PRIMARY KEY, tag STRING);
        CREATE TABLE b (x INTEGER PRIMARY KEY, tag STRING);
        INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three');
        INSERT INTO b VALUES (2, 'two'), (3, 'three'), (4, 'four');
        """
    )
    return plain_db


class TestParsing:
    def test_union_parses(self):
        stmt = parse("SELECT 1 UNION SELECT 2")
        assert isinstance(stmt, ast.SetOp) and stmt.op == "UNION"

    def test_union_all(self):
        stmt = parse("SELECT 1 UNION ALL SELECT 2")
        assert stmt.op == "UNION ALL"

    def test_chained_left_associative(self):
        stmt = parse("SELECT 1 UNION SELECT 2 EXCEPT SELECT 3")
        assert stmt.op == "EXCEPT"
        assert isinstance(stmt.left, ast.SetOp) and stmt.left.op == "UNION"

    def test_tail_attaches_to_compound(self):
        stmt = parse("SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2")
        assert isinstance(stmt, ast.SetOp)
        assert stmt.order_by and stmt.limit == ast.Literal(2)
        # branches carry no tail of their own
        assert stmt.left.order_by == () and stmt.right.order_by == ()

    def test_round_trip(self):
        sql = "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x DESC LIMIT 3"
        assert parse(format_statement(parse(sql))) == parse(sql)

    def test_plain_select_unchanged(self):
        stmt = parse("SELECT x FROM a ORDER BY x LIMIT 1")
        assert isinstance(stmt, ast.Select)
        assert stmt.limit == ast.Literal(1)


class TestExecution:
    def test_union_removes_duplicates(self, db):
        rows = db.query("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert len(rows) == 6

    def test_except(self, db):
        rows = db.query("SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x")
        assert rows == [(1,)]

    def test_intersect(self, db):
        rows = db.query("SELECT x FROM a INTERSECT SELECT x FROM b ORDER BY x")
        assert rows == [(2,), (3,)]

    def test_union_deduplicates_within_one_side(self, db):
        db.execute("INSERT INTO a VALUES (10, 'one')")
        rows = db.query("SELECT tag FROM a UNION SELECT tag FROM b")
        tags = [r[0] for r in rows]
        assert sorted(tags) == ["four", "one", "three", "two"]

    def test_order_by_ordinal_and_limit(self, db):
        rows = db.query(
            "SELECT x, tag FROM a UNION SELECT x, tag FROM b "
            "ORDER BY 1 DESC LIMIT 2"
        )
        assert rows == [(4, "four"), (3, "three")]

    def test_multi_column_rows(self, db):
        rows = db.query(
            "SELECT x, tag FROM a INTERSECT SELECT x, tag FROM b"
        )
        assert sorted(rows) == [(2, "two"), (3, "three")]

    def test_chained_three_way(self, db):
        rows = db.query(
            "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT 4 ORDER BY x"
        )
        assert rows == [(1,), (2,), (3,)]

    def test_output_columns_from_left(self, db):
        result = db.execute("SELECT x AS left_name FROM a UNION SELECT x FROM b")
        assert result.columns == ["left_name"]

    def test_explain_shows_setop(self, db):
        text = db.explain("SELECT x FROM a UNION SELECT x FROM b")
        assert "SetOp(UNION)" in text

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(PlanError, match="arity"):
            db.query("SELECT x FROM a UNION SELECT x, tag FROM b")

    def test_order_key_must_be_output_column(self, db):
        with pytest.raises(PlanError, match="output column"):
            db.query("SELECT x FROM a UNION SELECT x FROM b ORDER BY tag")

    def test_union_with_literals(self, db):
        rows = db.query("SELECT 1 UNION SELECT 1 UNION SELECT 2")
        assert sorted(rows) == [(1,), (2,)]


class TestWithCrowd:
    def test_union_over_crowd_columns(self, demo_db):
        rows = demo_db.query(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB' "
            "UNION SELECT abstract FROM Talk WHERE title = 'Qurk'"
        )
        assert len(rows) == 2
        assert any("crowdsourcing" in str(r[0]).lower() for r in rows)
