"""Unit tests for expression evaluation (scalar + three-valued logic)."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.plan.expressions import Evaluator, like_to_regex
from repro.sql import ast
from repro.sql.parser import Parser
from repro.sqltypes import CNULL, NULL, TRI_FALSE, TRI_TRUE, TRI_UNKNOWN
from repro.storage.row import Scope


def expr_of(sql_fragment):
    """Parse a standalone expression via a dummy SELECT."""
    stmt = Parser(f"SELECT {sql_fragment}").parse_statement()
    return stmt.items[0].expression


SCOPE = Scope([("t", "a"), ("t", "b"), ("t", "s")])


@pytest.fixture
def ev():
    return Evaluator()


def value(ev, fragment, row=(1, 2, "abc")):
    return ev.value(expr_of(fragment), row, SCOPE)


def tri(ev, fragment, row=(1, 2, "abc")):
    return ev.predicate(expr_of(fragment), row, SCOPE)


class TestScalars:
    def test_literals(self, ev):
        assert value(ev, "42") == 42
        assert value(ev, "'x'") == "x"
        assert value(ev, "TRUE") is True
        assert value(ev, "NULL") is NULL
        assert value(ev, "CNULL") is CNULL

    def test_column_resolution(self, ev):
        assert value(ev, "a") == 1
        assert value(ev, "t.b") == 2

    def test_arithmetic(self, ev):
        assert value(ev, "a + b * 2") == 5
        assert value(ev, "b - a") == 1
        assert value(ev, "-a") == -1
        assert value(ev, "7 % 3") == 1

    def test_division(self, ev):
        assert value(ev, "6 / 2") == 3      # integer when exact
        assert value(ev, "7 / 2") == 3.5    # float otherwise
        assert value(ev, "1 / 0") is NULL   # no crash on zero

    def test_arithmetic_with_missing(self, ev):
        assert value(ev, "a + NULL") is NULL
        assert value(ev, "CNULL * 2") is NULL

    def test_concat(self, ev):
        assert value(ev, "s || '!'") == "abc!"

    def test_arithmetic_type_error(self, ev):
        with pytest.raises(ExecutionError):
            value(ev, "s + 1")

    def test_case_searched(self, ev):
        assert value(ev, "CASE WHEN a = 1 THEN 'one' ELSE 'other' END") == "one"
        assert value(ev, "CASE WHEN a = 9 THEN 'one' END") is NULL

    def test_case_simple(self, ev):
        assert value(ev, "CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "one"

    def test_scalar_functions(self, ev):
        assert value(ev, "LOWER('AbC')") == "abc"
        assert value(ev, "UPPER(s)") == "ABC"
        assert value(ev, "LENGTH(s)") == 3
        assert value(ev, "TRIM('  x ')") == "x"
        assert value(ev, "ABS(-3)") == 3
        assert value(ev, "ROUND(2.567, 1)") == 2.6
        assert value(ev, "COALESCE(NULL, CNULL, 5)") == 5
        assert value(ev, "NULLIF(1, 1)") is NULL
        assert value(ev, "SUBSTR('hello', 2, 3)") == "ell"

    def test_unknown_function(self, ev):
        with pytest.raises(ExecutionError, match="unknown function"):
            value(ev, "FROBNICATE(1)")

    def test_parameters(self):
        ev = Evaluator(parameters=(10, "x"))
        assert ev.value(ast.Parameter(0), (), Scope([])) == 10
        assert ev.value(ast.Parameter(1), (), Scope([])) == "x"

    def test_missing_parameter(self):
        ev = Evaluator(parameters=())
        with pytest.raises(ExecutionError, match="parameter"):
            ev.value(ast.Parameter(0), (), Scope([]))

    def test_crowdorder_outside_order_by_raises(self, ev):
        with pytest.raises(PlanError, match="CROWDORDER"):
            ev.value(
                ast.CrowdOrder(ast.ColumnRef("a"), "q"), (1, 2, "abc"), SCOPE
            )


class TestPredicates:
    def test_comparisons(self, ev):
        assert tri(ev, "a = 1") is TRI_TRUE
        assert tri(ev, "a <> 1") is TRI_FALSE
        assert tri(ev, "b > a") is TRI_TRUE
        assert tri(ev, "b <= 1") is TRI_FALSE

    def test_comparison_with_missing_is_unknown(self, ev):
        assert tri(ev, "a = NULL") is TRI_UNKNOWN
        assert tri(ev, "CNULL < 1") is TRI_UNKNOWN

    def test_and_or_short_circuit_semantics(self, ev):
        assert tri(ev, "a = 1 AND b = 2") is TRI_TRUE
        assert tri(ev, "a = 1 AND b = 9") is TRI_FALSE
        assert tri(ev, "a = 9 OR b = 2") is TRI_TRUE
        assert tri(ev, "a = 1 AND NULL") is TRI_UNKNOWN
        assert tri(ev, "a = 9 AND NULL") is TRI_FALSE
        assert tri(ev, "a = 1 OR NULL") is TRI_TRUE

    def test_not(self, ev):
        assert tri(ev, "NOT a = 1") is TRI_FALSE
        assert tri(ev, "NOT a = NULL") is TRI_UNKNOWN

    def test_is_null_family(self, ev):
        row = (NULL, CNULL, "x")
        assert ev.predicate(expr_of("a IS NULL"), row, SCOPE) is TRI_TRUE
        # IS NULL also matches CNULL (both are "missing")
        assert ev.predicate(expr_of("b IS NULL"), row, SCOPE) is TRI_TRUE
        # IS CNULL matches only CNULL
        assert ev.predicate(expr_of("a IS CNULL"), row, SCOPE) is TRI_FALSE
        assert ev.predicate(expr_of("b IS CNULL"), row, SCOPE) is TRI_TRUE
        assert ev.predicate(expr_of("s IS NOT NULL"), row, SCOPE) is TRI_TRUE

    def test_in_list(self, ev):
        assert tri(ev, "a IN (1, 2)") is TRI_TRUE
        assert tri(ev, "a IN (5, 6)") is TRI_FALSE
        assert tri(ev, "a NOT IN (5)") is TRI_TRUE
        # unknown propagation: no match but a NULL in the list
        assert tri(ev, "a IN (5, NULL)") is TRI_UNKNOWN
        assert tri(ev, "NULL IN (1)") is TRI_UNKNOWN

    def test_between(self, ev):
        assert tri(ev, "a BETWEEN 0 AND 5") is TRI_TRUE
        assert tri(ev, "a BETWEEN 2 AND 5") is TRI_FALSE
        assert tri(ev, "a NOT BETWEEN 2 AND 5") is TRI_TRUE
        assert tri(ev, "a BETWEEN NULL AND 5") is TRI_UNKNOWN

    def test_like(self, ev):
        assert tri(ev, "s LIKE 'a%'") is TRI_TRUE
        assert tri(ev, "s LIKE '%b%'") is TRI_TRUE
        assert tri(ev, "s LIKE 'a_c'") is TRI_TRUE
        assert tri(ev, "s LIKE 'z%'") is TRI_FALSE
        assert tri(ev, "NULL LIKE 'a%'") is TRI_UNKNOWN

    def test_crowdequal_fast_path_without_context(self, ev):
        # identical values never reach the crowd
        assert tri(ev, "CROWDEQUAL(s, 'abc')") is TRI_TRUE

    def test_crowdequal_missing_is_unknown(self, ev):
        assert ev.predicate(
            expr_of("CROWDEQUAL(a, 'x')"), (NULL, 2, "s"), SCOPE
        ) is TRI_UNKNOWN

    def test_crowdequal_without_runtime_raises(self, ev):
        with pytest.raises(ExecutionError, match="crowd runtime"):
            tri(ev, "CROWDEQUAL(s, 'different')")

    def test_crowdequal_uses_context(self):
        class FakeContext:
            def crowd_equal(self, left, right, question):
                return {("I.B.M.", "IBM"): True}.get((left, right), False)

            def scalar_subquery(self, *args):  # pragma: no cover
                raise AssertionError

            def subquery_values(self, *args):  # pragma: no cover
                raise AssertionError

        ev = Evaluator(context=FakeContext())
        scope = Scope([("c", "name")])
        assert ev.predicate(
            expr_of("CROWDEQUAL(name, 'IBM')"), ("I.B.M.",), scope
        ) is TRI_TRUE
        assert ev.predicate(
            expr_of("CROWDEQUAL(name, 'IBM')"), ("Oracle",), scope
        ) is TRI_FALSE


class TestLikeRegex:
    def test_escaping(self):
        regex = like_to_regex("100%.txt")
        assert regex.match("100XYZ.txt")
        assert not regex.match("100XYZ_txt")

    def test_anchoring(self):
        regex = like_to_regex("abc")
        assert regex.match("abc") and not regex.match("xabc")
