"""Tests for schema-driven UI generation, management, editing, rendering."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.ddl import build_table_schema
from repro.crowd.model import TaskKind
from repro.errors import UITemplateError
from repro.sql.parser import parse
from repro.ui import generator
from repro.ui.form_editor import FormEditor
from repro.ui.manager import UITemplateManager
from repro.ui.render import render_for_amt, render_for_mobile

TALK = build_table_schema(
    parse(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, "
        "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
    )
)
ATTENDEE = build_table_schema(
    parse(
        "CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, "
        "title STRING)"
    )
)


class TestFillTemplate:
    def test_known_and_input_fields(self):
        template = generator.fill_template(TALK, ("abstract",))
        assert template.kind is TaskKind.FILL
        assert template.input_columns == ("abstract",)
        assert "title" in [c.lower() for c in template.known_columns]
        assert "{{value:title}}" in template.html
        assert "{{input:abstract}}" in template.html

    def test_instantiation_copies_known_values(self):
        """Paper Figure 2: the known 'CrowdDB' title is copied into the
        form; the missing field becomes an input."""
        template = generator.fill_template(TALK, ("abstract",))
        html = template.instantiate({"title": "CrowdDB"})
        assert "CrowdDB" in html
        assert '<input type="text" name="abstract"' in html
        assert "{{" not in html  # everything substituted

    def test_instantiation_escapes_html(self):
        template = generator.fill_template(TALK, ("abstract",))
        html = template.instantiate({"title": "<script>alert(1)</script>"})
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_prefilled_inputs(self):
        template = generator.fill_template(TALK, ("abstract",))
        html = template.instantiate({"title": "T", "abstract": "draft"})
        assert 'value="draft"' in html


class TestNewTupleTemplate:
    def test_all_columns_are_inputs(self):
        template = generator.new_tuple_template(ATTENDEE)
        assert set(template.input_columns) == {"name", "title"}

    def test_fixed_columns_shown_not_asked(self):
        template = generator.new_tuple_template(ATTENDEE, ("title",))
        assert template.input_columns == ("name",)
        html = template.instantiate({"title": "CrowdDB"})
        assert "CrowdDB" in html
        assert '<input type="text" name="name"' in html
        assert 'name="title"' not in html


class TestCompareTemplates:
    def test_equal_ballot(self):
        template = generator.compare_equal_template()
        html = template.instantiate({"left": "I.B.M.", "right": "IBM"})
        assert "I.B.M." in html and "IBM" in html
        assert 'name="same"' in html

    def test_order_ballot(self):
        template = generator.compare_order_template("Which talk was better?")
        html = template.instantiate({"left": "A", "right": "B"})
        assert "Which talk was better?" in html
        assert 'value="left"' in html and 'value="right"' in html


class TestTemplateManager:
    def make_manager(self):
        catalog = Catalog()
        catalog.register(TALK)
        catalog.register(ATTENDEE)
        return UITemplateManager(catalog)

    def test_generate_all(self):
        manager = self.make_manager()
        templates = manager.generate_all()
        ids = {t.template_id for t in templates}
        # fill template for Talk's crowd columns + fill & new for crowd table
        assert any(i.startswith("fill:Talk") for i in ids)
        assert any(i.startswith("new:NotableAttendee") for i in ids)

    def test_lazy_creation_and_reuse(self):
        manager = self.make_manager()
        first = manager.fill_template(TALK, ("abstract",))
        second = manager.fill_template(TALK, ("abstract",))
        assert first is second

    def test_get_unknown(self):
        manager = self.make_manager()
        with pytest.raises(UITemplateError):
            manager.get("nope")

    def test_instantiate_case_insensitive_values(self):
        manager = self.make_manager()
        template = manager.fill_template(TALK, ("abstract",))
        html = manager.instantiate(template, {"TITLE": "CrowdDB"})
        assert "CrowdDB" in html


class TestFormEditor:
    def make_editor(self):
        catalog = Catalog()
        catalog.register(TALK)
        manager = UITemplateManager(catalog)
        manager.fill_template(TALK, ("abstract",))
        return manager, FormEditor(manager)

    def test_set_instructions(self):
        manager, editor = self.make_editor()
        template_id = manager.all_templates()[0].template_id
        edited = editor.set_instructions(template_id, "Please search DBLP.")
        assert edited.edited
        assert manager.get(template_id).instructions == "Please search DBLP."

    def test_append_instructions(self):
        manager, editor = self.make_editor()
        template_id = manager.all_templates()[0].template_id
        original = manager.get(template_id).instructions
        editor.append_instructions(template_id, "Search DBLP first.")
        assert manager.get(template_id).instructions.startswith(original)

    def test_empty_instructions_rejected(self):
        manager, editor = self.make_editor()
        template_id = manager.all_templates()[0].template_id
        with pytest.raises(UITemplateError):
            editor.set_instructions(template_id, "  ")

    def test_html_edit_must_keep_inputs(self):
        manager, editor = self.make_editor()
        template_id = manager.all_templates()[0].template_id
        with pytest.raises(UITemplateError, match="drops input"):
            editor.set_html(template_id, "<div>no fields at all</div>")

    def test_valid_html_edit(self):
        manager, editor = self.make_editor()
        template_id = manager.all_templates()[0].template_id
        edited = editor.set_html(
            template_id,
            "<div>{{instructions}} custom {{value:title}} {{input:abstract}}</div>",
        )
        assert edited.edited
        html = edited.instantiate({"title": "T"})
        assert "custom" in html


class TestRendering:
    def test_amt_page(self):
        """Figure 2: a full MTurk-style page with reward and requester."""
        template = generator.fill_template(TALK, ("abstract",))
        page = render_for_amt(template, {"title": "CrowdDB"}, reward_cents=2)
        assert page.startswith("<!DOCTYPE html>")
        assert "Reward: $0.02" in page
        assert "Requester: CrowdDB" in page
        assert "CrowdDB" in page

    def test_mobile_card(self):
        """Figure 3: a compact card with a distance badge."""
        template = generator.fill_template(TALK, ("abstract",))
        card = render_for_mobile(
            template, {"title": "CrowdDB"}, distance_km=0.4
        )
        assert "<!DOCTYPE" not in card  # embedded card, not a page
        assert "0.4 km away" in card
        assert "VLDB crowd" in card

    def test_same_form_body_on_both_platforms(self):
        """The demo's point: one compiled task, two platforms."""
        template = generator.fill_template(TALK, ("abstract",))
        body = template.instantiate({"title": "CrowdDB"})
        page = render_for_amt(template, {"title": "CrowdDB"}, reward_cents=2)
        card = render_for_mobile(template, {"title": "CrowdDB"})
        assert body in page and body in card
