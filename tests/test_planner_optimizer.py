"""Tests for the logical plan builder and the rule-based optimizer."""

import warnings

import pytest

from repro import connect
from repro.errors import PlanError, UnboundedQueryError, UnboundedQueryWarning
from repro.plan import logical
from repro.sql.parser import parse


@pytest.fixture
def db(plain_db):
    plain_db.executescript(
        """
        CREATE TABLE Talk (title STRING PRIMARY KEY,
                           abstract CROWD STRING,
                           nb_attendees CROWD INTEGER);
        CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY,
                                            title STRING,
                                            FOREIGN KEY (title) REF Talk(title));
        CREATE TABLE Room (room STRING PRIMARY KEY, capacity INTEGER);
        """
    )
    return plain_db


def compiled(db, sql):
    return db.compile(sql)


def find(plan, node_type):
    return [n for n in plan.walk() if isinstance(n, node_type)]


class TestBuilder:
    def test_simple_shape(self, db):
        plan = compiled(db, "SELECT title FROM Talk").plan
        assert isinstance(plan, logical.Project)
        assert isinstance(plan.child, logical.Scan)

    def test_star_expansion(self, db):
        plan = compiled(db, "SELECT * FROM Talk").plan
        assert [name for _e, name in plan.items] == [
            "title", "abstract", "nb_attendees",
        ]

    def test_crowd_probe_inserted_for_crowd_columns(self, db):
        result = compiled(db, "SELECT abstract FROM Talk")
        probes = find(result.plan, logical.CrowdProbe)
        assert len(probes) == 1
        assert probes[0].columns == ("abstract",)

    def test_no_probe_when_no_crowd_columns_used(self, db):
        result = compiled(db, "SELECT title FROM Talk")
        assert not find(result.plan, logical.CrowdProbe)

    def test_probe_covers_predicate_columns(self, db):
        result = compiled(db, "SELECT title FROM Talk WHERE nb_attendees > 50")
        probes = find(result.plan, logical.CrowdProbe)
        assert probes and probes[0].columns == ("nb_attendees",)

    def test_order_by_alias(self, db):
        plan = compiled(db, "SELECT title AS t FROM Talk ORDER BY t").plan
        sorts = find(plan, logical.Sort)
        assert sorts

    def test_order_by_ordinal(self, db):
        plan = compiled(db, "SELECT title FROM Talk ORDER BY 1").plan
        assert find(plan, logical.Sort)

    def test_order_by_bad_ordinal(self, db):
        with pytest.raises(PlanError, match="out of range"):
            compiled(db, "SELECT title FROM Talk ORDER BY 5")

    def test_having_without_group_by_rejected(self, db):
        with pytest.raises(PlanError, match="HAVING"):
            compiled(db, "SELECT title FROM Talk HAVING title = 'x'")

    def test_crowdorder_rejected_in_where(self, db):
        with pytest.raises(PlanError, match="not allowed"):
            compiled(db, "SELECT title FROM Talk WHERE CROWDORDER(title, 'q') = 1")

    def test_limit_must_be_integer(self, db):
        with pytest.raises(PlanError, match="LIMIT"):
            compiled(db, "SELECT title FROM Talk LIMIT 'x'")

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(PlanError, match="duplicate table binding"):
            compiled(db, "SELECT 1 FROM Talk, Talk")

    def test_alias_allows_self_join(self, db):
        result = compiled(db, "SELECT 1 FROM Talk a, Talk b")
        assert len(find(result.plan, logical.Scan)) == 2


class TestPredicatePushdown:
    def test_non_crowd_predicate_pushed_below_probe(self, db):
        result = compiled(
            db, "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
        )
        probe = find(result.plan, logical.CrowdProbe)[0]
        # the title predicate must be evaluated before crowdsourcing
        filters_below = find(probe.child, logical.Filter)
        assert filters_below, result.plan.explain()

    def test_crowd_predicate_stays_above_probe(self, db):
        result = compiled(
            db, "SELECT title FROM Talk WHERE nb_attendees > 100"
        )
        probe = find(result.plan, logical.CrowdProbe)[0]
        assert not find(probe.child, logical.Filter)
        # the filter sits above the probe
        assert isinstance(result.plan.child, logical.Filter) or find(
            result.plan, logical.Filter
        )

    def test_join_condition_extracted_from_where(self, db):
        result = compiled(
            db,
            "SELECT t.title FROM Talk t, Room r "
            "WHERE t.title = r.room AND r.capacity > 10",
        )
        joins = find(result.plan, logical.Join)
        assert joins and joins[0].join_type == "INNER"
        assert joins[0].condition is not None

    def test_single_table_predicates_pushed_into_join_sides(self, db):
        result = compiled(
            db,
            "SELECT t.title FROM Talk t, Room r "
            "WHERE t.title = 'X' AND r.capacity > 10 AND t.title = r.room",
        )
        join = find(result.plan, logical.Join)[0]
        assert find(join.left, logical.Filter) or find(join.right, logical.Filter)


class TestStopAfter:
    def test_limit_reaches_crowd_scan(self, db):
        result = compiled(db, "SELECT name FROM NotableAttendee LIMIT 5")
        scan = find(result.plan, logical.Scan)[0]
        assert scan.limit_hint == 5

    def test_offset_added_to_hint(self, db):
        result = compiled(db, "SELECT name FROM NotableAttendee LIMIT 5 OFFSET 2")
        scan = find(result.plan, logical.Scan)[0]
        assert scan.limit_hint == 7

    def test_sort_becomes_top_k(self, db):
        result = compiled(
            db,
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, 'better?') LIMIT 10",
        )
        sort = find(result.plan, logical.Sort)[0]
        assert sort.top_k == 10
        assert sort.is_crowd_sort

    def test_no_hint_through_filter(self, db):
        result = compiled(
            db, "SELECT name FROM NotableAttendee WHERE title = 'X' LIMIT 5"
        )
        scan = find(result.plan, logical.Scan)[0]
        assert scan.limit_hint is None  # a filter may drop rows: unbounded


class TestJoinOrdering:
    def test_crowd_table_joined_last(self, db):
        db.execute("INSERT INTO Room VALUES ('R1', 10)")
        result = compiled(
            db,
            "SELECT * FROM NotableAttendee n, Room r, Talk t "
            "WHERE n.title = t.title AND t.title = r.room",
        )
        # the crowd relation must not be the leftmost leaf of the join tree
        def leftmost(plan):
            while True:
                children = plan.children()
                if not children:
                    return plan
                plan = children[0]

        leaf = leftmost(result.plan)
        assert isinstance(leaf, (logical.Scan,))
        assert not leaf.table.crowd


class TestCostBasedOrdering:
    """DP enumeration specifics (the bulk lives in test_cost_optimizer)."""

    def test_dp_and_greedy_agree_on_results(self, db):
        from repro.optimizer.optimizer import Optimizer

        db.executescript(
            "INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C');"
            "INSERT INTO Room VALUES ('A', 5), ('B', 9)"
        )
        sql = (
            "SELECT t.title, r.capacity FROM Talk t, Room r "
            "WHERE t.title = r.room ORDER BY t.title"
        )
        dp_rows = db.query(sql)
        db.executor.optimizer = Optimizer(db.engine, cost_based=False)
        assert db.query(sql) == dp_rows

    def test_cost_line_in_explain(self, db):
        text = db.explain("SELECT title FROM Talk")
        assert "-- cost:" in text

    def test_conjunct_ordering_puts_crowd_last(self, db):
        # nb_attendees is a crowd column, so its conjunct stays above the
        # probe in the same filter as the CROWDEQUAL — and must precede it
        result = compiled(
            db,
            "SELECT title FROM Talk "
            "WHERE CROWDEQUAL(abstract, 'x') AND nb_attendees > 5",
        )
        mixed = [
            n.describe()
            for n in result.plan.walk()
            if isinstance(n, logical.Filter)
            and "CROWDEQUAL" in n.describe()
            and "nb_attendees" in n.describe()
        ]
        assert mixed, result.plan.explain()
        assert mixed[0].index("nb_attendees") < mixed[0].index("CROWDEQUAL")
        assert "conjunct-ordering" in result.applied_rules


class TestCrowdJoinRewrite:
    def test_join_with_crowd_inner_becomes_crowdjoin(self, db):
        result = compiled(
            db,
            "SELECT t.title, n.name FROM Talk t "
            "JOIN NotableAttendee n ON n.title = t.title",
        )
        crowd_joins = find(result.plan, logical.CrowdJoin)
        assert len(crowd_joins) == 1
        cj = crowd_joins[0]
        assert cj.inner_key_columns == ("title",)
        assert cj.inner_table.name == "NotableAttendee"

    def test_regular_join_not_rewritten(self, db):
        result = compiled(
            db, "SELECT * FROM Talk t JOIN Room r ON t.title = r.room"
        )
        assert not find(result.plan, logical.CrowdJoin)
        assert find(result.plan, logical.Join)


class TestBoundedness:
    def test_pk_equality_is_bounded(self, db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnboundedQueryWarning)
            result = compiled(
                db, "SELECT title FROM NotableAttendee WHERE name = 'Mike'"
            )
        assert result.boundedness.bounded
        probe = find(result.plan, logical.CrowdProbe)[0]
        assert probe.anti_probe_keys == (("Mike",),)

    def test_pk_in_list_is_bounded(self, db):
        result = compiled(
            db,
            "SELECT title FROM NotableAttendee WHERE name IN ('A', 'B')",
        )
        assert result.boundedness.bounded
        probe = find(result.plan, logical.CrowdProbe)[0]
        assert probe.anti_probe_keys == (("A",), ("B",))

    def test_limit_is_bounded(self, db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnboundedQueryWarning)
            result = compiled(db, "SELECT name FROM NotableAttendee LIMIT 3")
        assert result.boundedness.bounded

    def test_crowdjoin_inner_is_bounded(self, db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnboundedQueryWarning)
            result = compiled(
                db,
                "SELECT n.name FROM Talk t "
                "JOIN NotableAttendee n ON n.title = t.title",
            )
        assert result.boundedness.bounded

    def test_open_scan_warns(self, db):
        with pytest.warns(UnboundedQueryWarning):
            result = compiled(db, "SELECT name FROM NotableAttendee")
        assert not result.boundedness.bounded

    def test_non_key_predicate_warns(self, db):
        with pytest.warns(UnboundedQueryWarning):
            result = compiled(
                db, "SELECT name FROM NotableAttendee WHERE title = 'X'"
            )
        assert not result.boundedness.bounded

    def test_strict_mode_raises(self, demo_oracle):
        db = connect(with_crowd=False, strict_boundedness=True)
        db.execute(
            "CREATE CROWD TABLE c (k STRING PRIMARY KEY, v STRING)"
        )
        with pytest.raises(UnboundedQueryError):
            db.compile("SELECT k FROM c")

    def test_regular_tables_never_flagged(self, db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnboundedQueryWarning)
            result = compiled(db, "SELECT abstract FROM Talk")
        assert result.boundedness.bounded
        assert result.boundedness.entries == []


class TestCardinality:
    def test_estimates_present(self, db):
        db.executescript(
            "INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')"
        )
        result = compiled(db, "SELECT abstract FROM Talk")
        assert result.estimated_rows == pytest.approx(3.0)
        # three CNULL abstracts to source
        assert result.estimated_crowd_calls == pytest.approx(3.0)

    def test_limit_caps_estimate(self, db):
        db.executescript(
            "INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')"
        )
        result = compiled(db, "SELECT title FROM Talk LIMIT 2")
        assert result.estimated_rows <= 2.0

    def test_crowd_sort_counts_comparisons(self, db):
        db.executescript(
            "INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C'), ('D')"
        )
        result = compiled(
            db,
            "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'q') LIMIT 2",
        )
        assert result.estimated_crowd_calls > 0

    def test_explain_includes_verdict(self, db):
        text = db.explain("SELECT name FROM NotableAttendee LIMIT 2")
        assert "bounded" in text
        assert "StopAfter" in text or "stopafter" in text
