"""Tests for the observability stack (repro.obs + its wiring).

Covers the metrics registry (instruments, views, collectors, Prometheus
text), the HIT trace ring, the slow-query log, ``EXPLAIN ANALYZE``
(estimate-vs-actual per plan node, misestimate flagging on stale
statistics), per-statement crowd-stats isolation across concurrent
server sessions, and the shell's ``.metrics``/``.trace``/``.slow``
commands.
"""

import io
import json

import pytest

from repro import connect, serve
from repro.cli import Shell
from repro.crowd.model import reset_id_counters
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import TaskManagerStats
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    TraceSink,
    misestimate_ratio,
)


def make_oracle(cities: int = 12) -> GroundTruthOracle:
    oracle = GroundTruthOracle()
    for i in range(cities):
        oracle.load_fill(
            "City",
            (f"city{i}",),
            {"population": 1000 + i, "elevation": 10 * i},
        )
    return oracle


def make_db(cities: int = 12, rows: int = 8, **kwargs):
    reset_id_counters()
    db = connect(oracle=make_oracle(cities), seed=11, **kwargs)
    db.execute(
        "CREATE TABLE City (name STRING PRIMARY KEY, "
        "population CROWD INTEGER, elevation CROWD INTEGER)"
    )
    for i in range(rows):
        db.execute("INSERT INTO City (name) VALUES (?)", (f"city{i}",))
    return db


# -- metrics registry ---------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        registry.counter("requests_total").inc(4)
        registry.gauge("depth").set(3.5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("latency").observe(value)
        snap = registry.snapshot()
        assert snap["requests_total"] == 5
        assert snap["depth"] == 3.5
        assert snap["latency"]["count"] == 4
        assert snap["latency"]["sum"] == 10.0
        assert snap["latency"]["min"] == 1.0
        assert snap["latency"]["max"] == 4.0

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0.5) == pytest.approx(50.0, abs=2.0)
        assert hist.percentile(0.99) == pytest.approx(99.0, abs=2.0)
        assert hist.mean == pytest.approx(50.5)

    def test_histogram_reservoir_is_bounded(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", reservoir=16)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000            # exact count survives eviction
        assert len(hist._reservoir) == 16    # bounded memory
        assert hist.percentile(0.5) > 900    # recent observations retained

    def test_views_and_labeled_gauges(self):
        registry = MetricsRegistry()
        registry.register_view("live", lambda: 7)
        registry.register_labeled(
            "busy", "session", lambda: {"1": 0.5, "2": 1.5}
        )
        snap = registry.snapshot()
        assert snap["live"] == 7
        assert snap['busy{session="1"}'] == 0.5
        assert snap['busy{session="2"}'] == 1.5

    def test_collectors_and_collect(self):
        registry = MetricsRegistry()
        backing = {"hits": 3, "misses": 1}
        registry.register_collector("cache", lambda: dict(backing))
        assert registry.collect("cache") == {"hits": 3, "misses": 1}
        assert registry.collect("nope") == {}
        backing["hits"] = 9  # pull-based: reads see the live object
        assert registry.collect("cache")["hits"] == 9
        assert registry.snapshot()["cache.hits"] == 9

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("statements_total", help="statements run").inc(2)
        registry.gauge("queue_depth").set(4)
        registry.histogram("latency_seconds").observe(0.25)
        registry.register_collector("pool", lambda: {"pending": 3})
        text = registry.text()
        assert "# TYPE crowddb_statements_total counter" in text
        assert "crowddb_statements_total 2" in text
        assert "# HELP crowddb_statements_total statements run" in text
        assert "# TYPE crowddb_queue_depth gauge" in text
        assert "# TYPE crowddb_latency_seconds summary" in text
        assert 'crowddb_latency_seconds{quantile="0.5"} 0.25' in text
        assert "crowddb_latency_seconds_count 1" in text
        assert "crowddb_pool_pending 3" in text


# -- trace sink ---------------------------------------------------------------------


class TestTraceSink:
    def test_ring_drops_oldest(self):
        sink = TraceSink(capacity=4)
        for i in range(10):
            sink.emit("hit.issue", hit=f"h{i}")
        assert len(sink) == 4
        assert sink.emitted == 10
        assert [e.data["hit"] for e in sink.events()] == [
            "h6", "h7", "h8", "h9",
        ]

    def test_kind_prefix_filter_and_counts(self):
        sink = TraceSink()
        sink.emit("hit.issue")
        sink.emit("hit.extend")
        sink.emit("future.settle")
        assert len(sink.events(kind="hit")) == 2
        assert len(sink.events(kind="hit.issue")) == 1
        assert len(sink.events(kind="future")) == 1
        assert sink.counts() == {
            "future.settle": 1, "hit.extend": 1, "hit.issue": 1,
        }

    def test_jsonl_round_trips(self, tmp_path):
        sink = TraceSink()
        sink.emit("hit.issue", sim=12.5, hit="hit-1", reward_cents=3)
        sink.emit("future.settle", task_kind="fill", cost_cents=6)
        lines = [json.loads(line) for line in sink.to_jsonl().splitlines()]
        assert lines[0]["kind"] == "hit.issue"
        assert lines[0]["hit"] == "hit-1"
        assert lines[1]["cost_cents"] == 6
        path = tmp_path / "trace.jsonl"
        assert sink.export(str(path)) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_clear_keeps_lifetime_count(self):
        sink = TraceSink()
        sink.emit("vote")
        sink.clear()
        assert len(sink) == 0
        assert sink.emitted == 1


# -- slow query log -----------------------------------------------------------------


class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.should_record(100.0)

    def test_threshold_and_capacity(self):
        log = SlowQueryLog(threshold_seconds=0.5, capacity=2)
        assert log.enabled
        assert not log.should_record(0.4)
        assert log.should_record(0.5)
        for i in range(5):
            log.record(f"SELECT {i}", 1.0 + i)
        assert log.recorded == 5
        entries = log.entries()
        assert len(entries) == 2
        assert entries[-1].sql == "SELECT 4"


# -- EXPLAIN ANALYZE ----------------------------------------------------------------


class TestExplainAnalyze:
    def test_every_node_reports_estimates_and_actuals(self):
        db = make_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT name, population FROM City "
            "WHERE population > 0"
        )
        assert result.statement == "EXPLAIN ANALYZE"
        lines = [row[0] for row in result.rows]
        node_lines = [l for l in lines if not l.startswith("--")]
        assert len(node_lines) >= 3  # Project / Filter / CrowdProbe / Scan
        for line in node_lines:
            assert "rows ~" in line      # estimate/actual pair per node
            assert "cents ~" in line
            assert "rounds ~" in line
            assert "ms" in line
        probe = next(l for l in node_lines if "CrowdProbe" in l)
        # the probe actually paid the crowd: actual cents are non-zero
        assert "/0 /" not in probe.split("cents")[1].split("/ rounds")[0]
        footer = "\n".join(lines)
        assert "-- actual:" in footer
        assert "assignment(s)" in footer
        assert "-- misestimates:" in footer
        # the run really went to the crowd and was accounted
        assert result.crowd_stats["cost_cents"] > 0
        assert result.crowd_stats["assignments"] > 0

    def test_star_join_reports_every_node(self):
        """E16-style star join: every node of a multi-join crowd plan
        carries estimated AND actual rows/cents/rounds."""
        reset_id_counters()
        oracle = make_oracle()
        db = connect(oracle=oracle, seed=11)
        db.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER, elevation CROWD INTEGER)"
        )
        db.execute(
            "CREATE TABLE Country (name STRING PRIMARY KEY, "
            "capital STRING)"
        )
        db.execute(
            "CREATE TABLE Visit (city STRING, country STRING)"
        )
        for i in range(6):
            db.execute(
                "INSERT INTO City (name) VALUES (?)", (f"city{i}",)
            )
            db.execute(
                "INSERT INTO Country (name, capital) VALUES (?, ?)",
                (f"country{i}", f"city{i}"),
            )
            db.execute(
                "INSERT INTO Visit (city, country) VALUES (?, ?)",
                (f"city{i}", f"country{i}"),
            )
        db.analyze()
        report = db.explain_analyze(
            "SELECT City.name, Country.capital FROM Visit "
            "JOIN City ON Visit.city = City.name "
            "JOIN Country ON Visit.country = Country.name "
            "WHERE City.population > 0"
        )
        lines = report.splitlines()
        node_lines = [l for l in lines if not l.startswith("--")]
        joins = [l for l in node_lines if "Join" in l]
        assert joins, report
        for line in node_lines:
            assert "rows ~" in line
            assert "cents ~" in line
            assert "rounds ~" in line
        assert "-- actual:" in report

    def test_stale_statistics_flag_misestimate(self):
        """ANALYZE on 2 rows, then grow the table 20x behind the
        optimizer's back: the stale histogram puts every id at <= 1, so
        a range predicate over the new rows is badly misestimated and
        EXPLAIN ANALYZE must flag it."""
        db = make_db(rows=0, auto_analyze_floor=-1)
        db.execute("CREATE TABLE Log (id INTEGER PRIMARY KEY, level STRING)")
        db.execute("INSERT INTO Log VALUES (0, 'info'), (1, 'warn')")
        db.analyze("Log")
        for i in range(2, 42):
            db.execute(
                "INSERT INTO Log VALUES (?, ?)", (i, "info")
            )
        report = db.explain_analyze("SELECT id FROM Log WHERE id > 1")
        assert "!! rows misestimate" in report
        assert "-- misestimates: " in report
        assert "none above" not in report

    def test_accurate_statistics_not_flagged(self):
        db = make_db(rows=0, auto_analyze_floor=-1)
        db.execute("CREATE TABLE Log (id INTEGER PRIMARY KEY, level STRING)")
        for i in range(40):
            db.execute("INSERT INTO Log VALUES (?, ?)", (i, "info"))
        db.analyze("Log")
        report = db.explain_analyze("SELECT id FROM Log")
        assert "!!" not in report
        assert "none above" in report

    def test_plain_explain_unchanged(self):
        db = make_db()
        result = db.execute("SELECT name FROM City WHERE name = 'city1'")
        assert result.rows == [("city1",)]
        explain = db.execute("EXPLAIN SELECT name FROM City")
        assert explain.statement == "EXPLAIN"
        assert all("rows ~" not in row[0] for row in explain.rows)

    def test_pretty_round_trip(self):
        from repro.sql.parser import parse
        from repro.sql.pretty import format_statement

        sql = "EXPLAIN ANALYZE SELECT name FROM City WHERE name = 'x'"
        stmt = parse(sql)
        assert stmt.analyze
        rendered = format_statement(stmt)
        assert rendered.startswith("EXPLAIN ANALYZE SELECT")
        assert parse(rendered) == stmt

    def test_misestimate_ratio_smoothing(self):
        assert misestimate_ratio(0.0, 0.0) == 1.0
        assert misestimate_ratio(0.0, 1.0) == 2.0
        assert misestimate_ratio(1.0, 7.0) == 4.0
        assert misestimate_ratio(7.0, 1.0) == 4.0  # symmetric


# -- statement metrics, slow log, tracing wired through connect() -------------------


class TestConnectionObservability:
    def test_statement_metrics_accumulate(self):
        db = make_db(rows=2)
        before = db.metrics.snapshot()["statements_total"]
        db.execute("SELECT name FROM City")
        snap = db.metrics.snapshot()
        assert snap["statements_total"] == before + 1
        assert snap["statement_seconds"]["count"] == before + 1
        assert snap.get("statement_crowd_cents_total", 0) >= 0

    def test_crowd_cents_counter_tracks_spend(self):
        db = make_db(rows=4)
        result = db.execute("SELECT population FROM City")
        spent = int(result.crowd_stats["cost_cents"])
        assert spent > 0
        assert db.metrics.snapshot()["statement_crowd_cents_total"] == spent

    def test_slow_query_log_records_sql(self):
        db = make_db(rows=2, slow_query_seconds=0.0)
        db.execute("SELECT name FROM City WHERE name = 'city0'")
        entries = db.slow_queries()
        assert entries
        assert entries[-1].statement == "SELECT"
        assert "SELECT name FROM City" in entries[-1].sql
        assert db.metrics.snapshot()["slow_queries_total"] == len(entries) or (
            db.metrics.snapshot()["slow_queries_total"] >= len(entries)
        )

    def test_trace_captures_hit_lifecycle(self):
        db = make_db(rows=4)
        db.execute("SELECT population FROM City")
        counts = db.trace.counts()
        assert counts.get("hit.issue", 0) >= 4
        assert counts.get("future.settle", 0) >= 4
        assert counts.get("vote", 0) >= 4
        issue = db.trace.events(kind="hit.issue")[0]
        assert issue.data["task_kind"] == "fill"
        assert issue.data["reward_cents"] > 0
        assert issue.data["replication"] >= 1
        settle = db.trace.events(kind="future.settle")[0]
        assert settle.data["workers"]
        assert settle.data["cost_cents"] > 0
        confidences = [
            e.data["confidence"]
            for e in db.trace.events(kind="future.settle")
            if e.data["confidence"] is not None
        ]
        assert confidences
        assert all(0.0 <= c <= 1.0 for c in confidences)

    def test_observability_off_disables_instrumentation(self):
        db = make_db(rows=2, observability=False)
        db.execute("SELECT name FROM City")
        db.execute("SELECT population FROM City WHERE name = 'city0'")
        assert "statements_total" not in db.metrics.snapshot()
        assert len(db.trace) == 0
        # compat views still work through the registry
        assert db.crowd_stats["hits_posted"] >= 1
        assert db.plan_cache_stats["plan"]["misses"] >= 1

    def test_metrics_text_exposes_crowd_collector(self):
        db = make_db(rows=2)
        db.execute("SELECT population FROM City WHERE name = 'city0'")
        text = db.metrics_text()
        assert "crowddb_crowd_hits_posted" in text
        assert "crowddb_plan_cache_misses" in text
        assert "crowddb_parse_cache_hits" in text


# -- satellite: dynamic counters appearing mid-stream -------------------------------


class TestDynamicCounters:
    def test_snapshot_includes_extras(self):
        stats = TaskManagerStats()
        before = stats.snapshot()
        assert "hits_fill" not in before
        stats.bump("hits_fill", 3)
        after = stats.snapshot()
        assert after["hits_fill"] == 3
        # once present, later snapshots always carry the key, so deltas
        # computed between any two of them stay deltas
        stats.bump("hits_fill", 2)
        assert stats.snapshot()["hits_fill"] == 5

    def test_per_query_stats_unpolluted_by_new_counters(self):
        """A counter first appearing during query 1 must not leak its
        total into query 2's per-statement delta."""
        db = make_db(rows=8)
        r1 = db.execute(
            "SELECT population FROM City WHERE name IN ('city0', 'city1')"
        )
        r2 = db.execute(
            "SELECT population FROM City WHERE name IN ('city2', 'city3')"
        )
        assert r1.crowd_stats["hits_posted"] == 2
        assert r2.crowd_stats["hits_posted"] == 2  # not cumulative
        assert r2.crowd_stats["cost_cents"] == r1.crowd_stats["cost_cents"]


# -- satellite: concurrent-session crowd-stats isolation ----------------------------


class TestConcurrentSessionIsolation:
    def _server(self):
        reset_id_counters()
        server = serve(oracle=make_oracle(), seed=5)
        server.connection.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER, elevation CROWD INTEGER)"
        )
        for i in range(8):
            server.connection.execute(
                "INSERT INTO City (name) VALUES (?)", (f"city{i}",)
            )
        return server

    def test_sessions_see_only_their_own_spend(self):
        server = self._server()
        a = server.open_session().submit(
            "SELECT population FROM City WHERE name = 'city1'"
        )
        b = server.open_session().submit(
            "SELECT elevation FROM City "
            "WHERE name IN ('city2', 'city3', 'city4')"
        )
        server.run()
        sa = a.last_result().crowd_stats
        sb = b.last_result().crowd_stats
        assert sa["hits_posted"] == 1
        assert sb["hits_posted"] == 3
        assert sa["cost_cents"] > 0 and sb["cost_cents"] > 0
        assert sb["cost_cents"] == 3 * sa["cost_cents"]
        global_stats = server.connection.crowd_stats
        assert global_stats["hits_posted"] == 4
        assert (
            sa["cost_cents"] + sb["cost_cents"] == global_stats["cost_cents"]
        )
        server.shutdown()

    def test_deduplicated_future_reports_spend_to_both(self):
        """Two sessions sharing one pooled HIT both observe its spend
        (each query genuinely waited on that work)."""
        server = self._server()
        sql = "SELECT population FROM City WHERE name = 'city5'"
        a = server.open_session().submit(sql)
        b = server.open_session().submit(sql)
        server.run()
        sa = a.last_result().crowd_stats
        sb = b.last_result().crowd_stats
        assert sa == sb
        assert sa["hits_posted"] == 1
        # globally only one HIT was paid for
        assert server.connection.crowd_stats["hits_posted"] == 1
        assert server.stats()["task_pool"]["hits_saved"] == 1
        server.shutdown()

    def test_serial_connection_matches_ledger_accounting(self):
        """Single-connection path: ledger-based stats equal what the
        old global-delta accounting reported."""
        db = make_db(rows=4)
        result = db.execute("SELECT population FROM City")
        stats = result.crowd_stats
        assert stats["hits_posted"] == 4
        assert stats["assignments"] == db.crowd_stats["assignments_received"]
        assert stats["cost_cents"] == db.crowd_stats["cost_cents"]
        assert 0.0 < stats["mean_confidence"] <= 1.0


# -- server metrics -----------------------------------------------------------------


class TestServerMetrics:
    def test_stats_shape_preserved_and_extended(self):
        reset_id_counters()
        server = serve(oracle=make_oracle(), seed=5)
        stats = server.stats()
        assert set(stats) == {
            "sessions_open", "simulated_seconds", "task_manager",
            "task_pool", "scheduler", "admission",
        }
        assert stats["admission"]["active"] == 0
        assert stats["admission"]["waiting"] == 0
        assert stats["task_pool"]["pending"] == 0
        server.shutdown()

    def test_metrics_text_includes_server_subsystems(self):
        reset_id_counters()
        server = serve(oracle=make_oracle(), seed=5)
        server.connection.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER, elevation CROWD INTEGER)"
        )
        server.connection.execute(
            "INSERT INTO City (name) VALUES ('city0')"
        )
        session = server.open_session()
        session.submit("SELECT population FROM City")
        server.run()
        text = server.metrics_text()
        assert "crowddb_sessions_open 1" in text
        assert "crowddb_task_pool_lookups" in text
        assert "crowddb_scheduler_slices" in text
        assert "crowddb_admission_admitted" in text
        assert 'crowddb_session_statements{session="1"} 1' in text
        assert 'crowddb_session_busy_seconds{session="1"}' in text
        assert "crowddb_task_pool_dedup_rate" in text
        assert "crowddb_simulated_seconds" in text
        server.shutdown()

    def test_scheduler_counts_marketplace_rounds(self):
        reset_id_counters()
        server = serve(oracle=make_oracle(), seed=5)
        server.connection.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER, elevation CROWD INTEGER)"
        )
        server.connection.execute("INSERT INTO City (name) VALUES ('city0')")
        server.open_session().submit("SELECT population FROM City")
        server.run()
        stats = server.stats()
        assert stats["scheduler"]["clock_advances"] >= 1
        assert (
            stats["task_manager"]["marketplace_rounds"]
            >= stats["scheduler"]["clock_advances"]
        )
        server.shutdown()


# -- shell commands -----------------------------------------------------------------


class TestShellCommands:
    def _shell(self, **kwargs):
        db = make_db(rows=2, **kwargs)
        out = io.StringIO()
        return Shell(connection=db, stdout=out), out

    def test_metrics_command(self):
        shell, out = self._shell()
        shell.handle_line("SELECT population FROM City WHERE name = 'city0';")
        shell.handle_line(".metrics")
        text = out.getvalue()
        assert "crowddb_statements_total" in text
        assert "crowddb_crowd_hits_posted" in text

    def test_trace_command_variants(self, tmp_path):
        shell, out = self._shell()
        shell.handle_line("SELECT population FROM City WHERE name = 'city0';")
        shell.handle_line(".trace")
        assert '"kind": "hit.issue"' in out.getvalue()
        shell.handle_line(".trace vote 1")
        assert '"kind": "vote"' in out.getvalue()
        path = tmp_path / "t.jsonl"
        shell.handle_line(f".trace export {path}")
        assert path.exists()
        shell.handle_line(".trace clear")
        shell.handle_line(".trace")
        assert "no trace events" in out.getvalue()

    def test_slow_command(self):
        shell, out = self._shell(slow_query_seconds=0.0)
        shell.handle_line("SELECT name FROM City;")
        shell.handle_line(".slow")
        assert "SELECT name FROM City" in out.getvalue()

    def test_slow_command_disabled(self):
        shell, out = self._shell()
        shell.handle_line(".slow")
        assert "slow-query log disabled" in out.getvalue()

    def test_help_mentions_new_commands(self):
        shell, out = self._shell()
        shell.handle_line(".help")
        text = out.getvalue()
        assert ".metrics" in text
        assert ".trace" in text
