"""Durability: WAL framing, checkpoints, crash recovery, fault injection.

The recovery contract under test: after a crash at *any* WAL injection
point, the recovered engine equals the state produced by replaying only
the committed (fully written, CRC-valid) prefix — torn or corrupt tail
records are unacknowledged writes, dropped with a warning, never a
crash and never silent loss.  Paid crowd answers live in the same log
(``origin="crowd"``), so a crash-and-recover re-run buys zero new HITs.
"""

from __future__ import annotations

import io
import signal
import warnings

import pytest

from repro import cli, connect, serve
from repro.api import Connection
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.task_manager import CrowdConfig
from repro.errors import (
    ExecutionError,
    RecoveryWarning,
    TransientPlatformError,
    WALError,
)
from repro.storage.engine import StorageEngine
from repro.storage.recovery import (
    DurableStorage,
    recover_storage,
    wal_path,
)
from repro.storage.wal import (
    FaultingWAL,
    WalCrash,
    WriteAheadLog,
    decode_value,
    encode_value,
    read_wal,
)
from repro.sqltypes import CNULL, NULL

#: One-record-per-statement workload: crash injection at record boundary
#: k leaves exactly the first k statements committed.
WORKLOAD = [
    "CREATE TABLE t (a INTEGER PRIMARY KEY, b STRING)",
    "INSERT INTO t VALUES (1, 'x')",
    "INSERT INTO t VALUES (2, 'y')",
    "CREATE INDEX t_b ON t (b)",
    "UPDATE t SET b = 'z' WHERE a = 1",
    "DELETE FROM t WHERE a = 2",
    "INSERT INTO t VALUES (3, 'I.B.M.')",
    "ANALYZE t",
]


def run_statements(connection, statements):
    for statement in statements:
        connection.execute(statement)


def engine_state(engine: StorageEngine) -> dict:
    """Canonical snapshot of everything recovery must reproduce: rows by
    exact rowid, rowid counter, secondary indexes, normalized-PK sets,
    and the statistics epoch."""
    state = {}
    for name in sorted(engine.table_names()):
        heap = engine.table(name)
        state[name] = {
            "rows": dict(sorted(heap._rows.items())),
            "next_rowid": heap._next_rowid,
            "indexes": sorted(heap.indexes),
            "pks": (
                sorted(heap._normalized_pks)
                if heap._normalized_pks is not None
                else None
            ),
            "epoch": heap.statistics.epoch,
            "analyzed": heap.statistics.analyzed,
        }
    return state


def reference_state(statements) -> dict:
    """What a never-crashed in-memory engine looks like after them."""
    connection = connect(with_crowd=False)
    run_statements(connection, statements)
    return engine_state(connection.engine)


class TestWalFraming:
    def test_value_codec_round_trips_sentinels(self):
        for value in (1, 2.5, "x", True):
            assert decode_value(encode_value(value)) == value
        assert decode_value(encode_value(NULL)) is NULL
        assert decode_value(encode_value(CNULL)) is CNULL
        # plain None collapses into the SQL NULL sentinel
        assert decode_value(encode_value(None)) is NULL

    def test_unencodable_value_raises(self):
        with pytest.raises(WALError):
            encode_value(object())

    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, sync="off")
        records = [{"op": "insert", "i": i} for i in range(5)]
        for record in records:
            wal.append(record)
        wal.close()
        scan = read_wal(path)
        assert not scan.corrupt_tail
        assert [record for _, record in scan.records] == records
        assert [lsn for lsn, _ in scan.records] == [0, 1, 2, 3, 4]

    def test_lsns_survive_truncation(self, tmp_path):
        """Checkpoint truncation never rewinds the LSN counter, so a
        record can never be replayed twice across checkpoints."""
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, sync="off")
        wal.append({"op": "insert"})
        wal.truncate()
        wal.append({"op": "insert"})
        wal.close()
        assert [lsn for lsn, _ in read_wal(path).records] == [1]


class TestCheckpointRecover:
    def test_recover_without_checkpoint(self, tmp_path):
        storage = DurableStorage(str(tmp_path), wal_sync="off")
        connection = Connection(engine=storage.engine)
        run_statements(connection, WORKLOAD)
        expected = engine_state(storage.engine)
        # no close: simulate a crash, recover from the WAL alone
        storage.wal.flush()
        recovered = recover_storage(str(tmp_path))
        assert engine_state(recovered.engine) == expected
        assert recovered.report.checkpoint_loaded is False
        assert recovered.report.records_replayed == len(WORKLOAD)

    def test_recover_from_checkpoint_plus_tail(self, tmp_path):
        storage = DurableStorage(str(tmp_path), wal_sync="off")
        connection = Connection(engine=storage.engine)
        run_statements(connection, WORKLOAD[:4])
        storage.checkpoint()
        run_statements(connection, WORKLOAD[4:])
        expected = engine_state(storage.engine)
        storage.wal.flush()
        recovered = recover_storage(str(tmp_path))
        assert engine_state(recovered.engine) == expected
        assert recovered.report.checkpoint_loaded is True
        assert recovered.report.records_replayed == len(WORKLOAD) - 4

    def test_close_then_reopen_replays_nothing(self, tmp_path):
        storage = DurableStorage(str(tmp_path), wal_sync="off")
        connection = Connection(engine=storage.engine)
        run_statements(connection, WORKLOAD)
        expected = engine_state(storage.engine)
        storage.close()
        storage.close()  # idempotent
        reopened = DurableStorage(str(tmp_path))
        assert engine_state(reopened.engine) == expected
        assert reopened.report.records_replayed == 0
        reopened.close()

    def test_maybe_checkpoint_interval(self, tmp_path):
        storage = DurableStorage(
            str(tmp_path), wal_sync="off", checkpoint_interval=3
        )
        connection = Connection(engine=storage.engine)
        for statement in WORKLOAD:
            connection.execute(statement)
            storage.maybe_checkpoint()
        assert storage.checkpoints_written >= 2
        storage.wal.flush()
        recovered = recover_storage(str(tmp_path))
        assert engine_state(recovered.engine) == engine_state(storage.engine)


class TestCorruptTail:
    def _written_wal(self, tmp_path):
        storage = DurableStorage(str(tmp_path), wal_sync="off")
        connection = Connection(engine=storage.engine)
        run_statements(connection, WORKLOAD)
        storage.wal.flush()
        return wal_path(str(tmp_path))

    def test_torn_tail_recovers_committed_prefix(self, tmp_path):
        path = self._written_wal(tmp_path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-7])  # tear the last record mid-line
        with pytest.warns(RecoveryWarning, match="torn"):
            recovered = recover_storage(str(tmp_path))
        assert recovered.report.corrupt_tail is True
        assert engine_state(recovered.engine) == reference_state(WORKLOAD[:-1])

    def test_crc_corruption_stops_replay_with_warning(self, tmp_path):
        path = self._written_wal(tmp_path)
        with open(path, "rb") as handle:
            lines = handle.readlines()
        # flip a payload byte in the second-to-last record
        bad = bytearray(lines[-2])
        bad[-10] = bad[-10] ^ 0xFF
        lines[-2] = bytes(bad)
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.warns(RecoveryWarning):
            recovered = recover_storage(str(tmp_path))
        assert recovered.report.corrupt_tail is True
        # everything before the corruption survives, nothing after
        assert engine_state(recovered.engine) == reference_state(WORKLOAD[:-2])

    def test_reopen_truncates_corrupt_tail(self, tmp_path):
        """DurableStorage trims the torn bytes so the next append starts
        at a clean record boundary."""
        path = self._written_wal(tmp_path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data + b"garbage-without-newline")
        with pytest.warns(RecoveryWarning):
            storage = DurableStorage(str(tmp_path), wal_sync="off")
        connection = Connection(engine=storage.engine)
        connection.execute("INSERT INTO t VALUES (9, 'late')")
        storage.wal.flush()
        scan = read_wal(path)
        assert not scan.corrupt_tail
        assert scan.records[-1][1]["op"] == "insert"


class TestFaultInjection:
    def _faulting_storage(self, directory, **fault):
        return DurableStorage(
            str(directory),
            wal_sync="off",
            checkpoint_interval=None,
            wal_factory=lambda path, **kw: FaultingWAL(path, **fault, **kw),
        )

    def test_every_record_boundary(self, tmp_path):
        """Crash after each k-th record: recovery must equal a clean run
        of exactly the first k statements."""
        for k in range(len(WORKLOAD) + 1):
            directory = tmp_path / f"boundary-{k}"
            storage = self._faulting_storage(directory, fail_after_records=k)
            connection = Connection(engine=storage.engine)
            crashed = False
            try:
                run_statements(connection, WORKLOAD)
            except WalCrash:
                crashed = True
            assert crashed == (k < len(WORKLOAD))
            # a crash already flushed (FaultingWAL._crash); the clean
            # k == len(WORKLOAD) run still holds its buffer
            storage.wal.flush()
            recovered = recover_storage(str(directory))
            assert engine_state(recovered.engine) == reference_state(
                WORKLOAD[:k]
            ), f"mismatch at record boundary {k}"
            assert recovered.report.corrupt_tail is False

    def test_every_byte_offset_in_final_stretch(self, tmp_path):
        """Tear the write stream at individual byte offsets: recovery
        lands on the last complete record, warning when bytes were torn."""
        # reference run to learn the record boundaries
        clean_dir = tmp_path / "clean"
        storage = DurableStorage(str(clean_dir), wal_sync="off")
        run_statements(Connection(engine=storage.engine), WORKLOAD)
        storage.wal.flush()
        with open(wal_path(str(clean_dir)), "rb") as handle:
            data = handle.read()
        boundaries = [0] + [
            i + 1 for i, byte in enumerate(data) if byte == ord("\n")
        ]
        # sweep a byte range spanning the last two records
        for cut in range(boundaries[-3], len(data), 7):
            directory = tmp_path / f"cut-{cut}"
            storage = self._faulting_storage(directory, fail_after_bytes=cut)
            connection = Connection(engine=storage.engine)
            with pytest.raises(WalCrash):
                run_statements(connection, WORKLOAD)
            committed = sum(1 for b in boundaries[1:] if b <= cut)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RecoveryWarning)
                recovered = recover_storage(str(directory))
            assert engine_state(recovered.engine) == reference_state(
                WORKLOAD[:committed]
            ), f"mismatch at byte cut {cut}"
            assert recovered.report.corrupt_tail == (cut not in boundaries)

    def test_derived_state_matches_never_crashed_engine(self, tmp_path):
        """Differential audit: secondary indexes answer lookups, the
        normalized-PK dedup set and rowid counter behave identically
        after recovery."""
        storage = self._faulting_storage(tmp_path, fail_after_records=7)
        connection = Connection(engine=storage.engine)
        with pytest.raises(WalCrash):
            run_statements(connection, WORKLOAD)
        recovered = recover_storage(str(tmp_path))
        reference = connect(with_crowd=False)
        run_statements(reference, WORKLOAD[:7])
        heap = recovered.engine.table("t")
        ref_heap = reference.engine.table("t")
        assert sorted(heap.indexes) == sorted(ref_heap.indexes)
        assert (
            heap.indexes["t_b"].lookup(("z",))
            == ref_heap.indexes["t_b"].lookup(("z",))
        )
        assert sorted(heap.normalized_primary_keys()) == sorted(
            ref_heap.normalized_primary_keys()
        )
        # inserts after recovery continue the rowid sequence, not reuse it
        recovered_conn = Connection(engine=recovered.engine)
        recovered_conn.execute("INSERT INTO t VALUES (4, 'post')")
        reference.execute("INSERT INTO t VALUES (4, 'post')")
        assert engine_state(recovered.engine) == engine_state(reference.engine)


class TestCrowdLedger:
    def _durable_crowd(self, directory, demo_oracle):
        platform = ScriptedPlatform(oracle_answer_fn(demo_oracle))
        return connect(
            oracle=demo_oracle,
            platforms=(platform,),
            default_platform="scripted",
            path=str(directory),
        )

    def test_crash_recover_buys_zero_new_hits(self, tmp_path, demo_oracle):
        db = self._durable_crowd(tmp_path, demo_oracle)
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        db.execute(
            "INSERT INTO Talk (title) VALUES ('CrowdDB'), ('Qurk'), ('PIQL')"
        )
        db.execute(
            "CREATE TABLE Company (name STRING PRIMARY KEY)"
        )
        db.execute("INSERT INTO Company VALUES ('I.B.M.'), ('Microsoft')")
        first = db.execute(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
        ).rows
        equal = db.execute(
            "SELECT name FROM Company WHERE CROWDEQUAL(name, 'IBM')"
        ).rows
        assert db.crowd_stats["hits_posted"] > 0
        expected = engine_state(db.engine)
        # crash: no close(), no checkpoint — everything lives in the WAL
        recovered = self._durable_crowd(tmp_path, demo_oracle)
        assert engine_state(recovered.engine) == expected
        assert (
            recovered.execute(
                "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
            ).rows
            == first
        )
        assert (
            recovered.execute(
                "SELECT name FROM Company WHERE CROWDEQUAL(name, 'IBM')"
            ).rows
            == equal
        )
        assert recovered.crowd_stats["hits_posted"] == 0
        assert recovered.crowd_stats["fill_requests"] == 0
        recovered.close()

    def test_comparison_cache_recovers(self, tmp_path, demo_oracle):
        db = self._durable_crowd(tmp_path, demo_oracle)
        db.task_manager.ledger.record_equal("I.B.M.", "IBM", True)
        db.task_manager.ledger.record_order("best", "a", "b", "left")
        recovered = self._durable_crowd(tmp_path, demo_oracle)
        assert recovered.task_manager._equal_cache[("I.B.M.", "IBM")] is True
        assert (
            recovered.task_manager._order_cache[("best", "a", "b")] == "left"
        )
        recovered.close()

    def test_reputation_recovers_last_write_wins(self, tmp_path, demo_oracle):
        db = self._durable_crowd(tmp_path, demo_oracle)
        db.reputation._observe("w1", True, 2.0)
        db.reputation._observe("w1", False, 1.0)
        accuracy = db.reputation.accuracy("w1")
        recovered = self._durable_crowd(tmp_path, demo_oracle)
        assert recovered.reputation.observations("w1") == 3.0
        assert recovered.reputation.accuracy("w1") == accuracy
        recovered.close()


class TestPlatformRetries:
    def _manager(self, demo_oracle, rate, **config):
        platform = SimulatedAMT(
            demo_oracle, population=40, seed=3, transient_error_rate=rate
        )
        db = connect(
            oracle=demo_oracle,
            platforms=(platform,),
            default_platform="amt",
            crowd_config=CrowdConfig(**config),
        )
        return db, platform

    def test_transient_faults_are_retried(self, demo_oracle):
        db, platform = self._manager(
            demo_oracle, rate=0.9, platform_retries=20,
            platform_retry_backoff=0.0,
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        result = db.execute(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB'"
        )
        assert result.rows  # query survived the faults
        assert db.crowd_stats["platform_retries"] > 0
        retries = db.trace.events(kind="hit.retry")
        assert retries and retries[0].data["attempt"] == 1

    def test_retries_exhausted_raises(self, demo_oracle):
        db, platform = self._manager(
            demo_oracle, rate=1.0, platform_retries=2,
            platform_retry_backoff=0.0,
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        with pytest.raises(TransientPlatformError):
            db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")

    def test_timeout_budget_caps_backoff(self, demo_oracle):
        db, platform = self._manager(
            demo_oracle, rate=1.0, platform_retries=50,
            platform_retry_backoff=0.01, platform_timeout=0.05,
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        with pytest.raises(TransientPlatformError, match="budget|timeout"):
            db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")


class TestLifecycle:
    def test_connection_close_is_idempotent(self, tmp_path):
        db = connect(path=str(tmp_path), with_crowd=False, wal_sync="off")
        db.execute("CREATE TABLE t (a INTEGER)")
        db.close()
        db.close()
        assert db.storage.closed

    def test_in_memory_close_is_noop(self):
        db = connect(with_crowd=False)
        db.close()
        db.close()

    def test_server_close_is_idempotent(self, tmp_path):
        server = serve(path=str(tmp_path), wal_sync="off")
        server.open_session().submit("CREATE TABLE t (a INTEGER)")
        server.run()
        server.close()
        server.close()
        assert not server.sessions
        assert server.connection._closed

    def test_server_context_manager_closes(self, tmp_path):
        with serve(path=str(tmp_path), wal_sync="off") as server:
            server.open_session().submit("CREATE TABLE t (a INTEGER)")
            server.run()
        assert server.connection._closed
        reopened = connect(path=str(tmp_path), with_crowd=False)
        assert reopened.recovery_report.checkpoint_loaded is True
        assert "t" in reopened.engine.table_names()
        reopened.close()

    def test_checkpoint_requires_durable_storage(self):
        db = connect(with_crowd=False)
        with pytest.raises(ExecutionError, match="durable"):
            db.checkpoint()


class TestCliDurability:
    def test_checkpoint_command(self, tmp_path):
        out = io.StringIO()
        shell = cli.Shell(
            connection=connect(path=str(tmp_path), wal_sync="off"),
            stdout=out,
        )
        shell.handle_line("CREATE TABLE t (a INTEGER);")
        shell.handle_line(".checkpoint")
        assert "checkpoint written" in out.getvalue()
        shell.close()

    def test_checkpoint_command_without_db(self):
        out = io.StringIO()
        shell = cli.Shell(connection=connect(), stdout=out)
        shell.handle_line(".checkpoint")
        assert "not a durable instance" in out.getvalue()

    def test_shutdown_handler_flushes_and_exits(self, tmp_path):
        out = io.StringIO()
        connection = connect(path=str(tmp_path), wal_sync="off")
        shell = cli.Shell(connection=connection, stdout=out)
        shell.handle_line("CREATE TABLE t (a INTEGER);")
        with pytest.raises(SystemExit) as excinfo:
            cli.shutdown_handler(shell, signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM
        assert connection._closed
        reopened = connect(path=str(tmp_path), with_crowd=False)
        assert "t" in reopened.engine.table_names()
        reopened.close()

    def test_main_db_flag_persists_scripts(self, tmp_path):
        script = tmp_path / "setup.sql"
        script.write_text("CREATE TABLE t (a INTEGER);\n"
                          "INSERT INTO t VALUES (1);\n")
        db_dir = tmp_path / "db"
        assert cli.main(["--db", str(db_dir), str(script)]) == 0
        reopened = connect(path=str(db_dir), with_crowd=False)
        assert reopened.execute("SELECT * FROM t").rows == [(1,)]
        reopened.close()
