"""Tests for the cost-based optimizer stack (PR5).

Covers the four tentpole layers — histogram statistics + ANALYZE, the
rows/cents/rounds cost model, DPsize join enumeration, and the plan
cache — plus the conjunct-ordering satellite and the staleness guard.
"""

import time
from collections import Counter

import pytest

from repro import connect
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.traces import GroundTruthOracle
from repro.optimizer.cost import PlanCost
from repro.optimizer.optimizer import Optimizer
from repro.plan import logical
from repro.storage.statistics import EquiDepthHistogram


# -- equi-depth histograms -------------------------------------------------------


class TestHistograms:
    def test_bucket_counts_cover_every_row(self):
        counts = Counter({value: 3 for value in range(100)})
        histogram = EquiDepthHistogram.build(counts, buckets=8)
        assert histogram is not None
        assert sum(b.count for b in histogram.buckets) == 300
        assert histogram.low == 0 and histogram.high == 99

    def test_buckets_are_roughly_equi_depth(self):
        counts = Counter({value: 1 for value in range(1000)})
        histogram = EquiDepthHistogram.build(counts, buckets=10)
        depths = [b.count for b in histogram.buckets]
        assert max(depths) <= 2 * min(depths)

    def test_range_selectivity_uniform(self):
        counts = Counter({value: 1 for value in range(1000)})
        histogram = EquiDepthHistogram.build(counts)
        estimate = histogram.range_selectivity(low=0, high=99)
        assert estimate == pytest.approx(0.1, abs=0.05)

    def test_out_of_range_probes(self):
        counts = Counter({value: 1 for value in range(10, 20)})
        histogram = EquiDepthHistogram.build(counts)
        assert histogram.fraction_below(5, inclusive=True) == 0.0
        assert histogram.fraction_below(100, inclusive=True) == 1.0

    def test_mixed_types_yield_no_histogram(self):
        counts = Counter({1: 1, "a": 1})
        assert EquiDepthHistogram.build(counts) is None

    def test_skewed_heavy_hitter(self):
        counts = Counter({1: 900, 2: 50, 3: 50})
        histogram = EquiDepthHistogram.build(counts, buckets=4)
        # the heavy value dominates: almost everything is <= 1
        assert histogram.fraction_below(1, inclusive=True) >= 0.85


# -- ANALYZE + staleness guard ---------------------------------------------------


class TestAnalyze:
    def test_analyze_statement_reports_tables(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(10):
            plain_db.execute("INSERT INTO t VALUES (?, ?)", (i, i % 3))
        result = plain_db.execute("ANALYZE t")
        assert result.columns[0] == "table_name"
        assert result.rows[0][0] == "t"
        assert result.rows[0][1] == 10

    def test_analyze_builds_histograms_and_mcvs(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(200):
            plain_db.engine.insert("t", [i, i % 7])
        plain_db.execute("ANALYZE t")
        stats = plain_db.engine.table("t").statistics
        assert stats.analyzed
        column = stats.column("v")
        assert column.histogram is not None
        assert set(column.mcv) == set(range(7))

    def test_analyze_bumps_epoch(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        before = plain_db.engine.table("t").statistics.epoch
        plain_db.execute("ANALYZE")
        assert plain_db.engine.table("t").statistics.epoch == before + 1

    def test_bulk_load_auto_analyzes(self):
        db = connect(with_crowd=False)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(500):
            db.engine.insert("t", [i, i % 10])
        stats = db.engine.table("t").statistics
        # the staleness guard rebuilt statistics without an explicit ANALYZE
        assert stats.analyzed
        assert stats.column("v").histogram is not None
        assert stats.mutations_since_analyze < 500

    def test_auto_analyze_can_be_disabled(self):
        db = connect(with_crowd=False, auto_analyze_floor=-1)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(500):
            db.engine.insert("t", [i, i % 10])
        stats = db.engine.table("t").statistics
        assert not stats.analyzed
        db.execute("ANALYZE t")  # explicit ANALYZE still works
        assert stats.analyzed

    def test_cli_analyze_command(self, plain_db, capsys=None):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(connection=plain_db, stdout=out)
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        shell.handle_line(".analyze t")
        assert "t" in out.getvalue()
        shell.handle_line(".cache")
        assert "hits" in out.getvalue()


# -- histogram-aware selectivity -------------------------------------------------


class TestSelectivity:
    @pytest.fixture
    def db(self, plain_db):
        plain_db.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s STRING)"
        )
        for i in range(1000):
            plain_db.engine.insert("t", [i, i % 100, f"name{i % 10:02d}"])
        plain_db.execute("ANALYZE t")
        return plain_db

    def estimated(self, db, sql):
        return db.compile(sql).estimated_rows

    def test_range_uses_histogram(self, db):
        estimate = self.estimated(db, "SELECT id FROM t WHERE v < 10")
        assert estimate == pytest.approx(100, rel=0.3)

    def test_equality_uses_exact_frequency(self, db):
        estimate = self.estimated(db, "SELECT id FROM t WHERE v = 5")
        assert estimate == pytest.approx(10, rel=0.01)

    def test_missing_value_estimates_zero(self, db):
        estimate = self.estimated(db, "SELECT id FROM t WHERE v = 12345")
        assert estimate == 0.0

    def test_between_uses_histogram(self, db):
        estimate = self.estimated(
            db, "SELECT id FROM t WHERE v BETWEEN 0 AND 49"
        )
        assert estimate == pytest.approx(500, rel=0.3)

    def test_like_prefix_uses_histogram(self, db):
        estimate = self.estimated(db, "SELECT id FROM t WHERE s LIKE 'name0%'")
        assert estimate == pytest.approx(1000, rel=0.35)
        estimate = self.estimated(db, "SELECT id FROM t WHERE s LIKE 'zzz%'")
        assert estimate <= 250  # nothing starts with zzz

    def test_leading_wildcard_like_uses_mcvs(self, db):
        # every value is an MCV here, so '%me05' resolves exactly to the
        # name05 heavy hitter instead of the 0.25 textbook guess
        estimate = self.estimated(db, "SELECT id FROM t WHERE s LIKE '%me05'")
        assert estimate == pytest.approx(100, rel=0.05)

    def test_in_list_sums_frequencies(self, db):
        estimate = self.estimated(db, "SELECT id FROM t WHERE v IN (1, 2, 3)")
        assert estimate == pytest.approx(30, rel=0.01)

    def test_baseline_keeps_constants(self):
        db = connect(with_crowd=False, cost_based_optimizer=False)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(1000):
            db.engine.insert("t", [i, i % 100])
        db.execute("ANALYZE t")
        estimate = db.compile("SELECT id FROM t WHERE v < 10").estimated_rows
        assert estimate == pytest.approx(300)  # 0.3 textbook constant


# -- the cost model --------------------------------------------------------------


class TestCostModel:
    def test_lexicographic_ordering(self):
        assert PlanCost(cents=1, rounds=0, rows=0) > PlanCost(
            cents=0, rounds=99, rows=10**9
        )
        assert PlanCost(cents=1, rounds=1, rows=0) > PlanCost(
            cents=1, rounds=0, rows=10**9
        )
        assert PlanCost(cents=1, rounds=1, rows=1) < PlanCost(
            cents=1, rounds=1, rows=2
        )

    def test_crowd_plan_costs_cents(self):
        oracle = GroundTruthOracle()
        db = connect(
            oracle=oracle,
            platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
            default_platform="scripted",
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('A'), ('B')")
        compiled = db.compile("SELECT abstract FROM Talk")
        cost = compiled.estimated_cost
        assert cost is not None
        assert cost.cents > 0  # two CNULL abstracts to source

    def test_electronic_plan_costs_no_cents(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        compiled = plain_db.compile("SELECT id FROM t")
        assert compiled.estimated_cost.cents == 0

    def test_explain_shows_per_node_annotations(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.engine.insert("t", [1])
        text = plain_db.explain("SELECT id FROM t")
        assert "~1 rows / ~0c / ~0 rounds" in text
        # every plan node carries the annotation
        plan_lines = [l for l in text.splitlines() if not l.startswith("--")]
        assert all("rows" in line and "rounds" in line for line in plan_lines)


# -- DP join enumeration ---------------------------------------------------------


class TestDPJoinOrdering:
    @pytest.fixture
    def db(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE fact (id INTEGER PRIMARY KEY, a_id INTEGER,
                               b_id INTEGER);
            CREATE TABLE dim_a (id INTEGER PRIMARY KEY, v INTEGER);
            CREATE TABLE dim_b (id INTEGER PRIMARY KEY, w INTEGER);
            """
        )
        for i in range(100):
            plain_db.engine.insert("dim_a", [i, i])
        for i in range(10):
            plain_db.engine.insert("dim_b", [i, i])
        for i in range(2000):
            plain_db.engine.insert("fact", [i, i % 100, i % 10])
        plain_db.execute("ANALYZE")
        return plain_db

    SQL = (
        "SELECT fact.id FROM fact, dim_a, dim_b "
        "WHERE fact.a_id = dim_a.id AND fact.b_id = dim_b.id "
        "AND dim_a.v < 2"
    )

    def test_fact_table_joined_exactly_once(self, db):
        """DP must not drag the 2000-row fact through multiple joins —
        either the filtered dim joins it first, or the dims pre-combine
        (the classic star cross-product) and the fact joins once."""
        plan = db.compile(self.SQL).plan
        joins = [n for n in plan.walk() if isinstance(n, logical.Join)]
        touching_fact = [
            join
            for join in joins
            if any(
                isinstance(n, logical.Scan) and n.table.name == "fact"
                for n in join.walk()
            )
        ]
        assert len(touching_fact) == 1

    def test_plans_are_deterministic(self, db):
        first = db.compile(self.SQL).plan.explain()
        db.executor.plan_cache.clear()
        second = db.compile(self.SQL).plan.explain()
        assert first == second

    def test_dp_result_matches_greedy_result(self, db):
        dp_rows = sorted(db.query(self.SQL))
        db.executor.optimizer = Optimizer(db.engine, cost_based=False)
        greedy_rows = sorted(db.query(self.SQL))
        assert dp_rows == greedy_rows

    def test_crowd_relation_never_leftmost(self, db):
        oracle = GroundTruthOracle()
        crowd_db = connect(
            oracle=oracle,
            platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
            default_platform="scripted",
        )
        crowd_db.executescript(
            """
            CREATE TABLE Talk (title STRING PRIMARY KEY, room STRING);
            CREATE CROWD TABLE Attendee (name STRING PRIMARY KEY,
                                         title STRING);
            CREATE TABLE Room (room STRING PRIMARY KEY, cap INTEGER);
            """
        )
        crowd_db.execute("INSERT INTO Room VALUES ('R1', 5)")
        crowd_db.execute("INSERT INTO Talk VALUES ('T1', 'R1')")
        compiled = crowd_db.compile(
            "SELECT * FROM Attendee a, Talk t, Room r "
            "WHERE a.title = t.title AND t.room = r.room"
        )
        node = compiled.plan
        while node.children():
            node = node.children()[0]
        assert isinstance(node, logical.Scan)
        assert not node.table.crowd

    def test_single_relation_on_conjunct_keeps_crowdjoin(self):
        """A one-sided ON conjunct must not wrap the crowd inner in a
        Filter — that would defeat CrowdJoinRewrite and silently drop
        crowd sourcing (code-review regression)."""
        def build(cost_based):
            oracle = GroundTruthOracle()
            oracle.load_new_tuples(
                "NotableAttendee",
                [{"name": "Ada", "title": "T1", "vip": 1}],
                fixed_columns=("title",),
            )
            db = connect(
                oracle=oracle,
                platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
                default_platform="scripted",
                cost_based_optimizer=cost_based,
            )
            db.executescript(
                """
                CREATE TABLE Talk (title STRING PRIMARY KEY, room STRING);
                CREATE TABLE Room (room STRING PRIMARY KEY, cap INTEGER);
                CREATE CROWD TABLE NotableAttendee (
                    name STRING PRIMARY KEY, title STRING, vip INTEGER);
                """
            )
            db.execute("INSERT INTO Room VALUES ('R1', 5)")
            db.execute("INSERT INTO Talk VALUES ('T1', 'R1')")
            return db

        sql = (
            "SELECT t.title, n.name FROM Talk t "
            "JOIN Room r ON r.room = t.room "
            "JOIN NotableAttendee n ON n.title = t.title AND n.vip = 1 "
            "ORDER BY t.title, n.name"
        )
        dp_db = build(True)
        compiled = dp_db.compile(sql)
        crowd_joins = [
            n for n in compiled.plan.walk() if isinstance(n, logical.CrowdJoin)
        ]
        assert crowd_joins, compiled.plan.explain()
        baseline_db = build(False)
        assert dp_db.query(sql) == baseline_db.query(sql)

    def test_nine_relations_fall_back_to_greedy(self, plain_db):
        for i in range(9):
            plain_db.execute(
                f"CREATE TABLE s{i} (id INTEGER PRIMARY KEY, v INTEGER)"
            )
            plain_db.engine.insert(f"s{i}", [1, 1])
        tables = ", ".join(f"s{i}" for i in range(9))
        joins = " AND ".join(f"s{i}.id = s{i + 1}.v" for i in range(8))
        compiled = plain_db.compile(f"SELECT s0.id FROM {tables} WHERE {joins}")
        assert "join-ordering" in compiled.applied_rules
        rows = plain_db.query(f"SELECT s0.id FROM {tables} WHERE {joins}")
        assert rows == [(1,)]


# -- conjunct ordering -----------------------------------------------------------


def _crowdequal_db(cost_based=True, compile_expressions=True):
    oracle = GroundTruthOracle()
    oracle.declare_same_entity("IBM", "I.B.M.")
    db = connect(
        oracle=oracle,
        platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
        default_platform="scripted",
        cost_based_optimizer=cost_based,
        compile_expressions=compile_expressions,
    )
    db.executescript(
        """
        CREATE TABLE co (id INTEGER PRIMARY KEY, name STRING, size INTEGER);
        CREATE TABLE extra (co_id INTEGER PRIMARY KEY, tag STRING);
        """
    )
    names = ["I.B.M.", "Acme", "Globex", "Initech"]
    for i in range(40):
        db.engine.insert("co", [i, names[i % 4], i])
    for i in range(0, 40, 4):
        db.engine.insert("extra", [i, "keep" if i % 8 == 0 else "drop"])
    db.execute("ANALYZE")
    return db


CROWD_SQL = (
    "SELECT co.id FROM co LEFT JOIN extra ON extra.co_id = co.id "
    "WHERE extra.tag = 'keep' AND CROWDEQUAL(co.name, 'IBM') "
    "ORDER BY co.id"
)


class TestConjunctOrdering:
    def test_crowd_conjunct_ordered_last(self):
        db = _crowdequal_db()
        compiled = db.compile(CROWD_SQL)
        filters = [
            n for n in compiled.plan.walk() if isinstance(n, logical.Filter)
        ]
        top = filters[0].describe()
        assert top.index("tag") < top.index("CROWDEQUAL")

    def test_electronic_prefix_skips_ballots(self):
        ordered = _crowdequal_db(cost_based=True)
        baseline = _crowdequal_db(cost_based=False)
        ordered_rows = ordered.query(CROWD_SQL)
        baseline_rows = baseline.query(CROWD_SQL)
        assert ordered_rows == baseline_rows
        assert (
            ordered.crowd_stats["assignments_received"]
            < baseline.crowd_stats["assignments_received"]
        )

    def test_interpreted_path_matches_compiled(self):
        compiled_db = _crowdequal_db(compile_expressions=True)
        interpreted_db = _crowdequal_db(compile_expressions=False)
        assert compiled_db.query(CROWD_SQL) == interpreted_db.query(CROWD_SQL)
        keys = ("hits_posted", "assignments_received", "compare_requests")
        assert {
            k: compiled_db.crowd_stats[k] for k in keys
        } == {k: interpreted_db.crowd_stats[k] for k in keys}


# -- plan cache ------------------------------------------------------------------


class TestPlanCache:
    def test_repeat_query_skips_parse_and_optimize(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.query("SELECT id FROM t")
        parse_before = dict(plain_db.parse_cache_stats)
        plan_before = dict(plain_db.executor.plan_cache.stats)

        def exploding_optimize(plan):  # pragma: no cover - must not run
            raise AssertionError("optimize() ran on a cached query")

        plain_db.executor.optimizer.optimize = exploding_optimize
        plain_db.query("SELECT id FROM t")
        assert plain_db.parse_cache_stats["hits"] == parse_before["hits"] + 1
        assert (
            plain_db.executor.plan_cache.stats["hits"]
            == plan_before["hits"] + 1
        )

    def test_parameters_share_one_plan(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.engine.insert("t", [1])
        plain_db.engine.insert("t", [2])
        assert plain_db.query("SELECT id FROM t WHERE id = ?", (1,)) == [(1,)]
        before = plain_db.executor.plan_cache.stats["hits"]
        assert plain_db.query("SELECT id FROM t WHERE id = ?", (2,)) == [(2,)]
        assert plain_db.executor.plan_cache.stats["hits"] == before + 1

    def test_ddl_invalidates(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.query("SELECT id FROM t")
        misses = plain_db.executor.plan_cache.stats["misses"]
        plain_db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)")
        plain_db.query("SELECT id FROM t")  # epoch rolled: must recompile
        assert plain_db.executor.plan_cache.stats["misses"] == misses + 1

    def test_analyze_invalidates(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.query("SELECT id FROM t")
        misses = plain_db.executor.plan_cache.stats["misses"]
        plain_db.execute("ANALYZE t")
        plain_db.query("SELECT id FROM t")
        assert plain_db.executor.plan_cache.stats["misses"] == misses + 1

    def test_cache_hit_still_warns_on_unbounded_queries(self):
        import warnings as warnings_module

        from repro.errors import UnboundedQueryWarning

        db = connect(with_crowd=False)
        db.execute("CREATE CROWD TABLE c (k STRING PRIMARY KEY, v STRING)")
        with pytest.warns(UnboundedQueryWarning):
            db.query("SELECT k FROM c")
        with pytest.warns(UnboundedQueryWarning):
            db.query("SELECT k FROM c")  # cache hit must re-warn
        assert db.executor.plan_cache.stats["hits"] >= 1

    def test_swapped_optimizer_misses(self, plain_db):
        plain_db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        plain_db.query("SELECT id FROM t")
        misses = plain_db.executor.plan_cache.stats["misses"]
        plain_db.executor.optimizer = Optimizer(plain_db.engine, cost_based=False)
        plain_db.query("SELECT id FROM t")
        assert plain_db.executor.plan_cache.stats["misses"] == misses + 1

    def test_cache_disabled_with_zero_size(self):
        db = connect(with_crowd=False, plan_cache_size=0)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.query("SELECT id FROM t")
        db.query("SELECT id FROM t")
        assert db.executor.plan_cache.stats["hits"] == 0

    def test_correlated_subquery_reuses_plan(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE outerT (id INTEGER PRIMARY KEY);
            CREATE TABLE innerT (id INTEGER PRIMARY KEY, o_id INTEGER);
            """
        )
        for i in range(20):
            plain_db.engine.insert("outerT", [i])
            plain_db.engine.insert("innerT", [i, i])
        rows = plain_db.query(
            "SELECT id FROM outerT o WHERE EXISTS "
            "(SELECT 1 FROM innerT i WHERE i.o_id = o.id)"
        )
        assert len(rows) == 20
        # 20 outer rows compiled the same subquery: 19+ cache hits
        assert plain_db.executor.plan_cache.stats["hits"] >= 19

    def test_server_sessions_share_the_cache(self):
        from repro import serve

        server = serve(with_crowd=False)
        server.connection.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY)"
        )
        s1 = server.open_session()
        s2 = server.open_session()
        s1.submit("SELECT id FROM t")
        s2.submit("SELECT id FROM t")
        server.run()
        stats = server.connection.executor.plan_cache.stats
        assert stats["hits"] >= 1  # second session reused the first's plan


# -- planning-time budget --------------------------------------------------------


def test_eight_relation_planning_budget(plain_db):
    for index in range(8):
        plain_db.execute(
            f"CREATE TABLE p{index} (id INTEGER PRIMARY KEY, v INTEGER)"
        )
        for row in range(20):
            plain_db.engine.insert(f"p{index}", [row, row % 5])
    plain_db.execute("ANALYZE")
    tables = ", ".join(f"p{i}" for i in range(8))
    joins = " AND ".join(f"p{i}.id = p{i + 1}.v" for i in range(7))
    sql = f"SELECT p0.id FROM {tables} WHERE {joins}"
    plain_db.compile(sql)  # warm imports/caches
    start = time.perf_counter()
    plain_db.compile(f"{sql} AND p0.v = 1")
    assert time.perf_counter() - start < 0.050
