"""Tests for engine features beyond the core paper path: index-scan
access-path selection, WRM-gated worker eligibility, and failure modes."""

import pytest

from repro import CrowdConfig, connect
from repro.crowd.model import HIT, FillTask
from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.wrm import WorkerRelationshipManager
from repro.engine.scans import IndexLookup


class TestIndexScanSelection:
    @pytest.fixture
    def db(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE t (k STRING PRIMARY KEY, v INTEGER);
            INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3), ('d', 4);
            """
        )
        return plain_db

    def test_pk_equality_uses_index(self, db):
        result = db.execute("SELECT v FROM t WHERE k = 'c'")
        assert result.rows == [(3,)]
        # an index lookup touches exactly one row, a scan touches four
        assert result.crowd_stats["rows_scanned"] == 1

    def test_residual_predicate_still_applied(self, db):
        result = db.execute("SELECT v FROM t WHERE k = 'c' AND v > 5")
        assert result.rows == []

    def test_reversed_orientation(self, db):
        result = db.execute("SELECT v FROM t WHERE 'b' = k")
        assert result.rows == [(2,)]
        assert result.crowd_stats["rows_scanned"] == 1

    def test_non_indexed_column_scans(self, db):
        result = db.execute("SELECT k FROM t WHERE v = 2")
        assert result.rows == [("b",)]
        assert result.crowd_stats["rows_scanned"] == 4

    def test_secondary_index_used_after_create(self, db):
        db.execute("CREATE INDEX by_v ON t (v)")
        result = db.execute("SELECT k FROM t WHERE v = 2")
        assert result.rows == [("b",)]
        assert result.crowd_stats["rows_scanned"] == 1

    def test_null_equality_returns_nothing(self, db):
        result = db.execute("SELECT k FROM t WHERE k = NULL")
        assert result.rows == []

    def test_composite_index_matched_by_conjunct_set(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE pair (a INTEGER, b INTEGER, v STRING);
            INSERT INTO pair VALUES (1, 1, 'x'), (1, 2, 'y'), (2, 1, 'z'),
                (2, 2, 'w');
            CREATE INDEX pair_ab ON pair (a, b);
            """
        )
        result = plain_db.execute(
            "SELECT v FROM pair WHERE a = 2 AND b = 1"
        )
        assert result.rows == [("z",)]
        # the composite index serves both conjuncts: one row touched
        assert result.crowd_stats["rows_scanned"] == 1

    def test_composite_index_matches_reordered_conjuncts(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE pair (a INTEGER, b INTEGER, v STRING);
            INSERT INTO pair VALUES (1, 1, 'x'), (1, 2, 'y');
            CREATE INDEX pair_ab ON pair (a, b);
            """
        )
        result = plain_db.execute(
            "SELECT v FROM pair WHERE b = 2 AND a = 1"
        )
        assert result.rows == [("y",)]
        assert result.crowd_stats["rows_scanned"] == 1

    def test_ordered_index_prefix_serves_partial_equality(self, plain_db):
        plain_db.execute(
            "CREATE TABLE pair (a INTEGER, b INTEGER, v STRING)"
        )
        for a in range(4):
            for b in range(4):
                plain_db.execute(
                    f"INSERT INTO pair VALUES ({a}, {b}, 'v{a}{b}')"
                )
        heap = plain_db.engine.table("pair")
        heap.create_index("pair_ab_ordered", ("a", "b"), ordered=True)
        result = plain_db.execute("SELECT v FROM pair WHERE a = 2")
        assert sorted(result.rows) == [("v20",), ("v21",), ("v22",), ("v23",)]
        # the ordered index's (a) prefix bounds the touched rows to 4 of 16
        assert result.crowd_stats["rows_scanned"] == 4

    def test_partial_match_on_hash_index_still_scans(self, plain_db):
        plain_db.executescript(
            """
            CREATE TABLE pair (a INTEGER, b INTEGER, v STRING);
            INSERT INTO pair VALUES (1, 1, 'x'), (1, 2, 'y'), (2, 1, 'z');
            CREATE INDEX pair_ab ON pair (a, b);
            """
        )
        # hash indexes need the whole key; a = 1 alone cannot use pair_ab
        result = plain_db.execute("SELECT v FROM pair WHERE a = 1")
        assert sorted(result.rows) == [("x",), ("y",)]
        assert result.crowd_stats["rows_scanned"] == 3

    def test_crowd_scan_with_limit_hint_not_indexed(self, plain_db):
        # open-world sourcing must keep the TableScan path
        plain_db.execute(
            "CREATE CROWD TABLE c (k STRING PRIMARY KEY, v STRING)"
        )
        result = plain_db.execute("SELECT k FROM c LIMIT 2")
        assert result.rows == []  # no crowd attached: closed world


class TestWRMEligibility:
    def make_platform(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("t", ("k",), {"v": "answer"})
        wrm = WorkerRelationshipManager()
        platform = SimulatedAMT(oracle, population=20, seed=6, wrm=wrm)
        return platform, wrm

    def test_blocked_workers_are_ineligible(self):
        platform, wrm = self.make_platform()
        for worker in platform.workers:
            wrm.block(worker.worker_id)
        hit = HIT(
            task=FillTask("t", ("k",), ("v",), {}),
            reward_cents=2,
            assignments_requested=1,
        )
        platform.post_hit(hit)
        done = platform.wait_for_hits([hit.hit_id], timeout=6 * 3600)
        assert not done and len(hit.assignments) == 0

    def test_unblocked_workers_still_work(self):
        platform, wrm = self.make_platform()
        wrm.block(platform.workers[0].worker_id)  # block just one
        hit = HIT(
            task=FillTask("t", ("k",), ("v",), {}),
            reward_cents=2,
            assignments_requested=2,
        )
        platform.post_hit(hit)
        assert platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        workers = {a.worker_id for a in hit.assignments}
        assert platform.workers[0].worker_id not in workers

    def test_qualification_gate(self):
        platform, wrm = self.make_platform()
        platform.min_approval_rate = 0.9
        bad = platform.workers[0]
        account = wrm.account(bad.worker_id)
        account.submitted = 10
        account.approved = 1
        account.rejected = 9
        hit = HIT(
            task=FillTask("t", ("k",), ("v",), {}),
            reward_cents=2,
            assignments_requested=1,
        )
        platform.post_hit(hit)
        assert not platform.eligible(bad, hit)
        good = platform.workers[1]
        assert platform.eligible(good, hit)

    def test_connect_wires_wrm_into_platforms(self, demo_oracle):
        db = connect(oracle=demo_oracle, seed=4)
        assert db.platforms.get("amt").wrm is db.wrm
        assert db.platforms.get("mobile").wrm is db.wrm


class TestFailureModes:
    def test_timeout_returns_null_and_counts(self, demo_oracle):
        from repro.crowd.scripted import ScriptedPlatform
        from repro.sqltypes import NULL

        silent = ScriptedPlatform(lambda task, replica: None)
        db = connect(
            oracle=demo_oracle,
            platforms=(silent,),
            default_platform="scripted",
            crowd_config=CrowdConfig(timeout_seconds=10.0),
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('X')")
        result = db.execute("SELECT abstract FROM Talk WHERE title = 'X'")
        assert result.rows == [(NULL,)]
        assert db.crowd_stats["timeouts"] == 1

    def test_partial_worker_participation(self, demo_oracle):
        from repro.crowd.scripted import ScriptedPlatform

        # only the first replica answers; majority vote still works on 1
        def sometimes(task, replica):
            if replica > 0:
                return None
            return {"abstract": "only one answer"}

        db = connect(
            oracle=demo_oracle,
            platforms=(ScriptedPlatform(sometimes),),
            default_platform="scripted",
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('X')")
        result = db.execute("SELECT abstract FROM Talk WHERE title = 'X'")
        assert result.rows == [("only one answer",)]

    def test_budget_error_propagates_from_query(self, demo_oracle):
        from repro.errors import BudgetExceededError

        db = connect(
            oracle=demo_oracle,
            seed=8,
            crowd_config=CrowdConfig(budget_cents=0),
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('X')")
        with pytest.raises(BudgetExceededError):
            db.execute("SELECT abstract FROM Talk WHERE title = 'X'")
