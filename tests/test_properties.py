"""Property-based tests (hypothesis) on core invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import connect
from repro.catalog.ddl import build_table_schema
from repro.crowd.quality import Ballot, MajorityVote, normalize_answer
from repro.crowd.reputation import ReputationStore
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.traces import GroundTruthOracle
from repro.sql.parser import parse
from repro.sqltypes import NULL
from repro.storage.heap import HeapTable

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- storage invariants ----------------------------------------------------------

_row_values = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.text(max_size=12),
    st.integers(min_value=-100, max_value=100),
)


def make_heap():
    schema = build_table_schema(
        parse("CREATE TABLE t (k INTEGER PRIMARY KEY, s STRING, n INTEGER)")
    )
    return HeapTable(schema)


@given(st.lists(_row_values, max_size=60))
@SETTINGS
def test_heap_insert_scan_consistency(rows):
    """Whatever is inserted (with unique keys) comes back from a scan,
    and the PK index agrees with the heap on every key."""
    heap = make_heap()
    inserted = {}
    for values in rows:
        if values[0] in inserted:
            continue
        heap.insert(values)
        inserted[values[0]] = values
    scanned = {row.values[0]: row.values for row in heap.scan()}
    assert scanned == inserted
    for key, values in inserted.items():
        found = heap.lookup_primary_key((key,))
        assert found is not None and found.values == values
    assert heap.statistics.row_count == len(inserted)


@given(
    st.lists(_row_values, min_size=1, max_size=40),
    st.data(),
)
@SETTINGS
def test_heap_delete_removes_everything(rows, data):
    """After deleting a random subset, scan/index/stats all agree."""
    heap = make_heap()
    stored = {}
    for values in rows:
        if values[0] in stored:
            continue
        row = heap.insert(values)
        stored[values[0]] = row.rowid
    keys = sorted(stored)
    to_delete = data.draw(st.sets(st.sampled_from(keys)) if keys else st.just(set()))
    for key in to_delete:
        heap.delete(stored[key])
    remaining = {row.values[0] for row in heap.scan()}
    assert remaining == set(keys) - set(to_delete)
    for key in to_delete:
        assert heap.lookup_primary_key((key,)) is None
    assert heap.statistics.row_count == len(remaining)


# -- majority vote invariants --------------------------------------------------------

_ballot = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=6,
)


@given(st.lists(_ballot, min_size=1, max_size=25))
@SETTINGS
def test_majority_vote_winner_is_plurality(ballots):
    """The winner's class has at least as many votes as any other class,
    and agreement = votes/total is in (0, 1]."""
    result = MajorityVote(min_agreement=0.0).vote(ballots)
    counts = {}
    for ballot in ballots:
        counts[normalize_answer(ballot)] = counts.get(normalize_answer(ballot), 0) + 1
    assert result.votes == max(counts.values())
    assert result.total == len(ballots)
    assert 0 < result.agreement <= 1
    assert normalize_answer(result.value) in counts


@given(st.lists(_ballot, min_size=1, max_size=25))
@SETTINGS
def test_majority_vote_is_order_insensitive_on_strict_majority(ballots):
    """When one class holds a strict majority, any permutation of the
    ballots elects the same class."""
    result = MajorityVote(min_agreement=0.0).vote(ballots)
    if result.agreement <= 0.5:
        return
    reversed_result = MajorityVote(min_agreement=0.0).vote(list(reversed(ballots)))
    assert normalize_answer(reversed_result.value) == normalize_answer(result.value)


@given(st.lists(st.booleans(), min_size=1, max_size=15))
@SETTINGS
def test_boolean_vote_matches_counting(ballots):
    result = MajorityVote(min_agreement=0.0).vote_boolean(ballots)
    true_votes = sum(ballots)
    false_votes = len(ballots) - true_votes
    if true_votes > false_votes:
        assert result.value is True
    elif false_votes > true_votes:
        assert result.value is False


# -- weighted consensus invariants ----------------------------------------------------

_worker_ids = st.sampled_from(["w1", "w2", "w3", "w4", "w5"])
_weighted_ballots = st.lists(
    st.tuples(_ballot, _worker_ids), min_size=1, max_size=20
)


def _weighted_store() -> ReputationStore:
    """Distinct, pinned accuracies per worker id."""
    store = ReputationStore(prior_strength=0.001)
    for index, worker in enumerate(["w1", "w2", "w3", "w4", "w5"]):
        accuracy = 0.25 + 0.15 * index  # 0.25 .. 0.85
        store._observe(worker, True, weight=500.0 * accuracy)
        store._observe(worker, False, weight=500.0 * (1.0 - accuracy))
    return store


@given(_weighted_ballots)
@SETTINGS
def test_weighted_vote_is_permutation_invariant(pairs):
    """Any permutation of the ballots elects the same class, the same
    representative, and the same confidence (the deterministic
    lexicographic tie-break makes this hold even on exact ties)."""
    store = _weighted_store()
    voter = MajorityVote(min_agreement=0.0, reputation=store)
    ballots = [Ballot(value, worker) for value, worker in pairs]
    forward = voter.vote_ballots(ballots, quiet=True)
    backward = voter.vote_ballots(list(reversed(ballots)), quiet=True)
    assert forward.value == backward.value
    assert forward.confidence == pytest.approx(backward.confidence)
    assert forward.votes == backward.votes


@given(_ballot, st.integers(min_value=1, max_value=12))
@SETTINGS
def test_unanimous_ballots_always_reach_target_confidence(value, count):
    """A unanimous ballot set is a settled verdict at any replication:
    its confidence is 1.0, so it meets every target_confidence <= 1."""
    voter = MajorityVote(min_agreement=0.0, reputation=_weighted_store())
    workers = ["w1", "w2", "w3", "w4", "w5"]
    ballots = [Ballot(value, workers[i % 5]) for i in range(count)]
    assert voter.vote_ballots(ballots, quiet=True).confidence == 1.0


@given(st.lists(_ballot, min_size=2, max_size=6, unique=True))
@SETTINGS
def test_tie_handling_is_deterministic(values):
    """One ballot per distinct class is an all-way tie; every arrival
    order elects the lexicographically smallest class."""
    # keep one raw value per normalized class so the vote is a true tie
    by_class = {}
    for value in values:
        by_class.setdefault(normalize_answer(value), value)
    values = list(by_class.values())
    voter = MajorityVote(min_agreement=0.0)
    results = {
        voter.vote(list(ordering), quiet=True).value
        for ordering in (values, list(reversed(values)), sorted(values))
    }
    assert len(results) == 1
    # and the winner is minimal among the normalized classes
    winner = normalize_answer(results.pop())
    assert winner == min(
        by_class, key=lambda key: (type(key).__name__, repr(key))
    )


# -- crowd sort invariants --------------------------------------------------------------

@given(
    st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=12, unique=True
    ),
    st.integers(min_value=1, max_value=12),
)
@SETTINGS
def test_crowd_sort_is_a_correct_permutation(scores, k):
    """With a perfect crowd, CROWDORDER ... LIMIT k returns exactly the
    top-k items by ground-truth score, in order."""
    oracle = GroundTruthOracle()
    items = {f"item{score:02d}": float(score) for score in scores}
    oracle.load_ranking("best?", items)
    db = connect(
        oracle=oracle,
        platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
        default_platform="scripted",
    )
    db.execute("CREATE TABLE items (name STRING PRIMARY KEY)")
    for name in items:
        db.execute(f"INSERT INTO items VALUES ('{name}')")
    rows = db.query(
        f"SELECT name FROM items ORDER BY CROWDORDER(name, 'best?') LIMIT {k}"
    )
    expected = sorted(items, key=lambda n: -items[n])[:k]
    assert [row[0] for row in rows] == expected


# -- optimizer equivalence ---------------------------------------------------------------

_FILTERS = st.sampled_from(
    [
        "",
        "WHERE n > 50",
        "WHERE s = 'alpha'",
        "WHERE n BETWEEN 10 AND 90 AND s <> 'beta'",
        "WHERE s IN ('alpha', 'gamma') OR n < 25",
        "WHERE s LIKE 'a%'",
    ]
)
_ORDERS = st.sampled_from(["", "ORDER BY n DESC", "ORDER BY s, n"])
_LIMITS = st.sampled_from(["", "LIMIT 3", "LIMIT 2 OFFSET 1"])


@given(_FILTERS, _ORDERS, _LIMITS)
@SETTINGS
def test_optimizer_preserves_results(filter_sql, order_sql, limit_sql):
    """The optimized plan returns the same rows as a plan compiled with
    every rewrite rule disabled (modulo order when no ORDER BY)."""
    from repro.optimizer.optimizer import Optimizer

    db = connect(with_crowd=False)
    db.executescript(
        """
        CREATE TABLE t (k INTEGER PRIMARY KEY, s STRING, n INTEGER);
        INSERT INTO t VALUES
            (1, 'alpha', 10), (2, 'beta', 95), (3, 'gamma', 40),
            (4, 'alpha', 60), (5, 'delta', 25), (6, 'alpha', 80);
        """
    )
    sql = f"SELECT s, n FROM t {filter_sql} {order_sql} {limit_sql}"
    optimized_rows = db.query(sql)
    db.executor.optimizer = Optimizer(db.engine, enable_rules=set())
    naive_rows = db.query(sql)
    if order_sql:
        if limit_sql:
            # deterministic prefix only when the sort key is unique enough;
            # compare as multisets of the same length instead
            assert len(optimized_rows) == len(naive_rows)
            assert sorted(optimized_rows) == sorted(naive_rows)
        else:
            assert optimized_rows == naive_rows
    elif limit_sql:
        assert len(optimized_rows) == len(naive_rows)
    else:
        assert sorted(optimized_rows) == sorted(naive_rows)


# -- answer normalization ------------------------------------------------------------------

@given(_ballot)
@SETTINGS
def test_normalize_is_idempotent(text):
    once = normalize_answer(text)
    assert normalize_answer(once) == once


@given(_ballot)
@SETTINGS
def test_normalize_ignores_surrounding_noise(text):
    noisy = f"  {text.upper()}  "
    assert normalize_answer(noisy) == normalize_answer(text)


# -- DP join enumeration differential properties ---------------------------------
#
# For random join graphs, the DP-chosen plan must be a pure re-bracketing:
# byte-identical results (same rows, same order under a total ORDER BY)
# and identical crowd-call sequences vs the forced canonical (FROM-order)
# plan with join ordering disabled.

_CANONICAL_RULES = {"predicate-pushdown", "stopafter-pushdown",
                    "conjunct-ordering", "crowdjoin-rewrite"}


def _canonical(db):
    """Force the builder's FROM-order join tree (no join-ordering rule)."""
    from repro.optimizer.optimizer import Optimizer

    db.executor.optimizer = Optimizer(
        db.engine, enable_rules=set(_CANONICAL_RULES)
    )
    return db


@st.composite
def _join_graphs(draw):
    tables = draw(st.integers(min_value=3, max_value=5))
    sizes = [draw(st.integers(min_value=2, max_value=7)) for _ in range(tables)]
    keys = [
        [draw(st.integers(min_value=0, max_value=4)) for _ in range(size)]
        for size in sizes
    ]
    with_filter = draw(st.booleans())
    return tables, keys, with_filter


def _load_join_graph(db, tables, keys):
    for index in range(tables):
        db.execute(
            f"CREATE TABLE g{index} (id INTEGER PRIMARY KEY, k INTEGER)"
        )
        for row, key in enumerate(keys[index]):
            db.engine.insert(f"g{index}", [row, key])
    db.execute("ANALYZE")


def _join_graph_sql(tables, with_filter):
    froms = ", ".join(f"g{i}" for i in range(tables))
    conds = " AND ".join(
        f"g{i}.k = g{i + 1}.id" for i in range(tables - 1)
    )
    if with_filter:
        conds += " AND g0.k < 3"
    columns = ", ".join(f"g{i}.id" for i in range(tables))
    order = ", ".join(str(i + 1) for i in range(tables))
    return f"SELECT {columns} FROM {froms} WHERE {conds} ORDER BY {order}"


@SETTINGS
@given(_join_graphs())
def test_dp_plans_are_byte_identical_to_canonical_order(graph):
    tables, keys, with_filter = graph
    sql = _join_graph_sql(tables, with_filter)
    dp_db = connect(with_crowd=False)
    _load_join_graph(dp_db, tables, keys)
    canonical_db = _canonical(connect(with_crowd=False))
    _load_join_graph(canonical_db, tables, keys)
    dp_rows = dp_db.query(sql)
    canonical_rows = canonical_db.query(sql)
    assert repr(dp_rows) == repr(canonical_rows)


def _crowd_calls(db):
    """Every comparison ballot the scripted platform saw, normalized."""
    platform = db.platforms.get("scripted")
    calls = []
    for task in platform.posted_tasks:
        left = getattr(task, "left", None)
        right = getattr(task, "right", None)
        if left is None and right is None:
            continue
        calls.append(
            tuple(sorted([normalize_answer(left), normalize_answer(right)]))
        )
    return calls


def _crowd_graph_db(keys):
    oracle = GroundTruthOracle()
    oracle.declare_same_entity("IBM", "I.B.M.", "ibm corp")
    db = connect(
        oracle=oracle,
        platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
        default_platform="scripted",
    )
    db.executescript(
        """
        CREATE TABLE co (id INTEGER PRIMARY KEY, name STRING, k INTEGER);
        CREATE TABLE dept (id INTEGER PRIMARY KEY, label STRING);
        """
    )
    names = ["I.B.M.", "ibm corp", "Acme", "Globex"]
    for row, key in enumerate(keys):
        db.engine.insert("co", [row, names[row % 4], key])
    for row in range(5):
        db.engine.insert("dept", [row, f"d{row}"])
    db.execute("ANALYZE")
    return db


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=12))
def test_dp_crowd_call_sequences_match_canonical_order(keys):
    sql = (
        "SELECT co.id FROM co, dept WHERE co.k = dept.id "
        "AND CROWDEQUAL(co.name, 'IBM') ORDER BY co.id"
    )
    dp_db = _crowd_graph_db(keys)
    canonical_db = _canonical(_crowd_graph_db(keys))
    dp_rows = dp_db.query(sql)
    canonical_rows = canonical_db.query(sql)
    assert repr(dp_rows) == repr(canonical_rows)
    # the set of ballots (and how often each was posted) must be
    # identical; the within-window order may differ with the bracketing
    assert sorted(_crowd_calls(dp_db)) == sorted(_crowd_calls(canonical_db))


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=12))
def test_single_table_crowd_sequence_is_exactly_identical(keys):
    """Without joins to re-bracket, the ballot *sequence* — not just the
    multiset — must survive cost-based optimization untouched."""
    sql = (
        "SELECT id FROM co WHERE k < 3 AND CROWDEQUAL(name, 'IBM') "
        "ORDER BY id"
    )
    dp_db = _crowd_graph_db(keys)
    canonical_db = _canonical(_crowd_graph_db(keys))
    assert repr(dp_db.query(sql)) == repr(canonical_db.query(sql))
    assert _crowd_calls(dp_db) == _crowd_calls(canonical_db)
