"""Differential tests: columnar vectorized execution vs the row engine.

Every statement of the corpus runs through both ``vectorized=True`` and
``vectorized=False`` connections (both compiled — the E14 engine is the
baseline) over identical data, and the ResultSets must be
``repr``-identical: value *types* matter (1 vs 1.0 vs True, leaked
ndarray scalars), not just equality.  Crowd-touching plans must issue
the exact same HIT sequence, because vector regions are pure-electronic
by construction and the batch→row cap must leave crowd batching windows
untouched.
"""

from __future__ import annotations

import pytest

from repro import connect
from repro.crowd.model import reset_id_counters
from repro.crowd.sim.traces import GroundTruthOracle
from repro.exec.vector import ColumnBatch
from repro.exec.vectorized import (
    _pivot_columns,
    referenced_positions,
)
from repro.sql.parser import Parser
from repro.sqltypes import NULL
from repro.storage.row import Scope


def expr_of(sql_fragment):
    stmt = Parser(f"SELECT {sql_fragment}").parse_statement()
    return stmt.items[0].expression


SCRIPT = """
    CREATE TABLE emp (
        id INTEGER PRIMARY KEY,
        name STRING,
        dept STRING,
        salary FLOAT,
        bonus FLOAT,
        level INTEGER
    );
    CREATE TABLE dept (name STRING PRIMARY KEY, region STRING, floor INTEGER);
    INSERT INTO dept VALUES ('eng', 'west', 3), ('ops', 'east', 1),
        ('sales', 'west', 2), ('legal', 'north', NULL);
    INSERT INTO emp VALUES
        (1, 'ada', 'eng', 120.0, 10.0, 3),
        (2, 'bob', 'ops', 80.0, NULL, 1),
        (3, 'cyd', 'eng', 95.5, 2.5, 2),
        (4, 'dee', 'sales', 70.0, 0.0, 1),
        (5, 'eli', 'ops', NULL, 1.0, 2),
        (6, 'fay', 'sales', 88.25, NULL, NULL),
        (7, 'gus', 'ghost', 55.0, 3.0, 1),
        (8, 'hal', NULL, 60.0, 4.0, 2);
"""

#: Statements chosen to drive every vectorized operator and its unclean
#: fallbacks: tagged/untagged filters, prefix/contains/exact LIKE,
#: BETWEEN/IN/arith conjuncts, inner/LEFT/multi-key/residual joins,
#: duplicate build keys, global and grouped aggregates over NULLs,
#: DISTINCT aggregates, NULL group keys, and pruning-heavy projections.
QUERIES = [
    "SELECT * FROM emp",
    "SELECT name FROM emp WHERE salary > 75",
    "SELECT name FROM emp WHERE salary BETWEEN 60 AND 100",
    "SELECT name FROM emp WHERE dept LIKE 'e%'",
    "SELECT name FROM emp WHERE dept LIKE '%al%'",
    "SELECT name FROM emp WHERE dept LIKE 'ops'",
    "SELECT name FROM emp WHERE dept LIKE '%s'",
    "SELECT name FROM emp WHERE dept IN ('eng', 'sales')",
    "SELECT name FROM emp WHERE salary * 1.1 < 100 AND level >= 1",
    "SELECT name FROM emp WHERE NOT salary > 80",
    "SELECT name FROM emp WHERE salary IS NULL OR bonus IS NULL",
    "SELECT name, salary + bonus FROM emp",
    "SELECT name, salary * 2, -salary, salary / 3 FROM emp",
    "SELECT e.name, d.region FROM emp e JOIN dept d ON e.dept = d.name",
    "SELECT e.name, d.region FROM emp e LEFT JOIN dept d ON e.dept = d.name",
    "SELECT e.name, d.region FROM emp e JOIN dept d ON e.dept = d.name "
    "AND e.level > d.floor",
    "SELECT e.name, d.name FROM emp e JOIN dept d "
    "ON e.dept = d.name AND e.level = d.floor",
    "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name "
    "WHERE d.region = 'west' AND e.salary > 70",
    "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) "
    "FROM emp",
    "SELECT COUNT(salary), COUNT(bonus) FROM emp",
    "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept",
    "SELECT dept, AVG(salary * (1 + level * 0.1)) FROM emp GROUP BY dept",
    "SELECT dept, COUNT(DISTINCT level) FROM emp GROUP BY dept",
    "SELECT level, COUNT(*) FROM emp GROUP BY level",
    "SELECT d.region, COUNT(*), SUM(e.salary) FROM emp e "
    "JOIN dept d ON e.dept = d.name GROUP BY d.region "
    "ORDER BY SUM(e.salary) DESC",
    "SELECT d.region, MAX(e.salary - e.level * 2.5) FROM emp e "
    "JOIN dept d ON e.dept = d.name "
    "WHERE e.salary BETWEEN 20 AND 450 AND e.dept LIKE '%s' "
    "GROUP BY d.region",
    "SELECT name, salary FROM emp ORDER BY salary LIMIT 3",
    "SELECT DISTINCT dept FROM emp WHERE salary IS NOT NULL",
    "SELECT name FROM emp WHERE dept IN "
    "(SELECT name FROM dept WHERE region = 'west')",
]


def run_all(vectorized, script=SCRIPT, queries=QUERIES):
    db = connect(with_crowd=False, vectorized=vectorized)
    db.executescript(script)
    return [
        (result.columns, result.rows)
        for result in (db.execute(q) for q in queries)
    ]


class TestDifferentialStatements:
    def test_vectorized_matches_row_engine(self):
        vector = run_all(True)
        row = run_all(False)
        for query, got, want in zip(QUERIES, vector, row):
            assert got == want, query
            assert repr(got) == repr(want), query

    def test_nan_parity(self):
        # NaN breaks min/max and comparison fast paths unless the
        # kernels reproduce compare_values semantics exactly
        script = """
            CREATE TABLE t (i INTEGER PRIMARY KEY, x FLOAT);
        """
        queries = [
            "SELECT i FROM t WHERE x > 2",
            "SELECT i FROM t WHERE x BETWEEN 1 AND 3",
            "SELECT MIN(x), MAX(x), SUM(x), COUNT(x) FROM t",
            "SELECT i FROM t ORDER BY x",
        ]

        def run(vectorized):
            db = connect(with_crowd=False, vectorized=vectorized)
            db.executescript(script)
            for i, x in enumerate([2.5, float("nan"), 1.5, float("nan")]):
                db.engine.insert("t", [i, x])
            return [db.execute(q).rows for q in queries]

        assert repr(run(True)) == repr(run(False))

    def test_empty_tables(self):
        script = """
            CREATE TABLE a (x INTEGER PRIMARY KEY);
            CREATE TABLE b (y INTEGER PRIMARY KEY);
        """
        queries = [
            "SELECT * FROM a",
            "SELECT * FROM a JOIN b ON a.x = b.y",
            "SELECT COUNT(*), SUM(x) FROM a",
            "SELECT x, COUNT(*) FROM a GROUP BY x",
        ]
        assert run_all(True, script, queries) == run_all(False, script, queries)

    def test_result_value_types_are_plain_python(self):
        # ndarray lanes must never leak np scalars into results
        db = connect(with_crowd=False, vectorized=True)
        db.executescript(SCRIPT)
        rows = db.execute(
            "SELECT dept, SUM(salary), AVG(salary * 1.1) FROM emp "
            "WHERE salary > 10 GROUP BY dept"
        ).rows
        for row in rows:
            for value in row:
                assert value is NULL or type(value) in (
                    str, int, float
                ), repr(value)


class TestCrowdParity:
    """Vector regions stop at the crowd boundary: crowd plans must make
    bit-identical progress (same rows, same HITs) under both engines."""

    def _run(self, vectorized):
        reset_id_counters()
        oracle = GroundTruthOracle()
        for i in range(8):
            oracle.load_fill(
                "City", (f"city{i}",), {"population": 1000 + i}
            )
        db = connect(oracle=oracle, seed=11, vectorized=vectorized)
        db.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER)"
        )
        for i in range(8):
            db.execute("INSERT INTO City (name) VALUES (?)", (f"city{i}",))
        result = db.execute(
            "SELECT name, population FROM City WHERE population > 1003 "
            "ORDER BY population"
        )
        return result.rows, dict(db.crowd_stats)

    def test_same_rows_and_same_crowd_work(self):
        vector_rows, vector_stats = self._run(True)
        row_rows, row_stats = self._run(False)
        assert repr(vector_rows) == repr(row_rows)
        assert vector_stats["hits_posted"] == row_stats["hits_posted"]
        assert (
            vector_stats["assignments_received"]
            == row_stats["assignments_received"]
        )
        assert vector_stats["cost_cents"] == row_stats["cost_cents"]


class TestScanSnapshotConsistency:
    """``HeapTable.scan_columns`` hands out immutable snapshots keyed by
    table version — writes must never mutate a batch already emitted."""

    def test_handed_out_columns_survive_writes(self):
        db = connect(with_crowd=False, vectorized=True)
        db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY, y STRING)")
        db.engine.insert("t", [1, "a"])
        db.engine.insert("t", [2, "b"])
        heap = db.engine.table("t")
        columns, count = heap.scan_columns()
        snapshot = [list(column) for column in columns]
        assert count == 2
        db.execute("INSERT INTO t VALUES (3, 'c')")
        db.execute("UPDATE t SET y = 'z' WHERE x = 1")
        db.execute("DELETE FROM t WHERE x = 2")
        # the lists handed out before the writes are frozen
        assert [list(column) for column in columns] == snapshot
        # and a fresh scan sees the new version, not the stale cache
        fresh, fresh_count = heap.scan_columns()
        assert fresh_count == 2
        assert sorted(fresh[0]) == [1, 3]
        assert "z" in fresh[1] and "b" not in fresh[1]

    def test_cache_reused_between_writes(self):
        db = connect(with_crowd=False, vectorized=True)
        db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
        db.engine.insert("t", [1])
        heap = db.engine.table("t")
        first, _ = heap.scan_columns()
        again, _ = heap.scan_columns()
        assert first is again  # read-only scans share the pivot

    def test_query_results_stable_across_interleaved_writes(self):
        def run(vectorized):
            db = connect(with_crowd=False, vectorized=vectorized)
            db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY, y FLOAT)")
            out = []
            for i in range(5):
                db.engine.insert("t", [i, float(i) * 1.5])
                out.append(db.execute("SELECT SUM(y) FROM t WHERE x >= 1").rows)
            return out

        assert repr(run(True)) == repr(run(False))


class TestColumnPruning:
    """Runtime liveness propagation: dead columns are never gathered,
    and pruned plans stay byte-identical to unpruned row execution."""

    def test_referenced_positions_walks_expressions(self):
        scope = Scope([("t", "a"), ("t", "b"), ("t", "c")])
        refs = referenced_positions(
            (expr_of("a + 1"), expr_of("c BETWEEN 0 AND b")), scope
        )
        assert refs == frozenset({0, 1, 2})
        assert referenced_positions((expr_of("42"),), scope) == frozenset()

    def test_referenced_positions_poisons_on_unknown_constructs(self):
        # anything the walker cannot see through must force all-live
        scope = Scope([("t", "a")])
        subquery = expr_of("a IN (SELECT 1)")
        assert referenced_positions((subquery,), scope) is None

    def test_pivot_tolerates_pruned_columns(self):
        rows = _pivot_columns([[1, 2], None, ["x", "y"]], 2)
        assert rows == [(1, NULL, "x"), (2, NULL, "y")]
        assert _pivot_columns([], 3) == [(), (), ()]

    def test_pruned_wide_join_aggregate_identical(self):
        # only 1 of 9 combined columns survives to the aggregate; the
        # join/filter must prune the rest without changing results
        script = SCRIPT
        queries = [
            "SELECT d.region, COUNT(*) FROM emp e "
            "JOIN dept d ON e.dept = d.name "
            "WHERE e.salary > 50 AND e.name LIKE '%a%' GROUP BY d.region",
            "SELECT COUNT(*) FROM emp e LEFT JOIN dept d ON e.dept = d.name",
            "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name "
            "AND e.salary > d.floor * 10",
        ]
        vector = run_all(True, script, queries)
        row = run_all(False, script, queries)
        assert repr(vector) == repr(row)

    def test_batch_to_rows_sees_full_batches(self):
        # no narrowing consumer → everything live end to end
        db = connect(with_crowd=False, vectorized=True)
        db.executescript(SCRIPT)
        rows = db.execute("SELECT * FROM emp WHERE salary > 75").rows
        assert all(len(row) == 6 for row in rows)
        assert all(NULL not in (row[0], row[1]) for row in rows)


class TestExplainAndToggle:
    def test_explain_marks_vector_region(self):
        db = connect(with_crowd=False, vectorized=True)
        db.executescript(SCRIPT)
        plan = db.explain(
            "SELECT dept, COUNT(*) FROM emp WHERE salary > 70 GROUP BY dept"
        )
        assert "execution: vectorized" in plan

    def test_vectorized_false_restores_row_engine(self):
        db = connect(with_crowd=False, vectorized=False)
        db.executescript(SCRIPT)
        plan = db.explain("SELECT name FROM emp WHERE salary > 70")
        assert "execution: vectorized" not in plan

    def test_explain_analyze_counts_rows_not_batches(self):
        # batch-aware accounting: a vectorized scan over N rows reports
        # N actual rows (so misestimate flags stay meaningful) plus the
        # batch count
        db = connect(with_crowd=False, vectorized=True)
        db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
        for i in range(100):
            db.engine.insert("t", [i])
        db.execute("ANALYZE")
        report = db.explain_analyze("SELECT x FROM t WHERE x >= 0")
        scan_line = next(
            line for line in report.splitlines() if "Scan(" in line
        )
        assert "rows ~100/100" in scan_line
        assert "batch(es)" in scan_line
        assert "misestimate" not in scan_line

    def test_explain_analyze_flags_vectorized_misestimates(self):
        db = connect(with_crowd=False, vectorized=True)
        db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
        db.engine.insert("t", [0])
        for i in range(1, 400):
            db.engine.insert("t", [i])
        # an arithmetic equality defeats the histograms, so the
        # estimate falls back to a default selectivity guess while the
        # vectorized filter actually passes every row — the batch-aware
        # row accounting must still surface the gap
        report = db.explain_analyze("SELECT x FROM t WHERE x * 0 = 0")
        assert "!! rows misestimate" in report


class TestBatchFormat:
    def test_from_rows_round_trip(self):
        batch = ColumnBatch.from_rows([(1, "a"), (2, "b")], 2)
        assert batch.num_rows == 2
        assert batch.columns == [[1, 2], ["a", "b"]]
        assert batch.rows() == [(1, "a"), (2, "b")]
        assert len(ColumnBatch.from_rows([], 3).columns) == 3

    def test_large_table_spans_multiple_batches(self):
        from repro.exec.vector import VECTOR_ROWS

        assert VECTOR_ROWS >= 4096  # windows stay batch-scale, not row-scale
        db = connect(with_crowd=False, vectorized=True)
        db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
        for i in range(5000):
            db.engine.insert("t", [i])
        result = db.execute("SELECT COUNT(*), SUM(x) FROM t")
        assert result.rows == [(5000, sum(range(5000)))]
