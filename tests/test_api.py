"""Tests for the public API surface (connect, Connection, scripts)."""

import pytest

from repro import CNULL, NULL, Connection, CrowdConfig, connect
from repro.crowd.scripted import ScriptedPlatform
from repro.errors import BudgetExceededError, ExecutionError


class TestConnect:
    def test_crowdless_connection(self):
        db = connect(with_crowd=False)
        assert db.task_manager is None
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT a FROM t") == [(1,)]

    def test_default_platforms_registered(self, demo_oracle):
        db = connect(oracle=demo_oracle)
        assert set(db.platforms.names()) == {"amt", "mobile"}

    def test_custom_platform_list(self, demo_oracle):
        platform = ScriptedPlatform(lambda task, replica: None)
        db = connect(
            oracle=demo_oracle,
            platforms=(platform,),
            default_platform="scripted",
        )
        assert db.platforms.names() == ["scripted"]

    def test_crowd_config_applied(self, demo_oracle):
        config = CrowdConfig(replication=5, reward_cents=7, budget_cents=1)
        db = connect(oracle=demo_oracle, crowd_config=config)
        assert db.task_manager.config.replication == 5
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        with pytest.raises(BudgetExceededError):
            db.execute("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")

    def test_context_manager(self):
        with connect(with_crowd=False) as db:
            assert isinstance(db, Connection)

    def test_crowdless_query_needing_crowd_fails_cleanly(self):
        db = connect(with_crowd=False)
        db.execute("CREATE TABLE c (name STRING PRIMARY KEY)")
        db.execute("INSERT INTO c VALUES ('IBM'), ('I.B.M.')")
        with pytest.raises(ExecutionError, match="CROWDEQUAL"):
            db.query("SELECT name FROM c WHERE CROWDEQUAL(name, 'Big Blue')")


class TestResultSetPretty:
    def test_dml_renders_affected_count(self, plain_db):
        plain_db.execute("CREATE TABLE t (a INT)")
        result = plain_db.execute("INSERT INTO t VALUES (1), (2)")
        assert result.pretty() == "(2 row(s) affected)"

    def test_zero_column_zero_row_result(self):
        from repro.engine.executor import ResultSet

        assert ResultSet().pretty() == "(0 row(s) affected)"

    def test_zero_column_result_with_rows_counts_rows(self):
        from repro.engine.executor import ResultSet

        result = ResultSet(columns=[], rows=[(), ()], rowcount=0)
        assert result.pretty() == "(2 row(s))"

    def test_empty_select_renders_header_and_zero_rows(self, plain_db):
        plain_db.execute("CREATE TABLE t (a INT, b STRING)")
        text = plain_db.execute("SELECT a, b FROM t").pretty()
        lines = text.splitlines()
        assert "| a | b |" in lines
        assert lines[-1] == "(0 row(s))"

    def test_populated_select_renders_all_rows(self, plain_db):
        plain_db.execute("CREATE TABLE t (a INT)")
        plain_db.execute("INSERT INTO t VALUES (7), (42)")
        text = plain_db.execute("SELECT a FROM t").pretty()
        assert "| 7" in text and "| 42 |" in text
        assert text.splitlines()[-1] == "(2 row(s))"


class TestExecuteHelpers:
    def test_executescript_returns_all_results(self, plain_db):
        results = plain_db.executescript(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); "
            "SELECT COUNT(*) FROM t"
        )
        assert len(results) == 3
        assert results[-1].scalar() == 2

    def test_query_returns_rows(self, plain_db):
        plain_db.execute("CREATE TABLE t (a INT)")
        assert plain_db.query("SELECT 1 + 2") == [(3,)]

    def test_explain_text(self, demo_db):
        text = demo_db.explain("SELECT abstract FROM Talk WHERE title = 'x'")
        assert "CrowdProbe" in text
        assert "boundedness" in text

    def test_explain_rejects_dml(self, plain_db):
        with pytest.raises(ExecutionError):
            plain_db.explain("DROP TABLE t")

    def test_compile_exposes_plan(self, demo_db):
        compiled = demo_db.compile("SELECT name FROM NotableAttendee LIMIT 1")
        assert compiled.boundedness.bounded
        assert compiled.estimated_rows >= 0

    def test_explain_of_explain(self, demo_db):
        text = demo_db.explain("EXPLAIN SELECT title FROM Talk")
        assert "Scan" in text

    def test_crowd_stats_empty_without_crowd(self, plain_db):
        assert plain_db.crowd_stats == {}


class TestValuesExposed:
    def test_cnull_visible_in_results(self, plain_db):
        plain_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        plain_db.execute("INSERT INTO Talk (title) VALUES ('X')")
        rows = plain_db.query("SELECT abstract FROM Talk")
        assert rows == [(CNULL,)]

    def test_is_cnull_queryable(self, plain_db):
        plain_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        plain_db.execute("INSERT INTO Talk (title) VALUES ('X')")
        plain_db.execute("INSERT INTO Talk VALUES ('Y', 'done')")
        rows = plain_db.query("SELECT title FROM Talk WHERE abstract IS CNULL")
        assert rows == [("X",)]

    def test_insert_explicit_cnull(self, plain_db):
        plain_db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        plain_db.execute("INSERT INTO Talk VALUES ('X', CNULL)")
        assert plain_db.query("SELECT abstract FROM Talk") == [(CNULL,)]

    def test_update_to_cnull_reopens_sourcing(self, demo_db):
        demo_db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'")
        demo_db.execute(
            "UPDATE Talk SET abstract = CNULL WHERE title = 'Qurk'"
        )
        result = demo_db.execute(
            "SELECT abstract FROM Talk WHERE title = 'Qurk'"
        )
        assert result.rows[0][0] == "Qurk is a query processor for human operators."


class TestUICompileTime:
    def test_templates_created_on_ddl(self, demo_db):
        ids = {t.template_id for t in demo_db.ui_manager.all_templates()}
        assert any(i.startswith("fill:Talk") for i in ids)
        assert any(i.startswith("new:NotableAttendee") for i in ids)

    def test_form_editor_accessible(self, demo_db):
        templates = demo_db.ui_manager.all_templates()
        edited = demo_db.form_editor.append_instructions(
            templates[0].template_id, "Check the conference site first."
        )
        assert "conference site" in edited.instructions
