"""Determinism and durability guarantees.

The benchmarks' credibility rests on the simulation being a pure
function of its seed, and the storage engine being reconstructible from
its log — both are pinned down here.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro import connect
from repro.crowd.model import reset_id_counters
from repro.crowd.scripted import ScriptedPlatform
from repro.crowd.sim.traces import GroundTruthOracle
from repro.storage.engine import StorageEngine
from repro.catalog.ddl import build_table_schema
from repro.sql.parser import parse


def run_demo(seed: int):
    reset_id_counters()
    oracle = GroundTruthOracle()
    for title in ("A", "B", "C"):
        oracle.load_fill("Talk", (title,), {"abstract": f"abs {title}"})
    oracle.load_ranking("q", {"A": 3.0, "B": 2.0, "C": 1.0})
    db = connect(oracle=oracle, seed=seed)
    db.execute(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
    )
    db.execute("INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')")
    abstracts = db.query("SELECT abstract FROM Talk")
    ranking = db.query(
        "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'q')"
    )
    return abstracts, ranking, db.crowd_stats


def run_concurrent_demo(seed: int):
    """The run_demo workload split over three server sessions, plus a
    deliberately duplicated query so the task pool dedups in flight."""
    from repro import serve

    reset_id_counters()
    oracle = GroundTruthOracle()
    for i, title in enumerate(("A", "B", "C")):
        oracle.load_fill(
            "Talk", (title,), {"abstract": f"abs {title}", "nb_attendees": 10 + i}
        )
    oracle.load_ranking("q", {"A": 3.0, "B": 2.0, "C": 1.0})
    server = serve(oracle=oracle, seed=seed)
    server.connection.execute(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, "
        "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
    )
    server.connection.execute(
        "INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')"
    )
    per_session = server.run_scripts(
        [
            "SELECT nb_attendees FROM Talk WHERE title = 'A'",
            "SELECT nb_attendees FROM Talk WHERE title = 'A'; "
            "SELECT nb_attendees FROM Talk WHERE title = 'B'",
            "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'q')",
        ]
    )
    rows = [[result.rows for result in results] for results in per_session]
    stats = server.stats()
    server.shutdown()
    return rows, stats


class TestDeterminism:
    def test_same_seed_same_everything(self):
        first = run_demo(99)
        second = run_demo(99)
        assert first == second

    def test_concurrent_scheduler_is_deterministic(self):
        """Same seed, same submission order => identical interleaving,
        answers, and counters under the cooperative scheduler."""
        first_rows, first_stats = run_concurrent_demo(99)
        second_rows, second_stats = run_concurrent_demo(99)
        assert first_rows == second_rows
        assert first_stats == second_stats
        # the duplicated session-1/session-2 query shared one HIT
        assert first_stats["task_pool"]["hits_saved"] >= 1

    def test_concurrent_matches_serial_fill_semantics(self):
        """The scheduler changes *when* HITs resolve, not what a seeded
        demo's comparisons conclude: both talk rankings are permutations
        of the same titles."""
        rows, _stats = run_concurrent_demo(4)
        ranking = [row[0] for row in rows[2][0]]
        assert sorted(ranking) == ["A", "B", "C"]

    def test_different_seed_differs_somewhere(self):
        # the weakest check that the seed actually matters: full crowd
        # traces (timings included) should not coincide
        _, _, stats_a = run_demo(1)
        _, _, stats_b = run_demo(2)
        a = run_demo(1)
        assert a == run_demo(1)
        # stats may coincide, but the platform event streams should not
        # both produce identical votes across many comparisons; accept
        # either outcome for stats, assert determinism only.
        assert stats_a["hits_posted"] == stats_b["hits_posted"]


def run_adaptive_demo(seed: int):
    """The run_demo workload under adaptive quality control: a fixed-seed
    sim population, confidence-driven replication, reputation weighting,
    and gold probes all engaged."""
    import warnings

    from repro.errors import CrowdDBWarning

    reset_id_counters()
    oracle = GroundTruthOracle()
    for title in ("A", "B", "C"):
        oracle.load_fill("Talk", (title,), {"abstract": f"abs {title}"})
    oracle.load_ranking("q", {"A": 3.0, "B": 2.0, "C": 1.0})
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CrowdDBWarning)
        db = connect(
            oracle=oracle,
            seed=seed,
            target_confidence=0.9,
            min_replication=2,
            max_replication=6,
            gold_rate=0.25,
        )
        db.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING)"
        )
        db.execute("INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')")
        abstracts = db.query("SELECT abstract FROM Talk")
        ranking = db.query(
            "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'q')"
        )
    reputations = {
        worker: round(db.reputation.accuracy(worker), 12)
        for worker in db.reputation.known_workers()
    }
    return abstracts, ranking, db.crowd_stats, reputations


def run_adaptive_scripted(seed: int):
    """Adaptive replication over a scripted crowd that disagrees on the
    first ballot: every run must replay identical extension rounds."""
    reset_id_counters()

    def answer(task, replica):
        return {"abstract": "noisy" if replica == 0 else "clean"}

    from repro import CrowdConfig, Connection
    from repro.crowd.platform import PlatformRegistry

    registry = PlatformRegistry()
    registry.register(ScriptedPlatform(answer))
    db = Connection(
        platforms=registry,
        crowd_config=CrowdConfig(
            target_confidence=0.9, min_replication=2, max_replication=6
        ),
        default_platform="scripted",
    )
    db.execute(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
    )
    db.execute("INSERT INTO Talk (title) VALUES ('A'), ('B')")
    rows = db.query("SELECT abstract FROM Talk")
    return rows, db.crowd_stats


class TestAdaptiveDeterminism:
    def test_adaptive_sim_same_seed_same_everything(self):
        """Answers, assignment counts, cost totals, and learned
        reputations are all a pure function of the seed."""
        first = run_adaptive_demo(23)
        second = run_adaptive_demo(23)
        assert first == second
        _, _, stats, _ = first
        assert stats["assignments_received"] > 0
        assert stats["cost_cents"] > 0

    def test_adaptive_scripted_replays_identically(self):
        first_rows, first_stats = run_adaptive_scripted(0)
        second_rows, second_stats = run_adaptive_scripted(0)
        assert first_rows == second_rows == [("clean",), ("clean",)]
        assert first_stats == second_stats
        # the 1-1 split extends each HIT until sigmoid(margin) >= 0.9:
        # 2 + 3 more ballots per fill, deterministically
        assert first_stats["hit_extensions"] == 6
        assert first_stats["assignments_received"] == 10

    def test_adaptive_cheaper_than_fixed_on_agreeing_crowd(self):
        """With unanimous workers, adaptive replication stops at
        min_replication — strictly fewer paid assignments than the fixed
        baseline, identical answers."""
        from repro import CrowdConfig, connect

        def run(config):
            reset_id_counters()
            oracle = GroundTruthOracle()
            for title in ("A", "B", "C"):
                oracle.load_fill("Talk", (title,), {"abstract": f"abs {title}"})
            from repro.crowd.scripted import oracle_answer_fn

            db = connect(
                oracle=oracle,
                platforms=(ScriptedPlatform(oracle_answer_fn(oracle)),),
                default_platform="scripted",
                crowd_config=config,
            )
            db.execute(
                "CREATE TABLE Talk (title STRING PRIMARY KEY, "
                "abstract CROWD STRING)"
            )
            db.execute("INSERT INTO Talk (title) VALUES ('A'), ('B'), ('C')")
            return db.query("SELECT abstract FROM Talk"), db.crowd_stats

        fixed_rows, fixed_stats = run(CrowdConfig(replication=3))
        adaptive_rows, adaptive_stats = run(
            CrowdConfig(
                target_confidence=0.9, min_replication=2, max_replication=6
            )
        )
        assert adaptive_rows == fixed_rows
        assert adaptive_stats["hit_extensions"] == 0
        assert (
            adaptive_stats["assignments_received"]
            < fixed_stats["assignments_received"]
        )
        assert adaptive_stats["cost_cents"] < fixed_stats["cost_cents"]


class TestLogReplayProperty:
    _ops = st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=-50, max_value=50),
        ),
        max_size=40,
    )

    @given(_ops)
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_replay_reconstructs_any_history(self, operations):
        """Whatever sequence of DML ran, replaying the log yields an
        identical table."""
        engine = StorageEngine()
        engine.create_table(
            build_table_schema(
                parse("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
            )
        )
        live_rowids: dict[int, int] = {}
        for op, key, value in operations:
            if op == "insert" and key not in live_rowids:
                row = engine.insert("t", [key, value])
                live_rowids[key] = row.rowid
            elif op == "delete" and key in live_rowids:
                engine.delete("t", live_rowids.pop(key))
            elif op == "update" and key in live_rowids:
                engine.update("t", live_rowids[key], (key, value))
        rebuilt = StorageEngine.replay(engine.log)
        original = sorted(r.values for r in engine.table("t").scan())
        replayed = sorted(r.values for r in rebuilt.table("t").scan())
        assert original == replayed
        assert (
            rebuilt.table("t").statistics.row_count
            == engine.table("t").statistics.row_count
        )


class TestScriptedPlatform:
    def test_replica_index_passed(self):
        seen = []

        def answer(task, replica):
            seen.append(replica)
            return {"v": str(replica)}

        platform = ScriptedPlatform(answer)
        from repro.crowd.model import HIT, FillTask

        hit = HIT(
            task=FillTask("t", ("k",), ("v",), {}),
            reward_cents=1,
            assignments_requested=3,
        )
        platform.post_hit(hit)
        assert seen == [0, 1, 2]
        assert len(hit.assignments) == 3

    def test_none_means_no_assignment(self):
        platform = ScriptedPlatform(lambda task, replica: None)
        from repro.crowd.model import HIT, FillTask

        hit = HIT(
            task=FillTask("t", ("k",), ("v",), {}),
            reward_cents=1,
            assignments_requested=2,
        )
        platform.post_hit(hit)
        assert hit.assignments == []
        assert platform.run_until(lambda: True, timeout=1.0)

    def test_posted_tasks_recorded(self):
        platform = ScriptedPlatform(lambda task, replica: True)
        from repro.crowd.model import HIT, CompareEqualTask

        platform.post_hit(
            HIT(task=CompareEqualTask("a", "b"), reward_cents=1,
                assignments_requested=1)
        )
        assert len(platform.posted_tasks) == 1
