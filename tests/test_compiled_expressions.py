"""Differential tests: compiled expressions vs the AST interpreter.

Every expression of the corpus runs through both the interpreted
:class:`Evaluator` and the plan-time compiler over the same rows, and the
results must be identical — value identity for the NULL/CNULL singletons,
TriBool verdicts for predicates, error type and message for failures, and
the exact sequence of crowd calls for CROWDEQUAL hybrids.
"""

from __future__ import annotations

import pytest

from repro import connect
from repro.errors import ExecutionError, PlanError, TypeError_
from repro.plan.compiled import (
    compile_predicate,
    compile_value,
    is_electronic,
)
from repro.plan.expressions import Evaluator, cached_like_regex
from repro.sql import ast
from repro.sql.parser import Parser
from repro.sqltypes import CNULL, NULL
from repro.storage.row import LayeredScope, Scope


def expr_of(sql_fragment):
    """Parse a standalone expression via a dummy SELECT."""
    stmt = Parser(f"SELECT {sql_fragment}").parse_statement()
    return stmt.items[0].expression


SCOPE = Scope([("t", "a"), ("t", "b"), ("t", "s"), ("t", "flag")])

ROWS = [
    (1, 2, "abc", True),
    (0, -3, "zebra", False),
    (NULL, 2, "abc", True),
    (1, CNULL, NULL, False),
    (7, 7, "a%c", NULL),
    (2, 4, "", CNULL),
]

#: (fragment, parameters) — the differential corpus.  Mixed-type rows,
#: NULL vs CNULL, 3VL connectives, LIKE, CASE, parameters, functions.
CORPUS = [
    ("42", ()),
    ("a", ()),
    ("t.b", ()),
    ("-a", ()),
    ("+b", ()),
    ("a + b * 2", ()),
    ("a - b", ()),
    ("b % 2", ()),
    ("a / b", ()),
    ("a / 0", ()),
    ("s || '!'", ()),
    ("a = 1", ()),
    ("a <> b", ()),
    ("a < b", ()),
    ("a <= 1", ()),
    ("a > b", ()),
    ("a >= 7", ()),
    ("a = 1 AND b = 2", ()),
    ("a = 1 OR b = 2", ()),
    ("NOT a = 1", ()),
    ("a = 1 AND (b > 0 OR s = 'abc')", ()),
    ("s LIKE 'ab%'", ()),
    ("s LIKE '%b%'", ()),
    ("s LIKE 'a_c'", ()),
    ("s LIKE s", ()),
    ("s LIKE NULL", ()),
    ("a IS NULL", ()),
    ("a IS NOT NULL", ()),
    ("b IS CNULL", ()),
    ("b IS NOT CNULL", ()),
    ("s IS NULL", ()),
    ("a IN (1, 2, 3)", ()),
    ("a NOT IN (1, 2)", ()),
    ("a IN (1, NULL)", ()),
    ("a BETWEEN 0 AND 5", ()),
    ("a NOT BETWEEN 2 AND 3", ()),
    ("b BETWEEN a AND 10", ()),
    ("CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END", ()),
    ("CASE WHEN b > 1 THEN b END", ()),
    ("CASE a WHEN 1 THEN 'one' WHEN 7 THEN 'seven' ELSE '?' END", ()),
    ("LOWER(s)", ()),
    ("UPPER(s)", ()),
    ("LENGTH(s)", ()),
    ("TRIM(s)", ()),
    ("ABS(b)", ()),
    ("ROUND(a / 3.0, 1)", ()),
    ("COALESCE(a, b, 99)", ()),
    ("NULLIF(a, 1)", ()),
    ("SUBSTR(s, 2)", ()),
    ("SUBSTR(s, 1, 2)", ()),
    ("? + a", (10,)),
    ("? || s", ("p-",)),
    ("?", (None,)),
    ("1 + 2 * 3", ()),
    ("'x' || 'y'", ()),
    ("flag", ()),
    ("flag AND a = 1", ()),
    ("NOT flag", ()),
]


def both_value(fragment, row, parameters=()):
    expr = expr_of(fragment)
    interpreted = Evaluator(parameters=parameters)
    compiled = compile_value(expr, SCOPE, parameters=parameters)

    def run(fn):
        try:
            return ("ok", fn())
        except (ExecutionError, PlanError, TypeError_) as error:
            return ("error", type(error).__name__, str(error))

    return (
        run(lambda: interpreted.value(expr, row, SCOPE)),
        run(lambda: compiled(row)),
    )


def both_tri(fragment, row, parameters=()):
    expr = expr_of(fragment)
    interpreted = Evaluator(parameters=parameters)
    compiled = compile_predicate(expr, SCOPE, parameters=parameters)

    def run(fn):
        try:
            return ("ok", fn())
        except (ExecutionError, PlanError, TypeError_) as error:
            return ("error", type(error).__name__, str(error))

    return (
        run(lambda: interpreted.predicate(expr, row, SCOPE)),
        run(lambda: compiled(row)),
    )


class TestDifferentialCorpus:
    @pytest.mark.parametrize("fragment,parameters", CORPUS)
    def test_values_identical(self, fragment, parameters):
        for row in ROWS:
            expected, actual = both_value(fragment, row, parameters)
            assert actual == expected, f"{fragment!r} over {row!r}"
            if expected[0] == "ok" and expected[1] in (NULL, CNULL):
                # the missing-value singletons must survive by identity
                assert actual[1] is expected[1]

    @pytest.mark.parametrize("fragment,parameters", CORPUS)
    def test_verdicts_identical(self, fragment, parameters):
        for row in ROWS:
            expected, actual = both_tri(fragment, row, parameters)
            assert actual == expected, f"{fragment!r} over {row!r}"


class TestNaNParity:
    """compare_values derives ordering 0 for NaN against anything; the
    compiled native fast paths must reproduce that, not IEEE semantics."""

    NAN = float("nan")

    @pytest.mark.parametrize(
        "fragment",
        ["a = ?", "a <> ?", "a < ?", "a <= ?", "a > ?", "a >= ?",
         "? = 1.5", "a BETWEEN ? AND ?", "? BETWEEN 1 AND 2",
         "a = b", "a <= b"],
    )
    def test_nan_verdicts_identical(self, fragment):
        parameters = (self.NAN, self.NAN)
        rows = [
            (1.5, 2.5, "x", True),
            (self.NAN, 2.5, "x", True),
            (self.NAN, self.NAN, "x", True),
        ]
        for row in rows:
            expected, actual = both_tri(fragment, row, parameters)
            assert actual == expected, f"{fragment!r} over {row!r}"

    def test_nan_sort_matches_interpreted(self):
        def rows(compile_expressions):
            db = connect(
                with_crowd=False, compile_expressions=compile_expressions
            )
            db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, x FLOAT)")
            for i, x in enumerate([2.5, self.NAN, 1.5, self.NAN, 3.5]):
                db.engine.insert("t", [i, x])
            return db.execute("SELECT i FROM t ORDER BY x").rows

        assert repr(rows(True)) == repr(rows(False))


class TestErrorParity:
    """Compilation must not surface errors earlier than interpretation."""

    def test_unknown_column_raises_at_evaluation_not_compile(self):
        expr = expr_of("nope")
        fn = compile_value(expr, SCOPE)  # must not raise here
        with pytest.raises(ExecutionError, match="not found in scope"):
            fn(ROWS[0])

    def test_missing_parameter_raises_at_evaluation(self):
        expr = expr_of("?")
        fn = compile_value(expr, SCOPE, parameters=())
        with pytest.raises(ExecutionError, match="parameter"):
            fn(ROWS[0])

    def test_unknown_function_raises_at_evaluation(self):
        expr = expr_of("FROBNICATE(a)")
        fn = compile_value(expr, SCOPE)
        with pytest.raises(ExecutionError, match="unknown function"):
            fn(ROWS[0])

    def test_constant_fold_defers_type_errors(self):
        # 'x' + 1 is a constant subtree whose evaluation raises; folding
        # must keep the error lazy, exactly like the interpreter
        expr = expr_of("'x' + 1")
        fn = compile_value(expr, SCOPE)
        with pytest.raises(ExecutionError, match="numeric operands"):
            fn(ROWS[0])

    def test_star_falls_back_to_interpreted_error(self):
        fn = compile_value(ast.Star(), SCOPE)
        with pytest.raises(PlanError):
            fn(ROWS[0])


class TestCrowdHybrid:
    """CROWDEQUAL compiles to a hybrid that routes through the context."""

    class _RecordingContext:
        def __init__(self):
            self.calls = []

        def crowd_equal(self, left, right, question):
            self.calls.append((left, right, question))
            return str(left).lower() == str(right).lower()

        def scalar_subquery(self, query, values, scope):
            raise AssertionError("not used")

        def subquery_values(self, query, values, scope):
            raise AssertionError("not used")

    def test_same_verdicts_and_same_crowd_calls(self):
        fragment = "CROWDEQUAL(s, 'ABC')"
        expr = expr_of(fragment)
        rows = [("abc",), ("x",), ("ABC",), (NULL,), (CNULL,)]
        scope = Scope([("t", "s")])

        interpreted_context = self._RecordingContext()
        interpreted = Evaluator(context=interpreted_context)
        expected = [interpreted.predicate(expr, row, scope) for row in rows]

        compiled_context = self._RecordingContext()
        fn = compile_predicate(expr, scope, context=compiled_context)
        actual = [fn(row) for row in rows]

        assert actual == expected
        # identical call sequence: the exact-equality fast path and the
        # missing-operand short cut must both survive compilation
        assert compiled_context.calls == interpreted_context.calls
        assert compiled_context.calls == [("abc", "ABC", None), ("x", "ABC", None)]

    def test_is_electronic_classification(self):
        assert is_electronic(expr_of("a = 1 AND s LIKE 'x%'"))
        assert not is_electronic(expr_of("CROWDEQUAL(s, 'IBM')"))
        assert not is_electronic(
            expr_of("a = 1 AND CROWDEQUAL(s, 'IBM')")
        )

    def test_join_with_crowd_condition_blocks_eager_chunking(self):
        # a join whose condition asks the crowd per emitted row must not
        # be buffered ahead of its consumer (stop-after cost guarantee)
        from repro.engine.context import ExecutionContext
        from repro.engine.joins import HashJoinOp, NestedLoopJoinOp
        from repro.engine.scans import SingleRowOp
        from repro.storage.engine import StorageEngine

        context = ExecutionContext(StorageEngine())
        left, right = SingleRowOp(context), SingleRowOp(context)
        crowd_condition = expr_of("CROWDEQUAL('a', 'b')")
        electronic_condition = expr_of("1 = 1")
        assert NestedLoopJoinOp(
            context, left, right, condition=crowd_condition
        ).sources_crowd_on_pull()
        assert not NestedLoopJoinOp(
            context, left, right, condition=electronic_condition
        ).sources_crowd_on_pull()
        assert HashJoinOp(
            context, left, right, (), (), condition=crowd_condition
        ).sources_crowd_on_pull()


class TestCorrelatedReferences:
    def test_layered_scope_resolution_matches(self):
        inner = Scope([("i", "x")])
        outer = Scope([("o", "y")])
        layered = LayeredScope(inner, outer)
        expr = expr_of("x + y")
        interpreted = Evaluator()
        fn = compile_value(expr, layered)
        for row in [(3, 4), (10, -2)]:
            assert fn(row) == interpreted.value(expr, row, layered)

    def test_inner_shadows_outer(self):
        inner = Scope([("i", "x")])
        outer = Scope([("o", "x")])
        layered = LayeredScope(inner, outer)
        expr = expr_of("x")
        fn = compile_value(expr, layered)
        assert fn((1, 2)) == 1


class TestLikeCache:
    def test_patterns_cached_at_module_level(self):
        first = cached_like_regex("co%mp_le")
        again = cached_like_regex("co%mp_le")
        assert first is again

    def test_constant_pattern_precompiled_once(self):
        # a fresh pattern lands in the module cache after compilation,
        # before any row is evaluated
        pattern = "precompile-%-marker"
        expr = expr_of(f"s LIKE '{pattern}'")
        compile_predicate(expr, SCOPE)
        from repro.plan.expressions import _LIKE_CACHE

        assert pattern in _LIKE_CACHE


class TestEndToEndEquivalence:
    """Full statements over both modes return identical ResultSets."""

    SCRIPT = """
        CREATE TABLE emp (
            id INTEGER PRIMARY KEY,
            name STRING,
            dept STRING,
            salary FLOAT
        );
        CREATE TABLE dept (name STRING PRIMARY KEY, region STRING);
        INSERT INTO dept VALUES ('eng', 'west'), ('ops', 'east'),
            ('sales', 'west');
        INSERT INTO emp VALUES
            (1, 'ada', 'eng', 120.0), (2, 'bob', 'ops', 80.0),
            (3, 'cyd', 'eng', 95.5), (4, 'dee', 'sales', 70.0),
            (5, 'eli', 'ops', NULL), (6, 'fay', 'sales', 88.25);
    """

    QUERIES = [
        "SELECT name FROM emp WHERE salary > 75 AND dept LIKE '%s'",
        "SELECT e.name, d.region FROM emp e JOIN dept d ON e.dept = d.name "
        "WHERE d.region = 'west' ORDER BY e.name",
        "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept "
        "ORDER BY SUM(salary) DESC",
        "SELECT name, CASE WHEN salary >= 90 THEN 'high' ELSE 'low' END "
        "FROM emp ORDER BY salary DESC, name",
        "SELECT DISTINCT dept FROM emp WHERE salary IS NOT NULL",
        "SELECT name FROM emp WHERE dept IN "
        "(SELECT name FROM dept WHERE region = 'east')",
        "SELECT name FROM emp e WHERE EXISTS "
        "(SELECT 1 FROM dept d WHERE d.name = e.dept AND d.region = 'west')",
        "SELECT name, salary FROM emp ORDER BY salary LIMIT 3",
        "SELECT UPPER(name) || '-' || dept FROM emp WHERE id % 2 = 0",
    ]

    def _run_all(self, compile_expressions):
        db = connect(with_crowd=False, compile_expressions=compile_expressions)
        db.executescript(self.SCRIPT)
        return [
            (result.columns, result.rows)
            for result in (db.execute(q) for q in self.QUERIES)
        ]

    def test_compiled_matches_interpreted(self):
        assert self._run_all(True) == self._run_all(False)

    def test_explain_marks_compilation_mode(self):
        compiled = connect(with_crowd=False)
        interpreted = connect(with_crowd=False, compile_expressions=False)
        for db, marker in (
            (compiled, "-- expressions: compiled"),
            (interpreted, "-- expressions: interpreted"),
        ):
            db.execute("CREATE TABLE t (x INTEGER PRIMARY KEY)")
            assert marker in db.explain("SELECT x FROM t WHERE x = 1")
