"""Integration tests: traditional SQL semantics through the full stack.

These use a crowd-less connection — CrowdDB must remain a complete SQL
engine for electronically stored data (Physical Data Independence: the
same queries run with or without the crowd).
"""

import pytest

from repro.errors import CatalogError, ConstraintError, ExecutionError
from repro.sqltypes import NULL


@pytest.fixture
def db(plain_db):
    plain_db.executescript(
        """
        CREATE TABLE dept (dname STRING PRIMARY KEY, budget INTEGER);
        CREATE TABLE emp (
            name STRING PRIMARY KEY,
            dname STRING,
            salary INTEGER,
            FOREIGN KEY (dname) REFERENCES dept(dname)
        );
        INSERT INTO dept VALUES ('eng', 100), ('sales', 50), ('hr', 20);
        INSERT INTO emp VALUES
            ('ann', 'eng', 90), ('bob', 'eng', 80),
            ('cat', 'sales', 70), ('dan', 'sales', 60),
            ('eve', 'hr', 50);
        """
    )
    return plain_db


class TestSelectBasics:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM dept")
        assert result.columns == ["dname", "budget"]
        assert len(result.rows) == 3

    def test_projection_and_alias(self, db):
        result = db.execute("SELECT name AS who, salary * 2 AS double FROM emp")
        assert result.columns == ["who", "double"]
        assert ("ann", 180) in result.rows

    def test_where(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary >= 70")
        assert sorted(rows) == [("ann",), ("bob",), ("cat",)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1") == [(2,)]

    def test_parameters(self, db):
        rows = db.query("SELECT name FROM emp WHERE dname = ?", ("hr",))
        assert rows == [("eve",)]

    def test_like(self, db):
        rows = db.query("SELECT name FROM emp WHERE name LIKE '%a%'")
        assert sorted(rows) == [("ann",), ("cat",), ("dan",)]

    def test_in(self, db):
        rows = db.query("SELECT name FROM emp WHERE dname IN ('hr', 'sales')")
        assert len(rows) == 3

    def test_between(self, db):
        rows = db.query("SELECT name FROM emp WHERE salary BETWEEN 60 AND 80")
        assert sorted(rows) == [("bob",), ("cat",), ("dan",)]


class TestOrderingAndLimits:
    def test_order_by(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY salary DESC")
        assert rows[0] == ("ann",) and rows[-1] == ("eve",)

    def test_order_by_two_keys(self, db):
        rows = db.query("SELECT name FROM emp ORDER BY dname, salary DESC")
        assert rows == [("ann",), ("bob",), ("eve",), ("cat",), ("dan",)]

    def test_limit_offset(self, db):
        rows = db.query(
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1"
        )
        assert rows == [("bob",), ("cat",)]

    def test_nulls_sort_last(self, db):
        db.execute("INSERT INTO emp (name) VALUES ('zed')")
        rows = db.query("SELECT name FROM emp ORDER BY salary")
        assert rows[-1] == ("zed",)

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT dname FROM emp")
        assert sorted(rows) == [("eng",), ("hr",), ("sales",)]

    def test_distinct_with_order_limit(self, db):
        rows = db.query(
            "SELECT DISTINCT dname FROM emp ORDER BY dname LIMIT 2"
        )
        assert rows == [("eng",), ("hr",)]


class TestJoins:
    def test_inner_join(self, db):
        rows = db.query(
            "SELECT e.name, d.budget FROM emp e JOIN dept d "
            "ON e.dname = d.dname WHERE d.budget > 40"
        )
        assert len(rows) == 4

    def test_implicit_join(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e, dept d "
            "WHERE e.dname = d.dname AND d.dname = 'hr'"
        )
        assert rows == [("eve",)]

    def test_cross_join(self, db):
        rows = db.query("SELECT 1 FROM dept a CROSS JOIN dept b")
        assert len(rows) == 9

    def test_left_join(self, db):
        db.execute("INSERT INTO emp (name, salary) VALUES ('zed', 10)")
        rows = db.query(
            "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d "
            "ON e.dname = d.dname"
        )
        assert ("zed", NULL) in rows
        assert len(rows) == 6

    def test_self_join(self, db):
        rows = db.query(
            "SELECT a.name, b.name FROM emp a JOIN emp b "
            "ON a.dname = b.dname WHERE a.name < b.name"
        )
        assert sorted(rows) == [("ann", "bob"), ("cat", "dan")]

    def test_three_way_join(self, db):
        rows = db.query(
            "SELECT e.name FROM emp e, dept d, dept d2 "
            "WHERE e.dname = d.dname AND d.dname = d2.dname "
            "AND d2.budget = 100"
        )
        assert sorted(rows) == [("ann",), ("bob",)]


class TestAggregation:
    def test_global_aggregates(self, db):
        result = db.execute(
            "SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), "
            "MAX(salary) FROM emp"
        )
        assert result.rows == [(5, 350, 70.0, 50, 90)]

    def test_group_by(self, db):
        rows = db.query(
            "SELECT dname, COUNT(*), AVG(salary) FROM emp GROUP BY dname"
        )
        assert ("eng", 2, 85.0) in rows
        assert len(rows) == 3

    def test_having(self, db):
        rows = db.query(
            "SELECT dname FROM emp GROUP BY dname HAVING COUNT(*) > 1"
        )
        assert sorted(rows) == [("eng",), ("sales",)]

    def test_group_by_with_order(self, db):
        rows = db.query(
            "SELECT dname, SUM(salary) AS total FROM emp "
            "GROUP BY dname ORDER BY total DESC"
        )
        assert rows[0] == ("eng", 170)

    def test_count_ignores_missing(self, db):
        db.execute("INSERT INTO emp (name, dname) VALUES ('zed', 'hr')")
        result = db.execute("SELECT COUNT(*), COUNT(salary) FROM emp")
        assert result.rows == [(6, 5)]

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT dname) FROM emp") == [(3,)]

    def test_empty_group_aggregate(self, db):
        result = db.execute("SELECT COUNT(*), SUM(salary) FROM emp WHERE salary > 999")
        assert result.rows == [(0, NULL)]

    def test_group_by_empty_input(self, db):
        rows = db.query(
            "SELECT dname, COUNT(*) FROM emp WHERE salary > 999 GROUP BY dname"
        )
        assert rows == []


class TestSubqueries:
    def test_scalar_subquery(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
        )
        assert rows == [("ann",)]

    def test_in_subquery(self, db):
        rows = db.query(
            "SELECT name FROM emp WHERE dname IN "
            "(SELECT dname FROM dept WHERE budget >= 50)"
        )
        assert len(rows) == 4

    def test_correlated_exists(self, db):
        rows = db.query(
            "SELECT d.dname FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dname = d.dname AND e.salary > 80)"
        )
        assert rows == [("eng",)]

    def test_not_exists(self, db):
        db.execute("INSERT INTO dept VALUES ('empty', 5)")
        rows = db.query(
            "SELECT d.dname FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dname = d.dname)"
        )
        assert rows == [("empty",)]

    def test_derived_table(self, db):
        rows = db.query(
            "SELECT s.dname FROM (SELECT dname, AVG(salary) AS avg_sal "
            "FROM emp GROUP BY dname) AS s WHERE s.avg_sal > 60"
        )
        assert sorted(rows) == [("eng",), ("sales",)]


class TestDML:
    def test_insert_partial_columns(self, db):
        db.execute("INSERT INTO emp (name) VALUES ('new')")
        rows = db.query("SELECT dname, salary FROM emp WHERE name = 'new'")
        assert rows == [(NULL, NULL)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE names (name STRING)")
        result = db.execute("INSERT INTO names SELECT name FROM emp")
        assert result.rowcount == 5

    def test_update(self, db):
        result = db.execute(
            "UPDATE emp SET salary = salary + 5 WHERE dname = 'eng'"
        )
        assert result.rowcount == 2
        assert db.query("SELECT salary FROM emp WHERE name = 'ann'") == [(95,)]

    def test_update_all(self, db):
        assert db.execute("UPDATE emp SET salary = 1").rowcount == 5

    def test_delete(self, db):
        result = db.execute("DELETE FROM emp WHERE salary < 60")
        assert result.rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 4

    def test_delete_all(self, db):
        db.execute("DELETE FROM emp")
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 0

    def test_pk_violation(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO dept VALUES ('eng', 1)")

    def test_fk_violation(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO emp VALUES ('x', 'nowhere', 1)")

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM missing")


class TestUtilityStatements:
    def test_show_tables(self, db):
        result = db.execute("SHOW TABLES")
        assert ("dept",) in result.rows and ("emp",) in result.rows

    def test_explain(self, db):
        result = db.execute("EXPLAIN SELECT name FROM emp WHERE salary > 1")
        text = "\n".join(row[0] for row in result.rows)
        assert "Scan(emp" in text and "Filter" in text

    def test_create_index(self, db):
        db.execute("CREATE INDEX by_dname ON emp (dname)")
        assert db.engine.table("emp").index_on(("dname",)) is not None

    def test_result_pretty(self, db):
        text = db.execute("SELECT name FROM emp ORDER BY name LIMIT 1").pretty()
        assert "ann" in text and "row(s)" in text

    def test_scalar_helper_errors(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT name FROM emp").scalar()

    def test_drop_table(self, db):
        db.execute("DELETE FROM emp")
        db.execute("DROP TABLE emp")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM emp")


class TestCursor:
    def test_fetch_interface(self, db):
        cursor = db.cursor()
        cursor.execute("SELECT name FROM emp ORDER BY name")
        assert cursor.fetchone() == ("ann",)
        assert cursor.fetchmany(2) == [("bob",), ("cat",)]
        assert cursor.fetchall() == [("dan",), ("eve",)]
        assert cursor.fetchone() is None

    def test_description(self, db):
        cursor = db.cursor().execute("SELECT name, salary FROM emp")
        assert [d[0] for d in cursor.description] == ["name", "salary"]

    def test_iteration(self, db):
        cursor = db.cursor().execute("SELECT name FROM emp")
        assert len(list(cursor)) == 5
