"""Unit tests for the storage substrate: heaps, indexes, engine, log."""

import pytest

from repro.catalog.ddl import build_table_schema
from repro.errors import ConstraintError, StorageError
from repro.sql.parser import parse
from repro.sqltypes import CNULL, NULL
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapTable
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.row import Scope
from repro.storage.transaction_log import LogOp


def schema_of(sql):
    return build_table_schema(parse(sql))


@pytest.fixture
def talk_engine():
    engine = StorageEngine()
    engine.create_table(
        schema_of(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
    )
    return engine


class TestHashIndex:
    def test_insert_lookup_delete(self):
        index = HashIndex("i", ("a",))
        index.insert(("x",), 1)
        index.insert(("x",), 2)
        assert index.lookup(("x",)) == {1, 2}
        index.delete(("x",), 1)
        assert index.lookup(("x",)) == {2}

    def test_unique_violation(self):
        index = HashIndex("i", ("a",), unique=True)
        index.insert(("x",), 1)
        with pytest.raises(ConstraintError):
            index.insert(("x",), 2)

    def test_missing_values_never_match(self):
        index = HashIndex("i", ("a",), unique=True)
        index.insert((NULL,), 1)
        index.insert((NULL,), 2)  # two NULL keys do not collide
        assert index.lookup((NULL,)) == frozenset()
        index.delete((NULL,), 1)

    def test_delete_unknown_entry(self):
        index = HashIndex("i", ("a",))
        with pytest.raises(StorageError):
            index.delete(("x",), 1)


class TestOrderedIndex:
    def test_range_scan(self):
        index = OrderedIndex("i", ("a",))
        for i, value in enumerate([5, 1, 3, 9, 7]):
            index.insert((value,), i)
        assert list(index.range(low=(3,), high=(7,))) == [2, 0, 4]

    def test_range_exclusive(self):
        index = OrderedIndex("i", ("a",))
        for i, value in enumerate([1, 2, 3]):
            index.insert((value,), i)
        assert list(index.range(low=(1,), low_inclusive=False)) == [1, 2]
        assert list(index.range(high=(3,), high_inclusive=False)) == [0, 1]

    def test_unique(self):
        index = OrderedIndex("i", ("a",), unique=True)
        index.insert((1,), 0)
        with pytest.raises(ConstraintError):
            index.insert((1,), 1)

    def test_missing_kept_aside(self):
        index = OrderedIndex("i", ("a",))
        index.insert((CNULL,), 0)
        index.insert((1,), 1)
        assert list(index.range()) == [1]
        assert list(index.ordered_rowids()) == [1, 0]
        index.delete((CNULL,), 0)
        assert len(index) == 1

    def test_lookup(self):
        index = OrderedIndex("i", ("a",))
        index.insert((1,), 0)
        index.insert((1,), 1)
        assert index.lookup((1,)) == {0, 1}
        assert index.contains_key((1,))

    def test_prefix_lookup(self):
        index = OrderedIndex("i", ("a", "b"))
        index.insert((1, "x"), 0)
        index.insert((1, "y"), 1)
        index.insert((2, "x"), 2)
        assert index.prefix_lookup((1,)) == {0, 1}
        assert index.prefix_lookup((2,)) == {2}
        assert index.prefix_lookup((3,)) == frozenset()
        assert index.prefix_lookup((1, "y")) == {1}
        assert index.prefix_lookup((CNULL,)) == frozenset()


class TestHeapTable:
    def test_insert_scan(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["CrowdDB"], ("title",)))
        rows = list(heap.scan())
        assert len(rows) == 1
        assert rows[0].values == ("CrowdDB", CNULL, CNULL)

    def test_crowd_columns_default_to_cnull(self, talk_engine):
        heap = talk_engine.table("Talk")
        values = heap.prepare_values(["Qurk"], ("title",))
        assert values == ("Qurk", CNULL, CNULL)

    def test_full_tuple_insert(self, talk_engine):
        heap = talk_engine.table("Talk")
        values = heap.prepare_values(["T", "Abs", 10])
        assert values == ("T", "Abs", 10)

    def test_wrong_arity(self, talk_engine):
        heap = talk_engine.table("Talk")
        with pytest.raises(StorageError, match="expects 3 values"):
            heap.prepare_values(["a", "b"])

    def test_duplicate_insert_column(self, talk_engine):
        heap = talk_engine.table("Talk")
        with pytest.raises(StorageError, match="duplicate column"):
            heap.prepare_values(["a", "b"], ("title", "TITLE"))

    def test_type_coercion_on_insert(self, talk_engine):
        heap = talk_engine.table("Talk")
        values = heap.prepare_values(
            ["T", "Abs", "42"], ("title", "abstract", "nb_attendees")
        )
        assert values[2] == 42

    def test_primary_key_enforced(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["X"], ("title",)))
        with pytest.raises(ConstraintError):
            heap.insert(heap.prepare_values(["X"], ("title",)))
        assert len(heap) == 1  # failed insert left nothing behind

    def test_not_null_enforced(self, talk_engine):
        heap = talk_engine.table("Talk")
        with pytest.raises(ConstraintError, match="NOT NULL"):
            heap.insert(heap.prepare_values([NULL, "a", 1]))

    def test_lookup_primary_key(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["X"], ("title",)))
        assert heap.lookup_primary_key(("X",)) is not None
        assert heap.lookup_primary_key(("Y",)) is None

    def test_delete_maintains_indexes(self, talk_engine):
        heap = talk_engine.table("Talk")
        row = heap.insert(heap.prepare_values(["X"], ("title",)))
        heap.delete(row.rowid)
        assert heap.lookup_primary_key(("X",)) is None
        heap.insert(heap.prepare_values(["X"], ("title",)))  # key reusable

    def test_update_changes_indexes(self, talk_engine):
        heap = talk_engine.table("Talk")
        row = heap.insert(heap.prepare_values(["X"], ("title",)))
        heap.update(row.rowid, ("Y", CNULL, CNULL))
        assert heap.lookup_primary_key(("X",)) is None
        assert heap.lookup_primary_key(("Y",)).rowid == row.rowid

    def test_update_unique_violation_leaves_state(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["X"], ("title",)))
        row = heap.insert(heap.prepare_values(["Y"], ("title",)))
        with pytest.raises(ConstraintError):
            heap.update(row.rowid, ("X", CNULL, CNULL))
        assert heap.lookup_primary_key(("Y",)) is not None

    def test_set_value(self, talk_engine):
        heap = talk_engine.table("Talk")
        row = heap.insert(heap.prepare_values(["X"], ("title",)))
        heap.set_value(row.rowid, "nb_attendees", 55)
        assert heap.get(row.rowid).values[2] == 55

    def test_get_unknown_rowid(self, talk_engine):
        with pytest.raises(StorageError):
            talk_engine.table("Talk").get(99)

    def test_secondary_index_backfill(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["X", "a", 1]))
        heap.insert(heap.prepare_values(["Y", "a", 2]))
        index = heap.create_index("by_abstract", ("abstract",))
        assert len(index.lookup(("a",))) == 2

    def test_index_on(self, talk_engine):
        heap = talk_engine.table("Talk")
        assert heap.index_on(("title",)) is not None
        assert heap.index_on(("abstract",)) is None


class TestStatistics:
    def test_row_count_and_cnull_fraction(self, talk_engine):
        heap = talk_engine.table("Talk")
        heap.insert(heap.prepare_values(["X"], ("title",)))
        heap.insert(heap.prepare_values(["Y", "abs", 5]))
        stats = heap.statistics
        assert stats.row_count == 2
        assert stats.cnull_fraction("abstract") == 0.5
        assert stats.column("title").distinct_count == 2

    def test_stats_follow_updates(self, talk_engine):
        heap = talk_engine.table("Talk")
        row = heap.insert(heap.prepare_values(["X"], ("title",)))
        heap.set_value(row.rowid, "abstract", "filled")
        assert heap.statistics.cnull_fraction("abstract") == 0.0
        heap.delete(row.rowid)
        assert heap.statistics.row_count == 0

    def test_selectivity(self, talk_engine):
        heap = talk_engine.table("Talk")
        for i in range(10):
            heap.insert(heap.prepare_values([f"T{i}", "same", i]))
        title_sel = heap.statistics.column("title").selectivity_equals()
        abstract_sel = heap.statistics.column("abstract").selectivity_equals()
        assert title_sel == pytest.approx(0.1)
        assert abstract_sel > title_sel  # fewer distinct values

    def test_unhashable_values_mark_ndv_as_lower_bound(self):
        from repro.storage.statistics import ColumnStatistics

        stats = ColumnStatistics("c")
        stats.add("hashable")
        assert not stats.distinct_is_lower_bound
        stats.add(["un", "hashable"])
        stats.add(["un", "hashable"])  # same repr: collapses
        assert stats.distinct_is_lower_bound
        assert stats.distinct_count == 2  # a lower bound, not exact


class TestStorageEngine:
    def test_foreign_key_enforced(self):
        engine = StorageEngine()
        engine.create_table(schema_of("CREATE TABLE Talk (title STRING PRIMARY KEY)"))
        engine.create_table(
            schema_of(
                "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, "
                "FOREIGN KEY (title) REF Talk(title))"
            )
        )
        engine.insert("Talk", ["CrowdDB"])
        engine.insert("n", ["Mike", "CrowdDB"])
        with pytest.raises(ConstraintError, match="foreign key"):
            engine.insert("n", ["Eve", "Unknown"])

    def test_missing_fk_value_not_checked(self):
        engine = StorageEngine()
        engine.create_table(schema_of("CREATE TABLE Talk (title STRING PRIMARY KEY)"))
        engine.create_table(
            schema_of(
                "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, "
                "FOREIGN KEY (title) REF Talk(title))"
            )
        )
        engine.insert("n", ["Mike", NULL])  # SQL semantics: not checked

    def test_create_drop(self):
        engine = StorageEngine()
        engine.create_table(schema_of("CREATE TABLE t (a INT)"))
        assert engine.has_table("T")
        engine.drop_table("t")
        assert not engine.has_table("t")
        assert engine.drop_table("t", if_exists=True) is False

    def test_if_not_exists(self):
        engine = StorageEngine()
        engine.create_table(schema_of("CREATE TABLE t (a INT)"))
        created = engine.create_table(
            schema_of("CREATE TABLE t (a INT)"), if_not_exists=True
        )
        assert created is False


class TestTransactionLog:
    def test_operations_logged(self, talk_engine):
        talk_engine.insert("Talk", ["X"], ("title",))
        row = talk_engine.insert("Talk", ["Y"], ("title",))
        talk_engine.set_value("Talk", row.rowid, "abstract", "abs", origin="crowd")
        talk_engine.delete("Talk", row.rowid)
        ops = [entry.op for entry in talk_engine.log]
        assert ops == [
            LogOp.CREATE_TABLE,
            LogOp.INSERT,
            LogOp.INSERT,
            LogOp.UPDATE,
            LogOp.DELETE,
        ]

    def test_crowd_entries_tracked(self, talk_engine):
        row = talk_engine.insert("Talk", ["X"], ("title",))
        talk_engine.set_value("Talk", row.rowid, "abstract", "a", origin="crowd")
        crowd = talk_engine.log.crowd_entries()
        assert len(crowd) == 1 and crowd[0].op is LogOp.UPDATE

    def test_replay_rebuilds_state(self, talk_engine):
        talk_engine.insert("Talk", ["X"], ("title",))
        row = talk_engine.insert("Talk", ["Y"], ("title",))
        talk_engine.set_value("Talk", row.rowid, "nb_attendees", 9)
        talk_engine.delete("Talk", 0)
        rebuilt = StorageEngine.replay(talk_engine.log)
        values = [r.values for r in rebuilt.table("Talk").scan()]
        assert values == [("Y", CNULL, 9)]


class TestScope:
    def test_resolve_qualified(self):
        scope = Scope([("t", "a"), ("u", "a"), ("t", "b")])
        assert scope.resolve("a", "t") == 0
        assert scope.resolve("a", "u") == 1
        assert scope.resolve("b") == 2

    def test_ambiguous_unqualified(self):
        from repro.errors import ExecutionError

        scope = Scope([("t", "a"), ("u", "a")])
        with pytest.raises(ExecutionError, match="ambiguous"):
            scope.resolve("a")

    def test_same_binding_duplicate_is_not_ambiguous(self):
        scope = Scope([("t", "a"), ("t", "a")])
        assert scope.resolve("a") == 0

    def test_missing_column(self):
        from repro.errors import ExecutionError

        scope = Scope([("t", "a")])
        with pytest.raises(ExecutionError, match="not found"):
            scope.resolve("zz")

    def test_concat_and_rename(self):
        left = Scope([("t", "a")])
        right = Scope([("u", "b")])
        combined = left.concat(right)
        assert combined.resolve("b", "u") == 1
        renamed = combined.rename("s")
        assert renamed.resolve("a", "s") == 0

    def test_positions_for_binding(self):
        scope = Scope([("t", "a"), ("u", "b"), ("t", "c")])
        assert scope.positions_for_binding("t") == [0, 2]
