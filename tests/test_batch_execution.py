"""Batch crowd execution: batch-vs-per-row equivalence and HIT groups.

The batch path must change the *schedule* of crowd work, never its
answers: under one seed and a near-perfect simulated crowd (the E12/E13
convention — quality control is covered by the noisy-crowd tests), a
query run with ``batch_size=1``, ``batch_size=16``, and
``hit_group_size=4`` returns identical ResultSets and leaves identical
memorized storage state.  The scheduler additionally must resume a
session suspended on a whole *set* of futures only once the set settled.
"""

import pytest

from repro import CrowdConfig, connect, serve
from repro.catalog.ddl import build_table_schema
from repro.crowd.model import FillGroupTask, FillTask, reset_id_counters
from repro.crowd.platform import PlatformRegistry
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.sim.behavior import BehaviorConfig
from repro.crowd.sim.population import generate_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import TaskManager
from repro.server.session import Session, SessionState
from repro.sql.parser import parse
from repro.storage.engine import StorageEngine
from repro.ui.manager import UITemplateManager

SEED = 19
CITIES = 12


def city_oracle(count: int = CITIES) -> GroundTruthOracle:
    oracle = GroundTruthOracle()
    for i in range(count):
        oracle.load_fill(
            "City",
            (f"city{i:02d}",),
            {"population": 1000 + 31 * i, "elevation": 7 * i},
        )
    return oracle


def picture_oracle(count: int = 8) -> GroundTruthOracle:
    oracle = GroundTruthOracle()
    scores = {f"picture{i:02d}": float(i) for i in range(count)}
    oracle.load_ranking("Which picture is better?", scores)
    return oracle


def near_perfect_db(oracle: GroundTruthOracle, **config_kwargs):
    """Deterministic high-skill AMT instance: different schedules must
    still produce identical answers (E12's equivalence convention)."""
    reset_id_counters()
    workers = generate_population(
        200, seed=SEED, skill_range=(0.995, 1.0), id_prefix="amt-"
    )
    platform = SimulatedAMT(
        oracle,
        workers=workers,
        seed=SEED,
        config=BehaviorConfig(base_accuracy=0.999),
    )
    return connect(
        oracle=oracle,
        seed=SEED,
        platforms=(platform,),
        default_platform="amt",
        crowd_config=CrowdConfig(**config_kwargs),
    )


def city_db(**config_kwargs):
    db = near_perfect_db(city_oracle(), **config_kwargs)
    db.execute(
        "CREATE TABLE City (name STRING PRIMARY KEY, "
        "population CROWD INTEGER, elevation CROWD INTEGER)"
    )
    for i in range(CITIES):
        db.execute(f"INSERT INTO City (name) VALUES ('city{i:02d}')")
    return db


def heap_state(db, table: str):
    return sorted(row.values for row in db.engine.table(table).scan())


class TestBatchFillEquivalence:
    CONFIGS = [
        dict(batch_size=1, hit_group_size=1),
        dict(batch_size=16, hit_group_size=1),
        dict(batch_size=16, hit_group_size=4),
    ]

    @pytest.fixture(scope="class")
    def runs(self):
        results = []
        for config in self.CONFIGS:
            db = city_db(**config)
            result = db.execute(
                "SELECT name, population, elevation FROM City"
            )
            results.append(
                {
                    "rows": sorted(result.rows),
                    "heap": heap_state(db, "City"),
                    "stats": db.crowd_stats,
                }
            )
        return results

    def test_identical_result_sets(self, runs):
        baseline = runs[0]["rows"]
        assert runs[1]["rows"] == baseline
        assert runs[2]["rows"] == baseline

    def test_identical_memorized_storage(self, runs):
        baseline = runs[0]["heap"]
        assert runs[1]["heap"] == baseline
        assert runs[2]["heap"] == baseline

    def test_hit_groups_post_fewer_hits_same_cost(self, runs):
        per_row, batched, grouped = runs
        assert batched["stats"]["hits_posted"] == per_row["stats"]["hits_posted"]
        assert grouped["stats"]["hits_posted"] < per_row["stats"]["hits_posted"]
        assert grouped["stats"]["cost_cents"] == per_row["stats"]["cost_cents"]


class TestCrowdEqualBatchEquivalence:
    def _db(self, **config_kwargs):
        oracle = GroundTruthOracle()
        oracle.declare_same_entity("IBM", "I.B.M.", "ibm corp")
        oracle.declare_same_entity("SAP", "S.A.P.")
        db = near_perfect_db(oracle, **config_kwargs)
        db.execute("CREATE TABLE Company (name STRING PRIMARY KEY)")
        for name in ("I.B.M.", "ibm corp", "S.A.P.", "Oracle", "HP"):
            db.execute(f"INSERT INTO Company (name) VALUES ('{name}')")
        return db

    def test_prefetched_ballots_match_per_row(self):
        answers = []
        stats = []
        for batch_size in (1, 16):
            db = self._db(batch_size=batch_size)
            result = db.execute(
                "SELECT name FROM Company WHERE CROWDEQUAL(name, 'IBM')"
            )
            answers.append(sorted(result.rows))
            stats.append(db.crowd_stats)
        assert answers[0] == answers[1] == [("I.B.M.",), ("ibm corp",)]
        # prefetching changes when ballots are posted, not how many
        assert stats[0]["compare_requests"] == stats[1]["compare_requests"]
        assert stats[0]["hits_posted"] == stats[1]["hits_posted"]


class TestCrowdOrderBatchEquivalence:
    def _rows(self, sql: str, batch_size: int):
        db = near_perfect_db(picture_oracle(), batch_size=batch_size)
        db.execute("CREATE TABLE Picture (name STRING PRIMARY KEY)")
        for i in range(8):
            db.execute(f"INSERT INTO Picture (name) VALUES ('picture{i:02d}')")
        return db.execute(sql).rows

    def test_full_sort_identical(self):
        sql = (
            "SELECT name FROM Picture "
            "ORDER BY CROWDORDER(name, 'Which picture is better?')"
        )
        assert self._rows(sql, 1) == self._rows(sql, 16)

    def test_top_k_identical(self):
        sql = (
            "SELECT name FROM Picture "
            "ORDER BY CROWDORDER(name, 'Which picture is better?') "
            "LIMIT 3"
        )
        assert self._rows(sql, 1) == self._rows(sql, 16)
        assert self._rows(sql, 16) == [
            ("picture07",), ("picture06",), ("picture05",)
        ]


class TestFillGroupTaskManager:
    TALK = build_table_schema(
        parse(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING)"
        )
    )

    def _manager(self, answer_fn, hit_group_size):
        registry = PlatformRegistry()
        platform = ScriptedPlatform(answer_fn)
        registry.register(platform)
        ui = UITemplateManager(StorageEngine().catalog)
        manager = TaskManager(
            registry, ui, config=CrowdConfig(hit_group_size=hit_group_size)
        )
        return manager, platform

    def test_groups_fan_out_to_member_futures(self):
        def answer(task, replica):
            if isinstance(task, FillGroupTask):
                return [
                    {"abstract": f"abstract of {subtask.primary_key[0]}"}
                    for subtask in task.subtasks
                ]
            return {"abstract": f"abstract of {task.primary_key[0]}"}

        manager, platform = self._manager(answer, hit_group_size=2)
        requests = [
            (self.TALK, (f"talk{i}",), ("abstract",), {"title": f"talk{i}"})
            for i in range(3)
        ]
        futures = manager.begin_fill_many(requests)
        manager.wait_many(futures)
        values = [future.result()["abstract"] for future in futures]
        assert values == [f"abstract of talk{i}" for i in range(3)]
        # 3 tasks in groups of 2 -> 2 HITs (2 + 1)
        assert manager.stats.hits_posted == 2
        assert len(platform.posted_tasks) == 2
        assert isinstance(platform.posted_tasks[0], FillGroupTask)
        assert isinstance(platform.posted_tasks[1], FillTask)

    def test_group_reward_scales_with_size(self):
        def answer(task, replica):
            return [{"abstract": "x"}] * len(task.subtasks)

        manager, platform = self._manager(answer, hit_group_size=4)
        requests = [
            (self.TALK, (f"talk{i}",), ("abstract",), {"title": f"talk{i}"})
            for i in range(4)
        ]
        futures = manager.begin_fill_many(requests)
        manager.wait_many(futures)
        (hit,) = platform._hits.values()
        assert hit.reward_cents == manager.config.reward_cents * 4
        # total cost equals four individual HITs
        assert manager.stats.cost_cents == (
            4 * manager.config.reward_cents * manager.config.replication
        )


class _FakeFuture:
    def __init__(self):
        self.settled = False


class TestMultiFutureSuspension:
    def test_session_resumes_only_when_whole_set_settles(self):
        from repro.engine.executor import Executor

        session = Session(1, Executor(StorageEngine()))
        first, second = _FakeFuture(), _FakeFuture()
        session.state = SessionState.WAITING
        session.waiting_on = [first, second]
        assert session.waiting_futures() == (first, second)
        assert not session.runnable()
        first.settled = True
        assert not session.runnable()
        second.settled = True
        assert session.runnable()
        session.state = SessionState.CLOSED

    def test_server_runs_batched_query_to_completion(self):
        server = serve(
            connection=city_db(batch_size=16, hit_group_size=1)
        )
        session = server.open_session().submit(
            "SELECT name, population FROM City"
        )
        server.run()
        rows = sorted(session.last_result().rows)
        assert rows == [
            (f"city{i:02d}", 1000 + 31 * i) for i in range(CITIES)
        ]
        # the whole window suspended once, not once per CNULL row
        assert server.scheduler.stats.suspensions < CITIES
        assert server.scheduler.stats.futures_settled >= CITIES
        server.shutdown()
