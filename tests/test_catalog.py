"""Unit tests for catalog schemas, DDL translation, and the registry."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.column import Column
from repro.catalog.ddl import build_table_schema
from repro.catalog.table import ForeignKey, TableSchema
from repro.errors import CatalogError
from repro.sql.parser import parse
from repro.sqltypes import CNULL, NULL, SQLType


def make_schema(sql):
    return build_table_schema(parse(sql))


TALK = (
    "CREATE TABLE Talk (title STRING PRIMARY KEY, "
    "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
)
ATTENDEE = (
    "CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, "
    "title STRING, FOREIGN KEY (title) REF Talk(title))"
)


class TestColumn:
    def test_missing_value_for_crowd_column(self):
        column = Column("abstract", SQLType.STRING, 1, crowd=True)
        assert column.missing_value is CNULL

    def test_missing_value_for_regular_column(self):
        column = Column("title", SQLType.STRING, 0)
        assert column.missing_value is NULL

    def test_missing_value_with_default(self):
        column = Column("n", SQLType.INTEGER, 0, default=7)
        assert column.missing_value == 7


class TestBuildSchema:
    def test_talk_example(self):
        schema = make_schema(TALK)
        assert not schema.crowd
        assert schema.primary_key == ("title",)
        assert [c.name for c in schema.crowd_columns] == [
            "abstract",
            "nb_attendees",
        ]
        assert schema.is_crowd_related

    def test_crowd_table_example(self):
        schema = make_schema(ATTENDEE)
        assert schema.crowd
        # in a CROWD table every non-key column is crowd-sourceable
        assert [c.name for c in schema.crowd_columns] == ["title"]
        assert schema.foreign_keys[0].ref_table == "Talk"

    def test_crowd_table_requires_primary_key(self):
        with pytest.raises(CatalogError, match="primary key"):
            make_schema("CREATE CROWD TABLE t (a STRING)")

    def test_crowd_primary_key_is_rejected(self):
        with pytest.raises(CatalogError, match="cannot be a CROWD column"):
            make_schema("CREATE TABLE t (a CROWD STRING PRIMARY KEY)")

    def test_table_level_primary_key(self):
        schema = make_schema(
            "CREATE TABLE t (a STRING, b INT, PRIMARY KEY (a, b))"
        )
        assert schema.primary_key == ("a", "b")
        assert schema.column("a").primary_key

    def test_pk_columns_are_not_null_unique(self):
        schema = make_schema(TALK)
        title = schema.column("title")
        assert title.not_null and title.unique

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError, match="duplicate column"):
            make_schema("CREATE TABLE t (a INT, A STRING)")

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(CatalogError):
            make_schema("CREATE TABLE t (a INT, PRIMARY KEY (b))")

    def test_non_literal_default_rejected(self):
        with pytest.raises(CatalogError, match="literal"):
            make_schema("CREATE TABLE t (a INT DEFAULT (1 + 2))")

    def test_regular_table_is_not_crowd_related(self):
        schema = make_schema("CREATE TABLE t (a INT)")
        assert not schema.is_crowd_related
        assert schema.crowd_columns == ()


class TestSchemaLookups:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema(TALK)
        assert schema.column("TITLE").name == "title"
        assert schema.has_column("Abstract")
        assert schema.column_index("nb_attendees") == 2

    def test_unknown_column_raises(self):
        schema = make_schema(TALK)
        with pytest.raises(CatalogError):
            schema.column("speaker")

    def test_known_columns(self):
        schema = make_schema(TALK)
        assert [c.name for c in schema.known_columns] == ["title"]

    def test_foreign_key_to(self):
        schema = make_schema(ATTENDEE)
        assert schema.foreign_key_to("talk") is not None
        assert schema.foreign_key_to("other") is None

    def test_str(self):
        assert "CROWD TABLE" in str(make_schema(ATTENDEE))


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(make_schema(TALK))
        assert "talk" in catalog
        assert catalog.table("TALK").name == "Talk"
        assert len(catalog) == 1

    def test_duplicate_registration_rejected(self):
        catalog = Catalog()
        catalog.register(make_schema(TALK))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.register(make_schema(TALK))

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError, match="no such table"):
            Catalog().table("missing")

    def test_foreign_key_target_must_exist(self):
        catalog = Catalog()
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.register(make_schema(ATTENDEE))

    def test_foreign_key_target_column_must_exist(self):
        catalog = Catalog()
        catalog.register(make_schema("CREATE TABLE Talk (name STRING)"))
        with pytest.raises(CatalogError, match="unknown column"):
            catalog.register(make_schema(ATTENDEE))

    def test_drop_blocked_by_reference(self):
        catalog = Catalog()
        catalog.register(make_schema(TALK))
        catalog.register(make_schema(ATTENDEE))
        with pytest.raises(CatalogError, match="referenced by"):
            catalog.drop("Talk")
        catalog.drop("NotableAttendee")
        assert catalog.drop("Talk")

    def test_drop_if_exists(self):
        catalog = Catalog()
        assert catalog.drop("nope", if_exists=True) is False
        with pytest.raises(CatalogError):
            catalog.drop("nope")

    def test_version_bumps_on_ddl(self):
        catalog = Catalog()
        before = catalog.version
        catalog.register(make_schema(TALK))
        assert catalog.version == before + 1
        catalog.drop("Talk")
        assert catalog.version == before + 2

    def test_referencing_tables(self):
        catalog = Catalog()
        catalog.register(make_schema(TALK))
        catalog.register(make_schema(ATTENDEE))
        refs = catalog.referencing_tables("Talk")
        assert [schema.name for schema in refs] == ["NotableAttendee"]

    def test_mismatched_fk_columns(self):
        catalog = Catalog()
        catalog.register(make_schema(TALK))
        schema = TableSchema(
            name="bad",
            columns=(Column("x", SQLType.STRING, 0),),
            foreign_keys=(ForeignKey(("x",), "Talk", ("title", "abstract")),),
        )
        with pytest.raises(CatalogError, match="mismatched"):
            catalog.register(schema)
