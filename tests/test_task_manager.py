"""Tests for the Task Manager (posting, voting, caching, budget)."""

import pytest

from repro.catalog.ddl import build_table_schema
from repro.crowd.model import CompareEqualTask, FillTask, NewTupleTask
from repro.crowd.platform import PlatformRegistry
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import CrowdConfig, TaskManager
from repro.errors import BudgetExceededError
from repro.sql.parser import parse
from repro.sqltypes import NULL
from repro.storage.engine import StorageEngine
from repro.ui.manager import UITemplateManager

TALK = build_table_schema(
    parse(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, "
        "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
    )
)
ATTENDEE_SQL = (
    "CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, "
    "title STRING)"
)
ATTENDEE = build_table_schema(parse(ATTENDEE_SQL))


def make_tm(answer_fn, config=None):
    registry = PlatformRegistry()
    platform = ScriptedPlatform(answer_fn)
    registry.register(platform)
    ui = UITemplateManager(StorageEngine().catalog)
    return TaskManager(registry, ui, config=config), platform


class TestFillValues:
    def test_majority_vote_and_typing(self):
        answers = iter(
            [
                {"abstract": " The abstract ", "nb_attendees": "120"},
                {"abstract": "the abstract", "nb_attendees": "120"},
                {"abstract": "something else", "nb_attendees": "80"},
            ]
        )
        tm, _ = make_tm(lambda task, replica: next(answers))
        result = tm.fill_values(
            TALK, ("CrowdDB",), ("abstract", "nb_attendees"), {"title": "CrowdDB"}
        )
        assert result["abstract"].strip().lower() == "the abstract"
        assert result["nb_attendees"] == 120  # typed, not a string

    def test_no_answers_yields_null(self):
        tm, _ = make_tm(lambda task, replica: None)
        result = tm.fill_values(TALK, ("X",), ("abstract",), {})
        assert result["abstract"] is NULL
        assert tm.stats.timeouts == 1

    def test_blank_answers_ignored(self):
        tm, _ = make_tm(lambda task, replica: {"abstract": "  "})
        result = tm.fill_values(TALK, ("X",), ("abstract",), {})
        assert result["abstract"] is NULL

    def test_unparseable_numeric_becomes_null(self):
        tm, _ = make_tm(lambda task, replica: {"nb_attendees": "lots"})
        result = tm.fill_values(TALK, ("X",), ("nb_attendees",), {})
        assert result["nb_attendees"] is NULL

    def test_stats_counted(self):
        tm, platform = make_tm(lambda task, replica: {"abstract": "x"})
        tm.fill_values(TALK, ("X",), ("abstract",), {})
        assert tm.stats.hits_posted == 1
        assert tm.stats.assignments_received == 3
        assert tm.stats.fill_requests == 1
        assert tm.stats.cost_cents == 6  # 3 assignments x 2c default
        assert isinstance(platform.posted_tasks[0], FillTask)

    def test_form_html_instantiated(self):
        tm, platform = make_tm(lambda task, replica: {"abstract": "x"})
        tm.fill_values(TALK, ("CrowdDB",), ("abstract",), {"title": "CrowdDB"})
        hit = platform.all_hits()[0] if hasattr(platform, "all_hits") else None
        # the scripted platform stores hits internally; fetch via get_hit
        posted = platform.posted_tasks[0]
        assert posted.known_values == {"title": "CrowdDB"}


class TestSourceNewTuples:
    def test_distinct_keys_become_distinct_tuples(self):
        answers = iter(
            [
                {"name": "Mike Franklin", "title": "CrowdDB"},
                {"name": "Donald Kossmann", "title": "CrowdDB"},
                {"name": "mike franklin", "title": "CrowdDB"},
            ]
        )
        tm, _ = make_tm(lambda task, replica: next(answers))
        tuples = tm.source_new_tuples(ATTENDEE, 1, fixed_values={"title": "CrowdDB"})
        names = sorted(t["name"] for t in tuples)
        assert names == ["Donald Kossmann", "Mike Franklin"]
        for t in tuples:
            assert t["title"] == "CrowdDB"

    def test_known_keys_are_dropped(self):
        tm, _ = make_tm(lambda task, replica: {"name": "Mike", "title": "T"})
        tuples = tm.source_new_tuples(
            ATTENDEE, 1, known_keys={("mike",)}
        )
        assert tuples == []

    def test_answers_without_key_are_dropped(self):
        tm, _ = make_tm(lambda task, replica: {"name": "", "title": "T"})
        assert tm.source_new_tuples(ATTENDEE, 1) == []

    def test_empty_answers_are_dropped(self):
        tm, _ = make_tm(lambda task, replica: {})
        assert tm.source_new_tuples(ATTENDEE, 2) == []

    def test_count_posts_that_many_hits(self):
        tm, platform = make_tm(lambda task, replica: {"name": f"w{replica}", "title": "T"})
        tm.source_new_tuples(ATTENDEE, 3)
        assert tm.stats.hits_posted == 3
        assert all(isinstance(t, NewTupleTask) for t in platform.posted_tasks)


class TestCompare:
    def test_compare_equal_votes(self):
        ballots = iter([True, True, False])
        tm, _ = make_tm(lambda task, replica: next(ballots))
        assert tm.compare_equal("I.B.M.", "IBM") is True

    def test_compare_equal_cached_both_directions(self):
        calls = []

        def answer(task, replica):
            calls.append(task)
            return True

        tm, _ = make_tm(answer)
        assert tm.compare_equal("A Corp", "B Corp")
        assert tm.compare_equal("B Corp", "A Corp")  # mirrored cache hit
        assert tm.stats.compare_requests == 1
        assert tm.stats.cache_hits == 1

    def test_compare_equal_normalized_cache_key(self):
        tm, _ = make_tm(lambda task, replica: True)
        tm.compare_equal("IBM", "Oracle")
        tm.compare_equal(" ibm ", "ORACLE")
        assert tm.stats.compare_requests == 1

    def test_compare_order(self):
        tm, _ = make_tm(
            lambda task, replica: "left" if str(task.left) < str(task.right) else "right"
        )
        assert tm.compare_order("A", "B", "q") is True
        assert tm.compare_order("B", "A", "q") is False  # mirrored cache
        assert tm.stats.compare_requests == 1

    def test_compare_order_identical_values(self):
        tm, _ = make_tm(lambda task, replica: "left")
        assert tm.compare_order("same", "same", "q") is True
        assert tm.stats.compare_requests == 0

    def test_no_ballots_defaults(self):
        tm, _ = make_tm(lambda task, replica: None)
        assert tm.compare_equal("a", "b") is False
        assert tm.compare_order("a", "b", "q") is True


class TestBudget:
    def test_budget_enforced(self):
        config = CrowdConfig(replication=3, reward_cents=2, budget_cents=10)
        tm, _ = make_tm(lambda task, replica: {"abstract": "x"}, config)
        tm.fill_values(TALK, ("A",), ("abstract",), {})  # 6c spent
        with pytest.raises(BudgetExceededError):
            tm.fill_values(TALK, ("B",), ("abstract",), {})  # would be 12c

    def test_budget_allows_exact_fit(self):
        config = CrowdConfig(replication=3, reward_cents=2, budget_cents=12)
        tm, _ = make_tm(lambda task, replica: {"abstract": "x"}, config)
        tm.fill_values(TALK, ("A",), ("abstract",), {})
        tm.fill_values(TALK, ("B",), ("abstract",), {})
        assert tm.stats.cost_cents == 12


class TestOracleAnswerFn:
    def test_scripted_oracle_integration(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("Talk", ("CrowdDB",), {"abstract": "text"})
        oracle.declare_same_entity("IBM", "I.B.M.")
        tm, _ = make_tm(oracle_answer_fn(oracle))
        filled = tm.fill_values(TALK, ("CrowdDB",), ("abstract",), {})
        assert filled["abstract"] == "text"
        assert tm.compare_equal("IBM", "I.B.M.") is True
