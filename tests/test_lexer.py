"""Unit tests for the CrowdSQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF

    def test_keywords_are_case_insensitive(self):
        for text in ("select", "SELECT", "SeLeCt"):
            token = tokenize(text)[0]
            assert token.type is TokenType.KEYWORD and token.value == "SELECT"

    def test_identifier(self):
        token = tokenize("nb_attendees")[0]
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "nb_attendees"

    def test_crowd_keywords(self):
        for word in ("CROWD", "CNULL", "CROWDEQUAL", "CROWDORDER"):
            assert tokenize(word)[0].type is TokenType.KEYWORD

    def test_positions(self):
        tokens = tokenize("SELECT\n  title")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestLiterals:
    def test_integer(self):
        assert values("42") == [42]

    def test_float(self):
        assert values("3.25") == [3.25]

    def test_leading_dot_float(self):
        assert values(".5") == [0.5]

    def test_scientific(self):
        assert values("1e3 2.5E-1") == [1000.0, 0.25]

    def test_single_quoted_string(self):
        assert values("'CrowdDB'") == ["CrowdDB"]

    def test_double_quoted_string(self):
        # the paper writes WHERE title = "CrowdDB"
        assert values('"CrowdDB"') == ["CrowdDB"]

    def test_quote_escaping(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_backtick_identifier(self):
        tokens = tokenize("`select`")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "select"


class TestOperators:
    def test_two_char_operators(self):
        assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_single_char_operators(self):
        assert values("= < > + - * / %") == ["=", "<", ">", "+", "-", "*", "/", "%"]

    def test_parameter(self):
        tokens = tokenize("?")
        assert tokens[0].type is TokenType.PARAMETER

    def test_punctuation(self):
        assert values("( ) , ; .") == ["(", ")", ",", ";", "."]

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("SELECT @")
        assert excinfo.value.column == 8


class TestComments:
    def test_line_comment(self):
        assert values("SELECT -- the select list\n1") == ["SELECT", 1]

    def test_block_comment(self):
        assert values("SELECT /* hi\nthere */ 1") == ["SELECT", 1]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("SELECT /* oops")


class TestTokenHelpers:
    def test_matches(self):
        token = tokenize("select")[0]
        assert token.matches(TokenType.KEYWORD, "SELECT")
        assert token.matches(TokenType.KEYWORD)
        assert not token.matches(TokenType.IDENTIFIER)

    def test_full_statement_shape(self):
        source = "SELECT abstract FROM paper WHERE title = 'CrowdDB';"
        assert kinds(source) == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.OPERATOR,
            TokenType.STRING,
            TokenType.PUNCTUATION,
            TokenType.EOF,
        ]
