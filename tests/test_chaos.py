"""Network chaos: detach/resume, exactly-once delivery, fault proxy.

Drives the wire protocol through :class:`~repro.net.chaos.ChaosProxy`
and asserts the containment invariants: a torn connection never loses or
duplicates a result row, a retried statement never executes (or buys)
twice, detached sessions are bounded by TTL and buffer caps, and slow
consumers throttle statement admission instead of ballooning memory.
"""

from __future__ import annotations

import re
import socket
import threading
import time

import pytest

from repro.errors import ConnectionLostError, NetworkProtocolError, RemoteError
from repro.net import connect_tcp, serve_tcp
from repro.net import protocol
from repro.net.chaos import ChaosProxy

ROWS = protocol.PAGE_ROWS * 3  # several result pages per SELECT


def metric(net, name: str) -> float:
    """Read one counter/gauge from the server's text exposition."""
    text = net.server.metrics_text()
    match = re.search(rf"^crowddb_{name} (\S+)$", text, re.MULTILINE)
    return float(match.group(1)) if match else 0.0


def seed_big_table(client, rows: int = ROWS) -> None:
    client.execute("CREATE TABLE big (n INTEGER);")
    script = "".join(f"INSERT INTO big VALUES ({i});" for i in range(rows))
    client.execute(script)


def wait_for_metric(net, name: str, floor: float = 1.0,
                    timeout: float = 5.0) -> float:
    """Poll a server metric until it reaches ``floor`` (pump-thread
    counters lag the socket events that cause them)."""
    deadline = time.monotonic() + timeout
    value = metric(net, name)
    while value < floor and time.monotonic() < deadline:
        time.sleep(0.02)
        value = metric(net, name)
    return value


@pytest.fixture
def net():
    server = serve_tcp()
    yield server
    server.close()


@pytest.fixture
def proxy(net):
    with ChaosProxy(net.host, net.port) as chaos:
        yield chaos


class TestChaosProxy:
    def test_unarmed_proxy_is_transparent(self, net, proxy):
        with connect_tcp(proxy.host, proxy.port) as client:
            seed_big_table(client, rows=10)
            result = client.execute("SELECT n FROM big ORDER BY n;")
            assert [r[0] for r in result.rows] == list(range(10))
        assert proxy.stats["connections"] == 1
        assert proxy.stats["frames_down"] > 0
        assert proxy.stats["kills"] == 0

    def test_kill_mid_stream_resume_exactly_once(self, net, proxy):
        with connect_tcp(net.host, net.port) as seeder:
            seed_big_table(seeder)
        proxy.arm(kill_after_frames=2)  # welcome + one result page
        client = connect_tcp(proxy.host, proxy.port)
        with pytest.raises(ConnectionLostError) as info:
            client.execute("SELECT n FROM big ORDER BY n;")
        lost = info.value
        assert lost.token
        assert lost.rows  # the page before the kill was kept
        # the dead socket's handler detaches the session; wait for it so
        # the metric assertions below are deterministic
        assert wait_for_metric(net, "net_detaches_total") >= 1
        resumed = connect_tcp(net.host, net.port, resume=lost.token,
                              have=lost.have)
        result = resumed.resume_execute(lost)
        resumed.close()
        values = sorted(r[0] for r in result.rows)
        assert values == list(range(ROWS))  # every row exactly once
        assert result.status == "complete"
        assert proxy.stats["kills"] == 1
        assert metric(net, "net_detaches_total") >= 1
        assert metric(net, "net_resumes_total") >= 1
        assert metric(net, "net_replayed_frames_total") >= 1

    def test_torn_frame_resume_exactly_once(self, net, proxy):
        with connect_tcp(net.host, net.port) as seeder:
            seed_big_table(seeder)
        proxy.arm(kill_after_frames=2, tear=True)  # die mid-frame
        client = connect_tcp(proxy.host, proxy.port)
        with pytest.raises(ConnectionLostError) as info:
            client.execute("SELECT n FROM big ORDER BY n;")
        lost = info.value
        resumed = connect_tcp(net.host, net.port, resume=lost.token,
                              have=lost.have)
        result = resumed.resume_execute(lost)
        resumed.close()
        assert sorted(r[0] for r in result.rows) == list(range(ROWS))
        assert proxy.stats["torn"] == 1

    def test_duplicated_frames_are_deduplicated(self, net, proxy):
        with connect_tcp(net.host, net.port) as seeder:
            seed_big_table(seeder)
        proxy.arm(duplicate_frames=True)
        with connect_tcp(proxy.host, proxy.port) as client:
            result = client.execute("SELECT n FROM big ORDER BY n;")
        assert sorted(r[0] for r in result.rows) == list(range(ROWS))
        assert proxy.stats["duplicated_frames"] > 0

    def test_duplicated_statements_execute_once(self, net, proxy):
        proxy.arm(duplicate_statements=True)
        with connect_tcp(proxy.host, proxy.port) as client:
            client.execute("CREATE TABLE ledger (n INTEGER);")
            client.execute("INSERT INTO ledger VALUES (1);")
            result = client.execute("SELECT COUNT(*) FROM ledger;")
        # the duplicated INSERT frame was dropped by statement-id dedup:
        # a retried submission never executes (or spends) twice
        assert result.rows == [(1,)]
        assert proxy.stats["duplicated_statements"] >= 1
        assert metric(net, "net_duplicate_statements_total") >= 1


class TestDetachLifecycle:
    def test_detach_ttl_reaps_abandoned_sessions(self):
        net = serve_tcp(detach_ttl_seconds=0.05)
        try:
            client = connect_tcp(net.host, net.port)
            client.execute("SELECT 1;")
            token = client.token
            # unclean drop: no goodbye frame, the session detaches
            client._sock.shutdown(socket.SHUT_RDWR)
            client._sock.close()
            assert wait_for_metric(net, "net_detach_expired_total") >= 1
            with pytest.raises((RemoteError, NetworkProtocolError)):
                connect_tcp(net.host, net.port, resume=token)
            assert metric(net, "net_resume_failures_total") >= 1
        finally:
            net.close()

    def test_resume_with_bogus_token_is_refused(self, net):
        with pytest.raises((RemoteError, NetworkProtocolError)):
            connect_tcp(net.host, net.port, resume="not-a-real-token")
        assert metric(net, "net_resume_failures_total") >= 1

    def test_detached_buffer_overflow_kills_session(self):
        # tiny buffer: the unacked frames of one big SELECT exceed it
        net = serve_tcp(page_buffer_frames=8, detach_ttl_seconds=30.0)
        try:
            client = connect_tcp(net.host, net.port)
            seed_big_table(client, rows=protocol.PAGE_ROWS * 12)
            token = client.token
            # read nothing back: submit and immediately drop uncleanly
            client._send(protocol.statement_frame(99, "SELECT n FROM big;"))
            client._sock.shutdown(socket.SHUT_RDWR)
            client._sock.close()
            assert wait_for_metric(net, "net_detach_overflow_total") >= 1
            with pytest.raises((RemoteError, NetworkProtocolError)):
                connect_tcp(net.host, net.port, resume=token)
        finally:
            net.close()


class TestBackpressure:
    def test_slow_consumer_throttles_statement_admission(self):
        net = serve_tcp(page_buffer_frames=16)  # high watermark: 8 frames
        try:
            sock = socket.create_connection((net.host, net.port), timeout=30)
            sock.sendall(protocol.pack_frame(protocol.hello_frame()))
            welcome = protocol.read_frame_blocking(sock)
            assert welcome["type"] == "welcome"
            sock.sendall(protocol.pack_frame(
                protocol.statement_frame(
                    1,
                    "CREATE TABLE big (n INTEGER);"
                    + "".join(
                        f"INSERT INTO big VALUES ({i});"
                        for i in range(protocol.PAGE_ROWS * 4)
                    ),
                )
            ))
            # three multi-page SELECTs with every ack withheld: the
            # unacked buffer crosses the high watermark (8 frames) and
            # statement 4 is held back instead of queuing more output
            for statement_id in (2, 3, 4):
                sock.sendall(protocol.pack_frame(
                    protocol.statement_frame(
                        statement_id, "SELECT n FROM big;"
                    )
                ))
            done = set()
            have = -1
            while not done >= {1, 2, 3}:
                frame = protocol.read_frame_blocking(sock)
                assert frame is not None
                fseq = frame.get("fseq")
                if fseq is not None:
                    have = max(have, fseq)
                if frame.get("type") == "done":
                    done.add(frame["id"])
            assert wait_for_metric(
                net, "net_backpressure_throttles_total"
            ) >= 1
            # release the backpressure: ack everything seen so far and
            # the throttled statement runs to completion
            sock.sendall(protocol.pack_frame(protocol.ack_frame(have)))
            while 4 not in done:
                frame = protocol.read_frame_blocking(sock)
                assert frame is not None
                if frame.get("type") == "done":
                    done.add(frame["id"])
            assert done == {1, 2, 3, 4}
            sock.close()
        finally:
            net.close()


# -- races: cancel vs completion, close vs detach -----------------------------


@pytest.mark.concurrency
class TestShutdownRaces:
    def test_cancel_races_statement_completion(self, net):
        """cancel() from another thread, fired at random points around
        statement completion, must never wedge the connection: each
        round ends in either a clean result or a remote cancellation,
        and the session keeps serving afterwards."""
        with connect_tcp(net.host, net.port) as client:
            seed_big_table(client)
            for round_no in range(10):
                timer = threading.Timer(
                    0.0005 * (round_no % 4), client.cancel
                )
                timer.start()
                try:
                    result = client.execute("SELECT n FROM big;")
                    assert len(result.rows) == ROWS
                except RemoteError as error:
                    assert error.remote_type == "StatementCancelled"
                finally:
                    timer.cancel()
            # the connection survived all ten rounds
            assert client.execute("SELECT COUNT(*) FROM big;").rows == [
                (ROWS,)
            ]

    def test_server_close_with_detached_session_does_not_hang(self):
        net = serve_tcp(detach_ttl_seconds=300.0)  # reaper won't help
        client = connect_tcp(net.host, net.port)
        client.execute("SELECT 1;")
        client._sock.shutdown(socket.SHUT_RDWR)  # detach, never resume
        client._sock.close()
        assert wait_for_metric(net, "net_detaches_total") >= 1
        closer = threading.Thread(target=net.close)
        closer.start()
        closer.join(timeout=10.0)
        assert not closer.is_alive(), "close() hung on a detached session"
