"""Unit tests for answer cleansing and majority voting."""

import warnings

import pytest

from repro.crowd.quality import MajorityVote, VoteResult, normalize_answer
from repro.errors import LowQualityWarning, QualityControlError


class TestNormalization:
    def test_whitespace_collapsed(self):
        assert normalize_answer("  New   York ") == "new york"

    def test_case_folded(self):
        assert normalize_answer("IBM") == normalize_answer("ibm")

    def test_punctuation_stripped(self):
        assert normalize_answer("I.B.M.") == "ibm"
        assert normalize_answer("don't") == "dont"

    def test_non_strings_pass_through(self):
        assert normalize_answer(42) == 42
        assert normalize_answer(True) is True


class TestMajorityVote:
    def test_simple_majority(self):
        result = MajorityVote().vote(["IBM", "IBM", "Oracle"])
        assert result.value == "IBM"
        assert result.votes == 2 and result.total == 3
        assert result.agreement == pytest.approx(2 / 3)
        assert not result.unanimous

    def test_normalized_classes_merge(self):
        result = MajorityVote().vote(["I.B.M.", " ibm ", "Oracle"])
        assert normalize_answer(result.value) == "ibm"
        assert result.votes == 2

    def test_representative_is_most_common_raw(self):
        result = MajorityVote().vote(["IBM", "IBM", "i.b.m.", "Oracle"])
        assert result.value == "IBM"

    def test_tie_breaks_to_first_received(self):
        result = MajorityVote().vote(["alpha", "beta"])
        assert result.value == "alpha"

    def test_unanimous(self):
        assert MajorityVote().vote(["x", "x"]).unanimous

    def test_zero_answers_raise(self):
        with pytest.raises(QualityControlError):
            MajorityVote().vote([])

    def test_low_agreement_warns(self):
        with pytest.warns(LowQualityWarning):
            MajorityVote(min_agreement=0.9).vote(["a", "a", "b"])

    def test_high_agreement_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", LowQualityWarning)
            MajorityVote(min_agreement=0.5).vote(["a", "a", "b"])

    def test_boolean_vote(self):
        result = MajorityVote().vote_boolean([True, True, False])
        assert result.value is True

    def test_field_votes(self):
        answers = [
            {"dept": "EECS", "email": "a@x"},
            {"dept": "eecs", "email": "b@x"},
            {"dept": "Math", "email": "a@x"},
        ]
        votes = MajorityVote().vote_fields(answers)
        assert normalize_answer(votes["dept"].value) == "eecs"
        assert votes["email"].value == "a@x"

    def test_field_votes_empty_raise(self):
        with pytest.raises(QualityControlError):
            MajorityVote().vote_fields([])

    def test_numeric_answers(self):
        result = MajorityVote().vote([120, 120, 80])
        assert result.value == 120
