"""Unit tests for answer cleansing, majority voting, and weighted consensus."""

import warnings

import pytest

from repro.crowd.quality import (
    Ballot,
    MajorityVote,
    VoteResult,
    normalize_answer,
)
from repro.crowd.reputation import ReputationStore
from repro.errors import LowQualityWarning, QualityControlError


class TestNormalization:
    def test_whitespace_collapsed(self):
        assert normalize_answer("  New   York ") == "new york"

    def test_case_folded(self):
        assert normalize_answer("IBM") == normalize_answer("ibm")

    def test_punctuation_stripped(self):
        assert normalize_answer("I.B.M.") == "ibm"
        assert normalize_answer("don't") == "dont"

    def test_non_strings_pass_through(self):
        assert normalize_answer(42) == 42
        assert normalize_answer(True) is True


class TestMajorityVote:
    def test_simple_majority(self):
        result = MajorityVote().vote(["IBM", "IBM", "Oracle"])
        assert result.value == "IBM"
        assert result.votes == 2 and result.total == 3
        assert result.agreement == pytest.approx(2 / 3)
        assert not result.unanimous

    def test_normalized_classes_merge(self):
        result = MajorityVote().vote(["I.B.M.", " ibm ", "Oracle"])
        assert normalize_answer(result.value) == "ibm"
        assert result.votes == 2

    def test_representative_is_most_common_raw(self):
        result = MajorityVote().vote(["IBM", "IBM", "i.b.m.", "Oracle"])
        assert result.value == "IBM"

    def test_tie_breaks_lexicographically(self):
        # deterministic regardless of ballot arrival order
        with pytest.warns(LowQualityWarning):
            assert MajorityVote().vote(["alpha", "beta"]).value == "alpha"
        with pytest.warns(LowQualityWarning):
            assert MajorityVote().vote(["beta", "alpha"]).value == "alpha"

    def test_tie_warning_names_losing_class(self):
        with pytest.warns(LowQualityWarning, match="'beta'"):
            MajorityVote().vote(["beta", "alpha"])

    def test_unanimous(self):
        assert MajorityVote().vote(["x", "x"]).unanimous

    def test_zero_answers_raise(self):
        with pytest.raises(QualityControlError):
            MajorityVote().vote([])

    def test_low_agreement_warns(self):
        with pytest.warns(LowQualityWarning):
            MajorityVote(min_agreement=0.9).vote(["a", "a", "b"])

    def test_high_agreement_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", LowQualityWarning)
            MajorityVote(min_agreement=0.5).vote(["a", "a", "b"])

    def test_boolean_vote(self):
        result = MajorityVote().vote_boolean([True, True, False])
        assert result.value is True

    def test_field_votes(self):
        answers = [
            {"dept": "EECS", "email": "a@x"},
            {"dept": "eecs", "email": "b@x"},
            {"dept": "Math", "email": "a@x"},
        ]
        votes = MajorityVote().vote_fields(answers)
        assert normalize_answer(votes["dept"].value) == "eecs"
        assert votes["email"].value == "a@x"

    def test_field_votes_empty_raise(self):
        with pytest.raises(QualityControlError):
            MajorityVote().vote_fields([])

    def test_numeric_answers(self):
        result = MajorityVote().vote([120, 120, 80])
        assert result.value == 120


class TestWeightedConsensus:
    def _store(self, accuracies: dict[str, float]) -> ReputationStore:
        """A store whose posterior is pinned (huge observation weight)."""
        store = ReputationStore(prior_strength=0.001)
        for worker, accuracy in accuracies.items():
            store._observe(worker, True, weight=1000.0 * accuracy)
            store._observe(worker, False, weight=1000.0 * (1 - accuracy))
        return store

    def test_unanimous_confidence_is_one(self):
        vote = MajorityVote().vote_ballots(
            [Ballot("x", "w1"), Ballot("x", "w2")]
        )
        assert vote.confidence == 1.0

    def test_confidence_grows_with_margin(self):
        voter = MajorityVote(min_agreement=0.0)
        close = voter.vote_ballots(
            [Ballot("a", "w1"), Ballot("a", "w2"), Ballot("b", "w3")]
        )
        wide = voter.vote_ballots(
            [Ballot("a", f"w{i}") for i in range(5)] + [Ballot("b", "w9")]
        )
        assert 0.5 < close.confidence < wide.confidence < 1.0

    def test_tie_confidence_is_half(self):
        vote = MajorityVote(min_agreement=0.0).vote_ballots(
            [Ballot("a", "w1"), Ballot("b", "w2")], quiet=True
        )
        assert vote.confidence == pytest.approx(0.5)

    def test_reputation_outvotes_plurality(self):
        # two spammers (30%) agree, one expert (95%) dissents: the
        # log-odds weights make the expert's answer win
        store = self._store({"spam1": 0.3, "spam2": 0.3, "expert": 0.95})
        voter = MajorityVote(min_agreement=0.0, reputation=store)
        vote = voter.vote_ballots(
            [Ballot("wrong", "spam1"), Ballot("wrong", "spam2"),
             Ballot("right", "expert")],
            quiet=True,
        )
        assert vote.value == "right"
        assert vote.votes == 1 and vote.total == 3

    def test_equal_weights_match_plain_majority(self):
        store = self._store({"w1": 0.8, "w2": 0.8, "w3": 0.8})
        weighted = MajorityVote(reputation=store).vote_ballots(
            [Ballot("a", "w1"), Ballot("a", "w2"), Ballot("b", "w3")]
        )
        plain = MajorityVote().vote(["a", "a", "b"])
        assert weighted.value == plain.value == "a"

    def test_winners_lists_agreeing_workers(self):
        vote = MajorityVote(min_agreement=0.0).vote_ballots(
            [Ballot("a", "w1"), Ballot("b", "w2"), Ballot("a", "w3")]
        )
        assert vote.winners == ("w1", "w3")
