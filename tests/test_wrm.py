"""Tests for the Worker Relationship Manager."""

import pytest

from repro.crowd.model import HIT, Assignment, AssignmentStatus, FillTask
from repro.crowd.wrm import WorkerRelationshipManager
from repro.errors import CrowdPlatformError


def make_hit(reward=4):
    task = FillTask("t", ("k",), ("c",), {})
    return HIT(task=task, reward_cents=reward, assignments_requested=1)


def make_assignment(hit, worker="w1", at=10.0):
    return Assignment(
        hit_id=hit.hit_id, worker_id=worker, answer={"c": "x"}, submitted_at=at
    )


class TestApprovalAndPayment:
    def test_auto_approve_pays_reward(self):
        wrm = WorkerRelationshipManager()
        hit = make_hit(reward=4)
        wrm.on_assignment(hit, make_assignment(hit))
        account = wrm.account("w1")
        assert account.submitted == 1
        assert account.approved == 1
        assert account.earned_cents == 4
        assert wrm.total_paid_cents == 4

    def test_manual_mode(self):
        wrm = WorkerRelationshipManager(auto_approve=False)
        hit = make_hit()
        assignment = make_assignment(hit)
        wrm.on_assignment(hit, assignment)
        assert wrm.account("w1").approved == 0
        wrm.approve(hit, assignment)
        assert wrm.account("w1").approved == 1
        assert assignment.status is AssignmentStatus.APPROVED

    def test_double_approve_is_idempotent(self):
        wrm = WorkerRelationshipManager(auto_approve=False)
        hit = make_hit()
        assignment = make_assignment(hit)
        wrm.approve(hit, assignment)
        wrm.approve(hit, assignment)
        assert wrm.account("w1").approved == 1

    def test_reject(self):
        wrm = WorkerRelationshipManager(auto_approve=False)
        hit = make_hit()
        assignment = make_assignment(hit)
        wrm.on_assignment(hit, assignment)
        wrm.reject(assignment, "spam")
        account = wrm.account("w1")
        assert account.rejected == 1
        assert account.approval_rate == 0.0

    def test_cannot_reject_approved(self):
        wrm = WorkerRelationshipManager(auto_approve=False)
        hit = make_hit()
        assignment = make_assignment(hit)
        wrm.approve(hit, assignment)
        with pytest.raises(CrowdPlatformError):
            wrm.reject(assignment)

    def test_approval_rate_default(self):
        wrm = WorkerRelationshipManager()
        assert wrm.account("new").approval_rate == 1.0


class TestBonuses:
    def test_loyalty_bonus_every_n(self):
        wrm = WorkerRelationshipManager(bonus_every=3, bonus_cents=5)
        hit = make_hit(reward=1)
        for i in range(7):
            wrm.on_assignment(hit if i == 0 else make_hit(reward=1),
                              make_assignment(hit, worker="w1", at=float(i)))
        account = wrm.account("w1")
        assert account.approved == 7
        assert account.bonus_cents == 10  # after 3rd and 6th approval
        bonuses = [p for p in wrm.payments if p.kind == "bonus"]
        assert len(bonuses) == 2

    def test_manual_bonus(self):
        wrm = WorkerRelationshipManager()
        wrm.grant_bonus("w9", 25)
        assert wrm.account("w9").earned_cents == 25


class TestComplaints:
    def test_file_and_respond(self):
        wrm = WorkerRelationshipManager()
        complaint = wrm.file_complaint("w1", "asg-1", "payment late", at=5.0)
        assert complaint.open
        assert wrm.open_complaints() == [complaint]
        wrm.respond(complaint, "bonus granted", at=6.0)
        assert not complaint.open
        assert wrm.open_complaints() == []

    def test_double_response_rejected(self):
        wrm = WorkerRelationshipManager()
        complaint = wrm.file_complaint("w1", "asg-1", "x")
        wrm.respond(complaint, "ok")
        with pytest.raises(CrowdPlatformError):
            wrm.respond(complaint, "again")


class TestBlockingAndReporting:
    def test_block(self):
        wrm = WorkerRelationshipManager()
        assert not wrm.is_blocked("w1")
        wrm.block("w1")
        assert wrm.is_blocked("w1")

    def test_top_workers(self):
        wrm = WorkerRelationshipManager()
        for worker, n in (("a", 3), ("b", 5), ("c", 1)):
            for i in range(n):
                hit = make_hit()
                wrm.on_assignment(hit, make_assignment(hit, worker=worker))
        top = wrm.top_workers(2)
        assert [a.worker_id for a in top] == ["b", "a"]


class TestPlatformIntegration:
    def test_wrm_wired_into_simulated_platform(self, demo_oracle):
        from repro.crowd.sim.amt import SimulatedAMT
        from repro.crowd.model import HIT, FillTask

        platform = SimulatedAMT(demo_oracle, population=50, seed=3)
        wrm = WorkerRelationshipManager()
        platform.on_assignment.append(wrm.on_assignment)
        hit = HIT(
            task=FillTask("Talk", ("CrowdDB",), ("abstract",), {}),
            reward_cents=3,
            assignments_requested=2,
        )
        platform.post_hit(hit)
        platform.wait_for_hits([hit.hit_id], timeout=48 * 3600)
        assert wrm.total_paid_cents == 6
        assert sum(a.approved for a in wrm.accounts.values()) == 2
