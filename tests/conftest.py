"""Shared fixtures for the CrowdDB reproduction test suite."""

from __future__ import annotations

import warnings

import pytest

from repro import connect
from repro.api import Connection
from repro.crowd.platform import PlatformRegistry
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import CrowdConfig, TaskManager
from repro.errors import UnboundedQueryWarning
from repro.storage.engine import StorageEngine
from repro.ui.manager import UITemplateManager

def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "concurrency: race/cancellation tests exercising real threads "
        "(run with PYTHONFAULTHANDLER=1 and a timeout guard in CI)",
    )


TALK_DDL = """CREATE TABLE Talk (
    title STRING PRIMARY KEY,
    abstract CROWD STRING,
    nb_attendees CROWD INTEGER
)"""

ATTENDEE_DDL = """CREATE CROWD TABLE NotableAttendee (
    name STRING PRIMARY KEY,
    title STRING,
    FOREIGN KEY (title) REF Talk(title)
)"""


@pytest.fixture(autouse=True)
def _silence_unbounded_warnings():
    """Unbounded-query warnings are expected in many tests."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UnboundedQueryWarning)
        yield


@pytest.fixture
def plain_db() -> Connection:
    """A crowd-less CrowdDB connection (traditional database)."""
    return connect(with_crowd=False)


@pytest.fixture
def demo_oracle() -> GroundTruthOracle:
    """Ground truth for the paper's running example (VLDB talks)."""
    oracle = GroundTruthOracle()
    for title, abstract, attendees in [
        ("CrowdDB", "CrowdDB answers queries with crowdsourcing.", 120),
        ("Qurk", "Qurk is a query processor for human operators.", 80),
        ("PIQL", "PIQL provides scale-independent queries.", 60),
    ]:
        oracle.load_fill(
            "Talk", (title,), {"abstract": abstract, "nb_attendees": attendees}
        )
    oracle.load_new_tuples(
        "NotableAttendee",
        [
            {"name": "Mike Franklin", "title": "CrowdDB"},
            {"name": "Donald Kossmann", "title": "CrowdDB"},
            {"name": "Sam Madden", "title": "Qurk"},
        ],
        fixed_columns=("title",),
    )
    oracle.declare_same_entity(
        "I.B.M.", "IBM", "International Business Machines"
    )
    oracle.load_ranking(
        "Which talk did you like better",
        {"CrowdDB": 3.0, "Qurk": 2.0, "PIQL": 1.0},
    )
    return oracle


@pytest.fixture
def scripted_db(demo_oracle) -> Connection:
    """CrowdDB over a perfect, instantaneous scripted crowd."""
    platform = ScriptedPlatform(oracle_answer_fn(demo_oracle))
    return connect(
        oracle=demo_oracle,
        platforms=(platform,),
        default_platform="scripted",
    )


@pytest.fixture
def sim_db(demo_oracle) -> Connection:
    """CrowdDB over the simulated AMT + mobile platforms."""
    return connect(oracle=demo_oracle, seed=1234)


@pytest.fixture
def demo_db(scripted_db) -> Connection:
    """Scripted connection with the demo schema and talks loaded."""
    scripted_db.execute(TALK_DDL)
    scripted_db.execute(ATTENDEE_DDL)
    scripted_db.execute(
        "INSERT INTO Talk (title) VALUES ('CrowdDB'), ('Qurk'), ('PIQL')"
    )
    return scripted_db


@pytest.fixture
def scripted_task_manager(demo_oracle):
    """A TaskManager wired to a scripted platform (no SQL involved)."""
    registry = PlatformRegistry()
    registry.register(ScriptedPlatform(oracle_answer_fn(demo_oracle)))
    engine = StorageEngine()
    ui = UITemplateManager(engine.catalog)
    return TaskManager(registry, ui, config=CrowdConfig(replication=3))
