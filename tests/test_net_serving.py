"""Network serving: wire protocol codec, TCP round trips, cancel,
admission over the wire, and graceful shutdown."""

from __future__ import annotations

import math
import socket
import struct
import threading
import time

import pytest

from repro.api import connect, serve
from repro.errors import NetworkProtocolError, RemoteError
from repro.net import connect_tcp, serve_tcp
from repro.net import protocol
from repro.sqltypes import CNULL, NULL


# -- value codec --------------------------------------------------------------


def test_codec_roundtrips_the_sql_value_domain():
    row = (1, "text", 2.5, True, NULL, CNULL, None)
    assert protocol.decode_row(protocol.encode_row(row)) == row
    # the singletons come back as the singletons, not lookalikes
    decoded = protocol.decode_row(protocol.encode_row((NULL, CNULL)))
    assert decoded[0] is NULL and decoded[1] is CNULL


def test_codec_handles_non_finite_floats_and_sequences():
    nan, = protocol.decode_row(protocol.encode_row((float("nan"),)))
    assert math.isnan(nan)
    inf, ninf = protocol.decode_row(
        protocol.encode_row((float("inf"), float("-inf")))
    )
    assert inf == math.inf and ninf == -math.inf
    seq, = protocol.decode_row(protocol.encode_row(((1, NULL, "x"),)))
    assert seq == (1, NULL, "x")


def test_codec_rejects_unknown_tags():
    with pytest.raises(NetworkProtocolError):
        protocol.decode_value({"$crowddb": "no-such-kind"})


def test_frame_roundtrip_and_length_validation():
    frame = {"type": "statement", "id": 7, "sql": "SELECT 1;"}
    data = protocol.pack_frame(frame)
    length = protocol.parse_length(data[:4])
    assert protocol.decode_payload(data[4 : 4 + length]) == frame


def test_oversized_frames_are_refused_not_allocated():
    huge = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
    with pytest.raises(NetworkProtocolError, match="exceeds"):
        protocol.parse_length(huge)


def test_undecodable_payload_is_a_protocol_error():
    with pytest.raises(NetworkProtocolError):
        protocol.decode_payload(b"\xff\xfe not json")
    with pytest.raises(NetworkProtocolError):
        protocol.decode_payload(b"[1, 2, 3]")  # not an object with a type


# -- end-to-end over TCP ------------------------------------------------------

SETUP = """
CREATE TABLE dept (name TEXT PRIMARY KEY, floor INTEGER);
INSERT INTO dept VALUES ('eng', 4);
INSERT INTO dept VALUES ('sales', 2);
INSERT INTO dept VALUES ('ops', 2);
"""

QUERY = "SELECT name, floor FROM dept WHERE floor = 2 ORDER BY name;"


def test_tcp_results_match_in_process_execution():
    local = connect()
    local.executescript(SETUP)
    expected = local.execute(QUERY)
    local.close()

    net = serve_tcp()
    try:
        with connect_tcp(net.host, net.port) as client:
            client.execute(SETUP)
            remote = client.execute(QUERY)
            assert remote.columns == expected.columns
            assert remote.rows == expected.rows
            assert remote.rowcount == expected.rowcount
    finally:
        net.close()


def test_large_results_page_and_reassemble():
    total = protocol.PAGE_ROWS * 2 + 17  # forces 3 result_page frames
    net = serve_tcp()
    try:
        with connect_tcp(net.host, net.port) as client:
            client.execute("CREATE TABLE big (n INTEGER);")
            script = "".join(
                f"INSERT INTO big VALUES ({i});" for i in range(total)
            )
            client.execute(script)
            result = client.execute("SELECT n FROM big ORDER BY n;")
            assert len(result.rows) == total
            assert result.rows[0] == (0,) and result.rows[-1] == (total - 1,)
    finally:
        net.close()


def test_statement_errors_carry_remote_type_and_traceback():
    net = serve_tcp()
    try:
        with connect_tcp(net.host, net.port) as client:
            with pytest.raises(RemoteError) as excinfo:
                client.execute("SELECT nope FROM missing_table;")
            assert excinfo.value.remote_type
            assert "Traceback" in excinfo.value.remote_traceback
            # the session survives a failed statement
            client.execute("CREATE TABLE ok (a INTEGER);")
            result = client.execute("SELECT a FROM ok;")
            assert result.rows == []
    finally:
        net.close()


def test_crowd_statements_work_over_the_wire():
    from repro.crowd.sim.traces import GroundTruthOracle

    oracle = GroundTruthOracle()
    oracle.load_fill("person", ("alice",), {"city": "Berkeley"})
    oracle.load_fill("person", ("bob",), {"city": "Zurich"})
    net = serve_tcp(seed=7, oracle=oracle)
    try:
        with connect_tcp(net.host, net.port) as client:
            client.execute(
                "CREATE TABLE person "
                "(name TEXT PRIMARY KEY, city CROWD TEXT);"
            )
            client.execute(
                "INSERT INTO person (name) VALUES ('alice');"
                "INSERT INTO person (name) VALUES ('bob');"
            )
            result = client.execute(
                "SELECT name, city FROM person ORDER BY name;"
            )
            # crowd-filled values actually traveled the codec (simulated
            # workers add case noise, so compare case-insensitively)
            assert [
                (name, city.lower()) for name, city in result.rows
            ] == [("alice", "berkeley"), ("bob", "zurich")]
            assert result.crowd_stats.get("hits_posted", 0) >= 1
    finally:
        net.close()


def test_concurrent_clients_get_isolated_sessions():
    net = serve_tcp()
    clients = [connect_tcp(net.host, net.port) for _ in range(8)]
    try:
        assert len({c.session_id for c in clients}) == 8
        errors: list[Exception] = []

        def work(index: int, client) -> None:
            try:
                client.execute(f"CREATE TABLE t{index} (a INTEGER);")
                client.execute(f"INSERT INTO t{index} VALUES ({index});")
                result = client.execute(f"SELECT a FROM t{index};")
                assert result.rows == [(index,)]
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=work, args=(i, c))
            for i, c in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
    finally:
        for client in clients:
            client.close()
        net.close()


# -- cancel -------------------------------------------------------------------


class _GatedAdvance:
    """Replace Scheduler._advance with a no-op until released, so a
    crowd wait stays pending for as long as the test needs."""

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.original = scheduler._advance
        self.gate = threading.Event()
        scheduler._advance = self

    def __call__(self, waiting):
        if not self.gate.is_set():
            time.sleep(0.002)
            return
        self.original(waiting)

    def release(self):
        self.gate.set()
        self.scheduler._advance = self.original


def test_cancel_frame_aborts_a_parked_crowd_statement():
    server = serve(seed=11)
    gate = _GatedAdvance(server.scheduler)
    net = serve_tcp(server=server)
    client = connect_tcp(net.host, net.port)
    try:
        client.execute(
            "CREATE TABLE slow (name TEXT PRIMARY KEY, city CROWD TEXT);"
        )
        client.execute("INSERT INTO slow (name) VALUES ('x');")
        outcome: dict = {}

        def run():
            try:
                outcome["result"] = client.execute(
                    "SELECT name, city FROM slow;"
                )
            except Exception as error:
                outcome["error"] = error

        worker = threading.Thread(target=run)
        worker.start()
        # wait until the session is genuinely parked on a crowd future
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if any(
                session.state.name == "WAITING"
                for session in server.sessions.values()
            ):
                break
            time.sleep(0.01)
        else:  # pragma: no cover - diagnostic
            pytest.fail("session never parked on a crowd wait")
        client.cancel()
        worker.join(timeout=30)
        assert not worker.is_alive()
        error = outcome.get("error")
        assert isinstance(error, RemoteError)
        assert error.remote_type == "StatementCancelled"

        # the session survives: release the crowd and query again
        gate.release()
        result = client.execute("SELECT name FROM slow;")
        assert result.rows == [("x",)]
    finally:
        gate.release()
        client.close()
        net.close()
        server.close()


# -- admission over the wire --------------------------------------------------


def test_admission_rejection_travels_as_an_error_frame():
    server = serve(max_active_sessions=1, max_waiting_sessions=0)
    net = serve_tcp(server=server)
    first = connect_tcp(net.host, net.port)
    try:
        first.execute("CREATE TABLE t (a INTEGER);")
        with pytest.raises(RemoteError) as excinfo:
            connect_tcp(net.host, net.port)
        assert excinfo.value.remote_type == "AdmissionError"
    finally:
        first.close()
        net.close()
        server.close()


# -- lifecycle ----------------------------------------------------------------


def test_server_close_drains_open_connections():
    net = serve_tcp()
    client = connect_tcp(net.host, net.port)
    client.execute("CREATE TABLE t (a INTEGER);")
    net.close()  # connection still open: must drain, not wedge
    with pytest.raises((NetworkProtocolError, OSError)):
        client.execute("SELECT a FROM t;")
    client.close()


def test_handshake_is_required_before_statements():
    net = serve_tcp()
    try:
        sock = socket.create_connection((net.host, net.port), timeout=10)
        try:
            sock.sendall(
                protocol.pack_frame(protocol.statement_frame(1, "SELECT 1;"))
            )
            frame = protocol.read_frame_blocking(sock)
            assert frame is not None and frame["type"] == "error"
        finally:
            sock.close()
    finally:
        net.close()


def test_ephemeral_port_is_reported():
    net = serve_tcp(port=0)
    try:
        assert net.port != 0
    finally:
        net.close()
