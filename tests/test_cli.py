"""Tests for the interactive CrowdSQL shell."""

import io

import pytest

from repro import connect
from repro.cli import Shell


@pytest.fixture
def shell(scripted_db):
    scripted_db.execute(
        "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
    )
    scripted_db.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
    return Shell(scripted_db, stdout=io.StringIO())


def output_of(shell):
    return shell.stdout.getvalue()


class TestSQL:
    def test_select_prints_table(self, shell):
        shell.handle_line("SELECT title FROM Talk;")
        assert "CrowdDB" in output_of(shell)

    def test_crowd_query_works(self, shell):
        shell.handle_line("SELECT abstract FROM Talk WHERE title = 'CrowdDB';")
        assert "crowdsourcing" in output_of(shell).lower()

    def test_dml_prints_rowcount(self, shell):
        shell.handle_line("INSERT INTO Talk (title) VALUES ('X');")
        assert "1 row(s) affected" in output_of(shell)

    def test_error_is_reported_not_raised(self, shell):
        shell.handle_line("SELECT * FROM missing;")
        assert "error:" in output_of(shell)

    def test_parse_error_reported(self, shell):
        shell.handle_line("SELEC title;")
        assert "error:" in output_of(shell)

    def test_empty_line_ignored(self, shell):
        shell.handle_line("   ")
        assert output_of(shell) == ""


class TestDotCommands:
    def test_tables(self, shell):
        shell.handle_line(".tables")
        assert "Talk" in output_of(shell)
        assert "1 row(s)" in output_of(shell)

    def test_schema(self, shell):
        shell.handle_line(".schema Talk")
        assert "abstract CROWD STRING" in output_of(shell)

    def test_explain(self, shell):
        shell.handle_line(".explain SELECT abstract FROM Talk WHERE title = 'x'")
        assert "CrowdProbe" in output_of(shell)

    def test_platform_show_and_switch(self, shell):
        shell.handle_line(".platform")
        assert "scripted" in output_of(shell)
        shell.handle_line(".platform scripted")
        assert "default platform: scripted" in output_of(shell)

    def test_platform_unknown(self, shell):
        shell.handle_line(".platform mars")
        assert "error:" in output_of(shell)

    def test_stats(self, shell):
        shell.handle_line("SELECT abstract FROM Talk WHERE title = 'CrowdDB';")
        shell.handle_line(".stats")
        assert "hits_posted" in output_of(shell)

    def test_templates_and_form(self, shell):
        shell.handle_line(".templates")
        out = output_of(shell)
        assert "fill:Talk" in out
        template_id = next(
            line.strip() for line in out.splitlines() if "fill:Talk" in line
        )
        shell.handle_line(f".form {template_id}")
        assert "<input" in output_of(shell)

    def test_workers_empty(self, shell):
        shell.handle_line(".workers")
        assert "no workers yet" in output_of(shell)

    def test_help(self, shell):
        shell.handle_line(".help")
        assert ".tables" in output_of(shell)

    def test_unknown_command(self, shell):
        shell.handle_line(".frobnicate")
        assert "unknown command" in output_of(shell)

    def test_quit(self, shell):
        shell.handle_line(".quit")
        assert not shell.running

    def test_load_and_save(self, shell, tmp_path):
        csv_path = tmp_path / "talks.csv"
        csv_path.write_text("title\nImported\n")
        shell.handle_line(f".load Talk {csv_path}")
        assert "loaded 1 row(s)" in output_of(shell)
        snap = tmp_path / "snap.json"
        shell.handle_line(f".save {snap}")
        assert snap.exists()

        fresh = Shell(connect(with_crowd=False), stdout=io.StringIO())
        fresh.handle_line(f".open {snap}")
        assert "Talk" in output_of(fresh)

    def test_usage_messages(self, shell):
        for cmd in (".schema", ".explain", ".form", ".load", ".save", ".open"):
            shell.handle_line(cmd)
        assert output_of(shell).count("usage:") == 6


class TestRunLoop:
    def test_multiline_statement(self, shell):
        stdin = io.StringIO("SELECT title\nFROM Talk;\n.quit\n")
        shell.run(stdin)
        assert "CrowdDB" in output_of(shell)

    def test_script_execution(self, shell, tmp_path):
        script = tmp_path / "script.sql"
        script.write_text(
            "INSERT INTO Talk (title) VALUES ('S1');\n"
            "SELECT COUNT(*) FROM Talk;\n"
        )
        shell.run_script(str(script))
        assert "2" in output_of(shell)


class TestServeShell:
    @pytest.fixture
    def serve_shell(self, demo_oracle):
        from repro.api import serve
        from repro.cli import ServeShell

        server = serve(oracle=demo_oracle, seed=17)
        shell = ServeShell(server=server, sessions=2, stdout=io.StringIO())
        shell.connection.execute(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)"
        )
        shell.connection.execute("INSERT INTO Talk (title) VALUES ('CrowdDB')")
        return shell

    def test_sql_is_queued_not_executed(self, serve_shell):
        serve_shell.handle_line("SELECT title FROM Talk;")
        out = output_of(serve_shell)
        assert "queued on session 1" in out
        assert "CrowdDB" not in out

    def test_run_executes_all_sessions(self, serve_shell):
        serve_shell.handle_line("SELECT title FROM Talk;")
        serve_shell.handle_line(".session 2")
        serve_shell.handle_line("SELECT COUNT(*) FROM Talk;")
        serve_shell.handle_line(".run")
        out = output_of(serve_shell)
        assert "-- session 1 --" in out and "-- session 2 --" in out
        assert "CrowdDB" in out

    def test_session_commands(self, serve_shell):
        serve_shell.handle_line(".sessions")
        serve_shell.handle_line(".newsession")
        serve_shell.handle_line(".session 99")
        out = output_of(serve_shell)
        assert "session 1" in out and "session 2" in out
        assert "session 3 opened" in out
        assert "no session 99" in out

    def test_server_stats_command(self, serve_shell):
        serve_shell.handle_line(".server")
        out = output_of(serve_shell)
        assert "task_pool" in out and "scheduler" in out

    def test_errors_surface_per_session(self, serve_shell):
        serve_shell.handle_line("SELECT nope FROM Missing;")
        serve_shell.handle_line(".run")
        assert "error:" in output_of(serve_shell)

    def test_run_script_goes_through_sessions(self, serve_shell, tmp_path):
        script = tmp_path / "script.sql"
        script.write_text("SELECT COUNT(*) FROM Talk;\n")
        serve_shell.run_script(str(script))
        out = output_of(serve_shell)
        assert "-- session 1 --" in out
        assert serve_shell.server.sessions[1].statements_run == 1
