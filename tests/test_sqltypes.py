"""Unit tests for the SQL type system and NULL/CNULL semantics."""

import pytest

from repro.errors import TypeError_
from repro.sqltypes import (
    CNULL,
    NULL,
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    SQLType,
    coerce,
    compare_values,
    format_value,
    is_cnull,
    is_missing,
    is_null,
    parse_literal,
    tri_from,
    type_from_name,
)


class TestSingletons:
    def test_null_is_singleton(self):
        assert type(NULL)() is NULL

    def test_cnull_is_singleton(self):
        assert type(CNULL)() is CNULL

    def test_null_and_cnull_are_distinct(self):
        assert NULL is not CNULL
        assert is_null(NULL) and not is_null(CNULL)
        assert is_cnull(CNULL) and not is_cnull(NULL)

    def test_python_none_counts_as_null(self):
        assert is_null(None)
        assert is_missing(None)

    def test_both_are_missing(self):
        assert is_missing(NULL) and is_missing(CNULL)
        assert not is_missing(0) and not is_missing("")

    def test_falsiness(self):
        assert not NULL
        assert not CNULL

    def test_repr(self):
        assert repr(NULL) == "NULL"
        assert repr(CNULL) == "CNULL"


class TestTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("STRING", SQLType.STRING),
            ("varchar", SQLType.STRING),
            ("TEXT", SQLType.STRING),
            ("INT", SQLType.INTEGER),
            ("Integer", SQLType.INTEGER),
            ("BIGINT", SQLType.INTEGER),
            ("FLOAT", SQLType.FLOAT),
            ("double", SQLType.FLOAT),
            ("BOOLEAN", SQLType.BOOLEAN),
            ("bool", SQLType.BOOLEAN),
        ],
    )
    def test_aliases(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError_):
            type_from_name("BLOB")


class TestCoerce:
    def test_missing_passthrough(self):
        assert coerce(None, SQLType.STRING) is NULL
        assert coerce(NULL, SQLType.INTEGER) is NULL
        assert coerce(CNULL, SQLType.FLOAT) is CNULL

    def test_integer_from_string(self):
        assert coerce(" 42 ", SQLType.INTEGER) == 42

    def test_integer_from_whole_float(self):
        assert coerce(3.0, SQLType.INTEGER) == 3

    def test_integer_from_fractional_float_raises(self):
        with pytest.raises(TypeError_):
            coerce(3.5, SQLType.INTEGER)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeError_):
            coerce(True, SQLType.INTEGER)

    def test_float_from_int(self):
        value = coerce(2, SQLType.FLOAT)
        assert value == 2.0 and isinstance(value, float)

    def test_float_from_string(self):
        assert coerce("2.5", SQLType.FLOAT) == 2.5

    def test_boolean_spellings(self):
        assert coerce("yes", SQLType.BOOLEAN) is True
        assert coerce("FALSE", SQLType.BOOLEAN) is False
        assert coerce(1, SQLType.BOOLEAN) is True

    def test_boolean_garbage_raises(self):
        with pytest.raises(TypeError_):
            coerce("maybe", SQLType.BOOLEAN)

    def test_string_requires_str(self):
        with pytest.raises(TypeError_):
            coerce(12, SQLType.STRING)


class TestParseLiteral:
    def test_empty_text_is_null(self):
        assert parse_literal("   ", SQLType.STRING) is NULL

    def test_explicit_null_word(self):
        assert parse_literal("null", SQLType.INTEGER) is NULL

    def test_string_is_stripped(self):
        assert parse_literal("  IBM  ", SQLType.STRING) == "IBM"

    def test_integer_parsing(self):
        assert parse_literal("120", SQLType.INTEGER) == 120

    def test_bad_integer_raises(self):
        with pytest.raises(TypeError_):
            parse_literal("many", SQLType.INTEGER)


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert (TRI_TRUE & TRI_TRUE) is TRI_TRUE
        assert (TRI_TRUE & TRI_FALSE) is TRI_FALSE
        assert (TRI_FALSE & TRI_UNKNOWN) is TRI_FALSE
        assert (TRI_TRUE & TRI_UNKNOWN) is TRI_UNKNOWN

    def test_or_truth_table(self):
        assert (TRI_FALSE | TRI_TRUE) is TRI_TRUE
        assert (TRI_UNKNOWN | TRI_TRUE) is TRI_TRUE
        assert (TRI_FALSE | TRI_UNKNOWN) is TRI_UNKNOWN
        assert (TRI_FALSE | TRI_FALSE) is TRI_FALSE

    def test_not(self):
        assert (~TRI_TRUE) is TRI_FALSE
        assert (~TRI_FALSE) is TRI_TRUE
        assert (~TRI_UNKNOWN) is TRI_UNKNOWN

    def test_bool_only_true_for_true(self):
        assert bool(TRI_TRUE)
        assert not bool(TRI_FALSE)
        assert not bool(TRI_UNKNOWN)

    def test_tri_from_missing(self):
        assert tri_from(NULL) is TRI_UNKNOWN
        assert tri_from(CNULL) is TRI_UNKNOWN
        assert tri_from(1) is TRI_TRUE
        assert tri_from(0) is TRI_FALSE


class TestCompareValues:
    def test_numbers(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2.5, 2.5) == 0
        assert compare_values(3, 2.5) == 1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_missing_returns_none(self):
        assert compare_values(NULL, 1) is None
        assert compare_values("x", CNULL) is None

    def test_cross_type_raises(self):
        with pytest.raises(TypeError_):
            compare_values("a", 1)

    def test_booleans(self):
        assert compare_values(True, False) == 1
        with pytest.raises(TypeError_):
            compare_values(True, 1)


class TestFormatValue:
    def test_rendering(self):
        assert format_value(NULL) == "NULL"
        assert format_value(CNULL) == "CNULL"
        assert format_value(True) == "TRUE"
        assert format_value(1.5) == "1.5"
        assert format_value("x") == "x"
