"""Failure containment: statement guards, circuit breaker, retry queue.

Covers the robustness layer below the network: the ``WITH
DEADLINE/BUDGET`` statement syntax, partial results with structured
reasons, the per-platform circuit breaker with its durable retry queue,
and deterministic platform fault injection.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import connect
from repro.crowd.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryQueue
from repro.crowd.model import HIT, FillTask
from repro.crowd.sim.amt import SimulatedAMT
from repro.crowd.sim.traces import GroundTruthOracle
from repro.engine.guard import StatementGuard
from repro.errors import (
    CircuitOpenError,
    ParseError,
    PartialResultStop,
    TransientPlatformError,
)
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.pretty import format_statement


# -- WITH DEADLINE/BUDGET syntax ----------------------------------------------


class TestGuardSyntax:
    def test_parse_deadline_and_budget(self):
        stmt = parse("SELECT 1 WITH DEADLINE 500 BUDGET 20")
        assert isinstance(stmt, ast.Guarded)
        assert stmt.deadline_ms == 500
        assert stmt.budget_cents == 20
        assert isinstance(stmt.statement, ast.Select)

    def test_parse_single_clause_and_order(self):
        assert parse("SELECT 1 WITH DEADLINE 5").budget_cents is None
        assert parse("SELECT 1 WITH BUDGET 9").deadline_ms is None
        swapped = parse("SELECT 1 WITH BUDGET 9 DEADLINE 5")
        assert (swapped.deadline_ms, swapped.budget_cents) == (5, 9)

    def test_pretty_round_trips(self):
        text = "SELECT 1 WITH DEADLINE 500 BUDGET 20"
        assert parse(format_statement(parse(text))) == parse(text)

    def test_bare_with_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 WITH")
        with pytest.raises(ParseError):
            parse("SELECT 1 WITH LIMIT 3")

    def test_budget_still_valid_as_identifier(self):
        stmt = parse("SELECT budget FROM dept WHERE deadline > 3")
        assert isinstance(stmt, ast.Select)

    def test_guard_on_compound_select(self):
        stmt = parse("SELECT 1 UNION SELECT 2 WITH DEADLINE 100")
        assert isinstance(stmt, ast.Guarded)
        assert isinstance(stmt.statement, ast.SetOp)


# -- StatementGuard -----------------------------------------------------------


class _FakeLedger:
    def __init__(self, cents: int = 0) -> None:
        self.cents = cents

    def summary(self) -> dict:
        return {"cost_cents": self.cents}


class TestStatementGuard:
    def test_deadline_trips_on_fake_clock(self):
        now = [0.0]
        guard = StatementGuard(deadline_ms=1000, now_fn=lambda: now[0])
        guard.check()  # within the cap
        now[0] = 0.9
        assert not guard.trip_if_expired()
        now[0] = 1.0
        assert guard.trip_if_expired()
        with pytest.raises(PartialResultStop) as info:
            guard.check()
        assert info.value.reason == "deadline"

    def test_budget_trips_at_exact_spend(self):
        ledger = _FakeLedger(cents=0)
        guard = StatementGuard(budget_cents=5, ledger=ledger)
        guard.check()
        ledger.cents = 5  # >= comparison: exact budget is exhausted
        with pytest.raises(PartialResultStop) as info:
            guard.check()
        assert info.value.reason == "budget"

    def test_trip_reason_is_sticky(self):
        guard = StatementGuard(budget_cents=1, ledger=_FakeLedger(9))
        stop = guard.trip("budget")
        assert stop.reason == "budget"
        assert guard.trip("deadline").reason == "budget"

    def test_inactive_guard_never_trips(self):
        guard = StatementGuard()
        assert not guard.active
        assert not guard.trip_if_expired()
        guard.check()


# -- circuit breaker state machine --------------------------------------------


def make_breaker(**kwargs):
    clock = [0.0]
    defaults = dict(
        failure_threshold=3,
        cooldown_seconds=10.0,
        half_open_probes=2,
        min_calls=4,
        clock=lambda: clock[0],
    )
    defaults.update(kwargs)
    return CircuitBreaker("test", **defaults), clock


class TestCircuitBreaker:
    def test_consecutive_failures_trip(self):
        breaker, _clock = make_breaker()
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.refused == 1

    def test_cooldown_lets_probes_through(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 11.0
        assert breaker.allow()  # first half-open probe
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # second probe (bounded at 2)
        assert not breaker.allow()  # probe slots exhausted

    def test_probe_successes_close(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 11.0
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.closes == 1

    def test_probe_failure_reopens(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 11.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 2

    def test_window_failure_rate_trips(self):
        breaker, _clock = make_breaker(
            failure_threshold=100, window=10, failure_rate=0.5, min_calls=4
        )
        for _ in range(3):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == OPEN

    def test_slow_success_counts_as_failure(self):
        breaker, _clock = make_breaker(latency_threshold=1.0)
        for _ in range(3):
            breaker.record_success(latency=5.0)
        assert breaker.state == OPEN

    def test_callbacks_fire_with_breaker_name(self):
        events = []
        breaker, clock = make_breaker(
            on_open=lambda name: events.append(("open", name)),
            on_close=lambda name: events.append(("close", name)),
        )
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 11.0
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_success()
        assert events == [("open", "test"), ("close", "test")]

    def test_snapshot_reports_state_code_and_rate(self):
        breaker, _clock = make_breaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == 0  # closed
        assert snap["consecutive_failures"] == 1
        assert snap["window_failure_rate"] == 1.0
        for _ in range(2):
            breaker.record_failure()
        assert breaker.snapshot()["state"] == 2  # open

    @pytest.mark.concurrency
    def test_half_open_probes_race_recovery(self):
        """Threads hammer a half-open breaker: the probe bound must hold
        and concurrent successes must close it exactly once."""
        closes = []
        breaker, clock = make_breaker(
            half_open_probes=2,
            on_close=lambda name: closes.append(name),
        )
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 11.0
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(1)
                breaker.record_success()

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert breaker.state == CLOSED
        assert closes == ["test"]  # closed exactly once
        assert len(admitted) >= 2  # at least the bounded probes got in


# -- retry queue --------------------------------------------------------------


class TestRetryQueue:
    def test_park_drain_requeue(self):
        queue = RetryQueue()
        queue.park({"kind": "fill", "n": 1})
        queue.park({"kind": "fill", "n": 2})
        entries = queue.drain()
        assert [e["n"] for e in entries] == [1, 2]
        assert len(queue) == 0
        queue.requeue(entries[1:])
        assert [e["n"] for e in queue.drain()] == [2]

    def test_durable_roundtrip(self, tmp_path):
        path = str(tmp_path / "retry.jsonl")
        queue = RetryQueue()
        queue.bind_path(path)
        queue.park({"kind": "eq", "left": "a"})
        queue.park({"kind": "ord", "question": "q"})
        fresh = RetryQueue()
        recovered = fresh.bind_path(path)
        assert recovered == 2
        assert [e["kind"] for e in fresh.drain()] == ["eq", "ord"]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "retry.jsonl"
        queue = RetryQueue()
        queue.bind_path(str(path))
        queue.park({"kind": "fill"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "tr')  # crash mid-append
        fresh = RetryQueue()
        assert fresh.bind_path(str(path)) == 1


# -- deterministic platform fault injection -----------------------------------


def make_hit():
    task = FillTask(
        table="Talk",
        primary_key=("t",),
        columns=("abstract",),
        known_values={"title": "t"},
    )
    return HIT(task=task, reward_cents=2, assignments_requested=1)


class TestSimFaultInjection:
    def _platform(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("Talk", ("t",), {"abstract": "x"})
        return SimulatedAMT(oracle, population=20, seed=3)

    def test_inject_outage_fails_exactly_n_calls(self):
        platform = self._platform()
        platform.inject_outage(2)
        for _ in range(2):
            with pytest.raises(TransientPlatformError):
                platform.post_hit(make_hit())
        platform.post_hit(make_hit())  # third call goes through
        assert platform.faults_injected == 2

    def test_inject_latency_burns_simulated_time(self):
        platform = self._platform()
        before = platform.clock.now
        platform.inject_latency(120.0, calls=1)
        platform.post_hit(make_hit())
        assert platform.clock.now >= before + 120.0
        assert platform.faults_injected == 1
        # only the armed number of calls stall
        at = platform.clock.now
        platform.post_hit(make_hit())
        assert platform.clock.now == at


# -- end-to-end: partial results and breaker degradation ----------------------


PERSON_DDL = """CREATE TABLE person (
    name STRING PRIMARY KEY,
    city CROWD STRING
)"""


def person_oracle(count: int = 4) -> GroundTruthOracle:
    oracle = GroundTruthOracle()
    for i in range(count):
        oracle.load_fill("person", (f"p{i}",), {"city": f"city{i}"})
    return oracle


def crowd_conn(**kwargs):
    conn = connect(oracle=person_oracle(), seed=11, **kwargs)
    conn.execute(PERSON_DDL)
    for i in range(4):
        conn.execute(f"INSERT INTO person (name) VALUES ('p{i}')")
    return conn


class TestPartialResults:
    def test_deadline_returns_partial_with_reason(self):
        conn = crowd_conn()
        result = conn.execute("SELECT name, city FROM person WITH DEADLINE 1")
        assert result.status == "partial"
        assert result.partial_reason == "deadline"
        stats = conn.crowd_stats
        assert stats.get("partial_results", 0) >= 1
        assert stats.get("partial_deadline", 0) >= 1
        conn.close()

    def test_zero_budget_returns_partial_budget(self):
        conn = crowd_conn()
        result = conn.execute("SELECT name, city FROM person WITH BUDGET 0")
        assert result.status == "partial"
        assert result.partial_reason == "budget"
        conn.close()

    def test_generous_caps_still_complete(self):
        conn = crowd_conn()
        result = conn.execute(
            "SELECT name, city FROM person WITH DEADLINE 100000000 BUDGET 100000"
        )
        assert result.status == "complete"
        assert result.partial_reason is None
        # sim workers add answer noise (case/typos); check shape, not text
        assert sorted(name for name, _city in result.rows) == [
            f"p{i}" for i in range(4)
        ]
        assert all(city for _name, city in result.rows)
        conn.close()

    def test_connect_default_caps_apply(self):
        conn = crowd_conn(statement_deadline_ms=1)
        result = conn.execute("SELECT name, city FROM person")
        assert result.status == "partial"
        assert result.partial_reason == "deadline"
        conn.close()

    def test_statement_clause_overrides_connect_default(self):
        conn = crowd_conn(statement_deadline_ms=1)
        result = conn.execute(
            "SELECT name, city FROM person WITH DEADLINE 100000000"
        )
        assert result.status == "complete"
        conn.close()

    def test_partial_futures_reused_on_retry(self):
        """A capped statement leaves its futures in the shared pool; a
        later uncapped retry settles them without reposting HITs."""
        conn = crowd_conn()
        conn.execute("SELECT name, city FROM person WITH DEADLINE 1")
        posted_after_first = conn.crowd_stats.get("hits_posted", 0)
        result = conn.execute("SELECT name, city FROM person")
        assert result.status == "complete"
        assert conn.crowd_stats.get("hits_posted", 0) == posted_after_first
        conn.close()

    def test_electronic_statements_unaffected_by_caps(self):
        conn = connect(oracle=person_oracle(), seed=11, statement_deadline_ms=1)
        conn.execute("CREATE TABLE plain (a INTEGER)")
        conn.execute("INSERT INTO plain VALUES (1), (2)")
        result = conn.execute("SELECT a FROM plain ORDER BY a")
        assert result.status == "complete"
        assert result.rows == [(1,), (2,)]
        conn.close()


class TestBreakerIntegration:
    def _tripped_conn(self):
        """A connection whose amt breaker has been driven open."""
        conn = crowd_conn(
            breaker_failure_threshold=2,
            breaker_cooldown_seconds=3600.0,
        )
        amt = conn.platforms.get("amt")
        amt.inject_outage(100)  # outlasts every retry
        # the tripping statement itself degrades: the breaker opens mid
        # retry, the refused fills are parked, and the rows settle short
        result = conn.execute("SELECT name, city FROM person")
        assert result.status == "partial"
        assert result.partial_reason == "breaker"
        assert conn.task_manager.breakers["amt"].state == OPEN
        return conn

    def test_open_breaker_degrades_to_partial(self):
        conn = self._tripped_conn()
        result = conn.execute("SELECT name, city FROM person")
        assert result.status == "partial"
        assert result.partial_reason == "breaker"
        conn.close()

    def test_open_breaker_parks_work_in_retry_queue(self):
        conn = self._tripped_conn()
        conn.execute("SELECT name, city FROM person")
        assert len(conn.task_manager.retry_queue) > 0
        assert conn.crowd_stats.get("breaker_parked", 0) > 0
        conn.close()

    def test_breaker_state_in_metrics(self):
        conn = self._tripped_conn()
        text = conn.metrics_text()
        assert 'crowddb_breaker_state{platform="amt"} 2' in text
        assert "crowddb_breaker_retry_queue_depth" in text
        assert conn.crowd_stats.get("breaker_opens", 0) >= 1
        conn.close()

    def test_electronic_work_proceeds_while_breaker_open(self):
        conn = self._tripped_conn()
        conn.execute("CREATE TABLE plain (a INTEGER)")
        conn.execute("INSERT INTO plain VALUES (7)")
        assert conn.execute("SELECT a FROM plain").rows == [(7,)]
        conn.close()

    def test_settled_work_supersedes_parked_copy(self):
        """A retried statement reissues its own fills; once they settle,
        the parked copies must be discarded, not replayed (replaying
        would buy the already-settled answers a second time)."""
        conn = self._tripped_conn()
        assert len(conn.task_manager.retry_queue) > 0
        conn.platforms.get("amt").inject_outage(0)
        breaker = conn.task_manager.breakers["amt"]
        breaker.cooldown_seconds = 0.0  # cooldown elapses "immediately"
        result = conn.execute("SELECT name, city FROM person")
        assert result.status == "complete"
        assert breaker.state == CLOSED
        assert len(conn.task_manager.retry_queue) == 0
        stats = conn.crowd_stats
        assert stats.get("breaker_parked_superseded", 0) >= 1
        assert stats.get("breaker_replayed", 0) == 0  # nothing rebought
        conn.close()

    def test_recovery_replays_parked_work(self):
        conn = crowd_conn(
            breaker_failure_threshold=2,
            breaker_cooldown_seconds=3600.0,
            breaker_half_open_probes=1,
        )
        amt = conn.platforms.get("amt")
        amt.inject_outage(100)
        result = conn.execute("SELECT city FROM person WHERE name = 'p3'")
        assert result.partial_reason == "breaker"  # parks p3's fill
        parked = len(conn.task_manager.retry_queue)
        assert parked >= 1
        amt.inject_outage(0)  # platform healthy again
        breaker = conn.task_manager.breakers["amt"]
        breaker.cooldown_seconds = 0.0
        # a statement on a different row: its single probe succeeds and
        # closes the breaker; p3's parked fill is untouched
        narrow = conn.execute("SELECT city FROM person WHERE name = 'p0'")
        assert narrow.status == "complete"
        assert breaker.state == CLOSED
        assert len(conn.task_manager.retry_queue) == parked
        # the next crowd activity replays the parked fill automatically
        conn.execute("SELECT city FROM person WHERE name = 'p1'")
        assert len(conn.task_manager.retry_queue) == 0
        assert conn.crowd_stats.get("breaker_replayed", 0) >= 1
        conn.close()

    def test_breaker_disabled_keeps_legacy_behavior(self):
        conn = crowd_conn(breaker_enabled=False)
        amt = conn.platforms.get("amt")
        amt.inject_outage(100)
        with pytest.raises(TransientPlatformError):
            conn.execute("SELECT name, city FROM person")
        assert conn.task_manager.breakers == {}
        conn.close()

    def test_circuit_open_error_is_transient_subclass(self):
        # callers catching TransientPlatformError keep working
        assert issubclass(CircuitOpenError, TransientPlatformError)

    def test_retry_queue_durable_across_restart(self, tmp_path):
        path = str(tmp_path / "db")
        conn = connect(
            oracle=person_oracle(1),
            seed=11,
            path=path,
            breaker_failure_threshold=2,
            breaker_cooldown_seconds=3600.0,
        )
        conn.execute(PERSON_DDL)
        conn.execute("INSERT INTO person (name) VALUES ('p0')")
        amt = conn.platforms.get("amt")
        amt.inject_outage(100)
        result = conn.execute("SELECT name, city FROM person")
        assert result.partial_reason == "breaker"  # parks the refused fill
        parked = len(conn.task_manager.retry_queue)
        assert parked > 0
        conn.close()
        fresh = connect(oracle=person_oracle(1), seed=11, path=path)
        assert len(fresh.task_manager.retry_queue) == parked
        fresh.close()
