"""Tests for the concurrent query server (repro.server).

Covers the shared task pool (identical concurrent fills/compares issue
exactly one HIT; answers fan out to every waiting session), the
cooperative scheduler (suspend on crowd waits, deterministic resume,
per-statement error isolation), and admission control.
"""

import pytest

from repro import connect, serve
from repro.crowd.model import reset_id_counters
from repro.crowd.platform import PlatformRegistry
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import CrowdConfig, TaskManager
from repro.errors import AdmissionError, ExecutionError
from repro.server import (
    AdmissionConfig,
    AdmissionController,
    Server,
    Session,
    SessionState,
    TaskPool,
)
from repro.storage.engine import StorageEngine
from repro.ui.manager import UITemplateManager


def make_oracle(cities: int = 8) -> GroundTruthOracle:
    oracle = GroundTruthOracle()
    for i in range(cities):
        oracle.load_fill(
            "City",
            (f"city{i}",),
            {"population": 1000 + i, "elevation": 10 * i},
        )
    oracle.declare_same_entity("I.B.M.", "IBM")
    return oracle


def make_server(seed: int = 5, **kwargs) -> Server:
    reset_id_counters()
    server = serve(oracle=make_oracle(), seed=seed, **kwargs)
    server.connection.execute(
        "CREATE TABLE City (name STRING PRIMARY KEY, "
        "population CROWD INTEGER, elevation CROWD INTEGER)"
    )
    for i in range(8):
        server.connection.execute(
            "INSERT INTO City (name) VALUES (?)", (f"city{i}",)
        )
    return server


class TestTaskPoolDedup:
    def test_identical_concurrent_fills_issue_one_hit(self):
        server = make_server()
        sessions = [
            server.open_session().submit(
                "SELECT population FROM City WHERE name = 'city3'"
            )
            for _ in range(3)
        ]
        server.run()
        rows = [s.last_result().rows for s in sessions]
        assert rows[0] == rows[1] == rows[2]
        assert rows[0] == [(1003,)]
        stats = server.stats()
        assert stats["task_manager"]["fill_requests"] == 3
        assert stats["task_manager"]["hits_posted"] == 1
        assert stats["task_pool"]["hits_saved"] == 2
        server.shutdown()

    def test_distinct_fills_not_merged(self):
        server = make_server()
        a = server.open_session().submit(
            "SELECT population FROM City WHERE name = 'city1'"
        )
        b = server.open_session().submit(
            "SELECT elevation FROM City WHERE name = 'city1'"
        )
        server.run()
        assert a.last_result().rows == [(1001,)]
        assert b.last_result().rows == [(10,)]
        # same tuple but different needed columns: two distinct HITs
        assert server.stats()["task_manager"]["hits_posted"] == 2
        server.shutdown()

    def test_concurrent_compares_share_one_ballot(self):
        server = make_server()
        sql = "SELECT name FROM City WHERE CROWDEQUAL('I.B.M.', 'IBM') LIMIT 1"
        a = server.open_session().submit(sql)
        b = server.open_session().submit(sql)
        server.run()
        assert a.last_result().rows == b.last_result().rows
        stats = server.stats()
        assert stats["task_manager"]["compare_requests"] == 1
        assert stats["task_pool"]["hits_saved"] >= 1
        server.shutdown()

    def test_mirrored_compares_share_one_ballot(self):
        """CROWDEQUAL(a, b) and CROWDEQUAL(b, a) in flight together are
        one question — one HIT, consistent cached answer both ways."""
        server = make_server()
        a = server.open_session().submit(
            "SELECT name FROM City WHERE CROWDEQUAL('I.B.M.', 'IBM') LIMIT 1"
        )
        b = server.open_session().submit(
            "SELECT name FROM City WHERE CROWDEQUAL('IBM', 'I.B.M.') LIMIT 1"
        )
        server.run()
        assert a.last_result().rows == b.last_result().rows
        stats = server.stats()["task_manager"]
        assert stats["compare_requests"] == 1
        assert stats["hits_posted"] == 1
        server.shutdown()

    def test_mirrored_order_ballot_inverts_answer(self):
        from repro.catalog.ddl import build_table_schema  # noqa: F401
        from repro.crowd.platform import PlatformRegistry
        from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
        from repro.crowd.task_manager import TaskManager
        from repro.ui.manager import UITemplateManager
        from repro.storage.engine import StorageEngine

        oracle = GroundTruthOracle()
        oracle.load_ranking("best?", {"a": 2.0, "b": 1.0})
        registry = PlatformRegistry()
        registry.register(ScriptedPlatform(oracle_answer_fn(oracle)))
        engine = StorageEngine()
        manager = TaskManager(registry, UITemplateManager(engine.catalog))
        manager.task_pool = TaskPool()
        forward = manager.begin_compare_order("a", "b", "best?")
        backward = manager.begin_compare_order("b", "a", "best?")
        assert backward.mirror_of is forward
        assert manager.stats.hits_posted == 1
        manager.settle(backward)  # settles through the parent
        assert forward.result() is True   # 'a' ranks first
        assert backward.result() is False
        # the cache stays direction-consistent
        assert manager.compare_order("a", "b", "best?") is True
        assert manager.compare_order("b", "a", "best?") is False
        assert manager.stats.hits_posted == 1

    def test_shared_open_world_scan_returns_identical_rows(self):
        """When two sessions share one new-tuples future, the session
        that loses the insert race still yields the memorized rows —
        identical queries give identical answers."""
        reset_id_counters()
        oracle = GroundTruthOracle()
        oracle.load_new_tuples(
            "Fact", [{"name": "alpha"}, {"name": "beta"}]
        )
        server = serve(oracle=oracle, seed=6)
        server.connection.execute(
            "CREATE CROWD TABLE Fact (name STRING PRIMARY KEY)"
        )
        sql = "SELECT name FROM Fact LIMIT 2"
        a = server.open_session().submit(sql)
        b = server.open_session().submit(sql)
        server.run()
        assert sorted(a.last_result().rows) == sorted(b.last_result().rows)
        assert len(a.last_result().rows) == 2
        assert server.stats()["task_pool"]["hits_saved"] >= 1
        server.shutdown()

    def test_settled_answers_reused_from_storage(self):
        """Sequential reuse still flows through memorization: a later
        query finds the earlier fill in the heap and posts nothing."""
        server = make_server()
        first = server.open_session().submit(
            "SELECT population FROM City WHERE name = 'city2'"
        )
        server.run()
        posted_after_first = server.stats()["task_manager"]["hits_posted"]
        second = server.open_session().submit(
            "SELECT population FROM City WHERE name = 'city2'"
        )
        server.run()
        assert second.last_result().rows == first.last_result().rows
        assert (
            server.stats()["task_manager"]["hits_posted"]
            == posted_after_first
        )
        server.shutdown()


class TestTaskPoolUnit:
    def _manager_with_pool(self):
        oracle = make_oracle()
        registry = PlatformRegistry()
        registry.register(ScriptedPlatform(oracle_answer_fn(oracle)))
        engine = StorageEngine()
        manager = TaskManager(
            registry,
            UITemplateManager(engine.catalog),
            config=CrowdConfig(replication=2),
        )
        manager.task_pool = TaskPool()
        return manager

    def test_unsettled_future_is_shared_then_forgotten(self):
        manager = self._manager_with_pool()
        from repro.catalog.ddl import build_table_schema
        from repro.sql.parser import parse

        schema = build_table_schema(
            parse(
                "CREATE TABLE City (name STRING PRIMARY KEY, "
                "population CROWD INTEGER)"
            )
        )
        first = manager.begin_fill(schema, ("city1",), ("population",), {})
        second = manager.begin_fill(schema, ("city1",), ("population",), {})
        assert first is second
        assert manager.task_pool.stats.deduplicated == 1
        assert manager.stats.hits_posted == 1
        manager.settle(first)
        assert first.result() == {"population": 1001}
        # settled futures leave the pool; the next request re-posts
        third = manager.begin_fill(schema, ("city1",), ("population",), {})
        assert third is not first
        assert manager.stats.hits_posted == 2

    def test_result_before_settlement_raises(self):
        manager = self._manager_with_pool()
        future = manager.begin_compare_equal("A", "B")
        with pytest.raises(ExecutionError, match="before settlement"):
            future.result()
        manager.settle(future)
        assert future.result() is False


class TestCooperativeScheduler:
    def test_blocked_session_does_not_stall_electronic_work(self):
        server = make_server()
        blocked = server.open_session().submit(
            "SELECT population FROM City WHERE name = 'city5'"
        )
        quick = server.open_session().submit("SELECT COUNT(*) FROM City")
        server.run()
        assert quick.last_result().scalar() == 8
        assert blocked.last_result().rows == [(1005,)]
        assert server.stats()["scheduler"]["suspensions"] >= 1
        server.shutdown()

    def test_statement_errors_are_isolated(self):
        server = make_server()
        session = server.open_session()
        session.submit("SELECT nope FROM Missing")
        session.submit("SELECT COUNT(*) FROM City")
        server.run()
        assert len(session.results) == 2
        assert isinstance(session.results[0], Exception)
        assert session.results[1].scalar() == 8
        assert len(session.errors) == 1
        server.shutdown()

    def test_script_continues_past_failing_statement(self):
        """REPL semantics inside one submitted script: a failure is
        recorded and the remaining statements still run."""
        server = make_server()
        session = server.open_session()
        session.submit(
            "CREATE TABLE log (a INT); "
            "INSERT INTO log VALUES (1); "
            "SELECT nope FROM Missing; "
            "INSERT INTO log VALUES (2); "
            "SELECT COUNT(*) FROM log"
        )
        server.run()
        assert len(session.results) == 5
        assert isinstance(session.results[2], Exception)
        assert session.results[4].scalar() == 2
        server.shutdown()

    def test_session_states_and_close(self):
        server = make_server()
        session = server.open_session()
        assert session.state is SessionState.IDLE
        session.submit("SELECT 1 + 1")
        server.run()
        assert session.last_result().scalar() == 2
        server.close_session(session)
        assert session.state is SessionState.CLOSED
        with pytest.raises(ExecutionError, match="closed"):
            session.submit("SELECT 1")
        server.shutdown()

    def test_run_scripts_orders_results_by_script(self):
        server = make_server()
        results = server.run_scripts(
            [
                "SELECT 1 + 1",
                "SELECT 2 + 2",
                "SELECT 3 + 3",
            ]
        )
        assert [r[0].scalar() for r in results] == [2, 4, 6]
        server.shutdown()


class TestAdmission:
    def test_waitlisted_sessions_run_after_promotion(self):
        server = make_server(max_active_sessions=1, max_waiting_sessions=8)
        sessions = [
            server.open_session().submit(
                f"SELECT population FROM City WHERE name = 'city{i}'"
            )
            for i in range(3)
        ]
        server.run()
        for i, session in enumerate(sessions):
            assert session.last_result().rows == [(1000 + i,)]
        stats = server.stats()["admission"]
        assert stats["admitted"] == 1
        assert stats["promoted"] == 2
        server.shutdown()

    def test_full_server_rejects(self):
        server = make_server(max_active_sessions=1, max_waiting_sessions=1)
        server.open_session()
        server.open_session()  # waitlisted
        with pytest.raises(AdmissionError, match="server full"):
            server.open_session()
        assert server.stats()["admission"]["rejected"] == 1
        server.shutdown()

    def test_controller_promotes_fifo(self):
        controller = AdmissionController(
            AdmissionConfig(max_active_sessions=1, max_waiting_sessions=4)
        )

        class Stub:
            def __init__(self, session_id):
                self.session_id = session_id

        first, second, third = Stub(1), Stub(2), Stub(3)
        assert controller.request(first) is True
        assert controller.request(second) is False
        assert controller.request(third) is False
        promoted = controller.release(first)
        assert [s.session_id for s in promoted] == [2]
        assert controller.is_admitted(second)
        assert not controller.is_admitted(third)


class TestServeFactory:
    def test_serve_over_existing_connection(self):
        reset_id_counters()
        db = connect(oracle=make_oracle(), seed=9)
        server = serve(connection=db)
        assert server.connection is db
        assert db.task_manager.task_pool is server.task_pool
        server.shutdown()

    def test_serve_rejects_conflicting_arguments(self):
        db = connect(with_crowd=False)
        with pytest.raises(TypeError):
            Server(connection=db, seed=3)
        with pytest.raises(TypeError):
            serve(connection=db, seed=3)

    def test_crowdless_server_runs_electronic_queries(self):
        server = serve(with_crowd=False)
        session = server.open_session().submit("SELECT 40 + 2")
        server.run()
        assert session.last_result().scalar() == 42
        server.shutdown()
