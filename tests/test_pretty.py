"""Pretty-printer tests, including the parse/print round-trip property."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.pretty import format_expression, format_statement


ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT DISTINCT a, b AS c FROM t",
    "SELECT * FROM t WHERE a = 1 AND b <> 'x'",
    "SELECT abstract FROM paper WHERE title = 'CrowdDB'",
    "SELECT a FROM t ORDER BY a DESC LIMIT 10 OFFSET 2",
    "SELECT t.a, u.b FROM t INNER JOIN u ON t.x = u.x",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT * FROM t LEFT JOIN u ON t.x = u.x",
    "SELECT COUNT(*), SUM(x) FROM t GROUP BY y HAVING COUNT(*) > 1",
    "SELECT * FROM t WHERE a IN (1, 2) OR b BETWEEN 1 AND 5",
    "SELECT * FROM t WHERE a IS NULL",
    "SELECT * FROM t WHERE a IS NOT CNULL",
    "SELECT * FROM t WHERE a LIKE 'x%'",
    "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
    "SELECT title FROM Talk ORDER BY "
    "CROWDORDER(title, 'Which talk did you like better') LIMIT 10",
    "SELECT * FROM c WHERE CROWDEQUAL(name, 'IBM', 'Same?')",
    "SELECT * FROM (SELECT a FROM t) AS s WHERE s.a > 0",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT * FROM t WHERE a IN (SELECT b FROM u)",
    "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, "
    "nb_attendees CROWD INTEGER)",
    "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, "
    "FOREIGN KEY (title) REFERENCES Talk(title))",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "INSERT INTO t VALUES (CNULL)",
    "INSERT INTO t SELECT a FROM u",
    "UPDATE t SET a = 1 WHERE b = 'x'",
    "DELETE FROM t WHERE a = 1",
    "DROP TABLE IF EXISTS t",
    "CREATE UNIQUE INDEX idx ON t (a, b)",
    "EXPLAIN SELECT a FROM t",
    "SHOW TABLES",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_round_trip_fixed_point(sql):
    """parse(format(parse(sql))) == parse(sql) — the printer is faithful."""
    first = parse(sql)
    printed = format_statement(first)
    second = parse(printed)
    assert first == second


def test_string_quoting():
    assert format_expression(ast.Literal("it's")) == "'it''s'"


def test_negative_literal_round_trips_semantically():
    printed = format_statement(parse("SELECT -1"))
    assert printed == "SELECT (-1)"
    assert parse(printed) == parse("SELECT -1")


def test_null_and_booleans():
    assert format_expression(ast.Literal(None)) == "NULL"
    assert format_expression(ast.Literal(True)) == "TRUE"
    assert format_expression(ast.CNullLiteral()) == "CNULL"


# -- property-based round trip over generated expressions ----------------------

_names = st.sampled_from(["a", "b", "title", "nb_attendees", "x1"])

# non-negative only: "-1" prints identically for Literal(-1) and
# UnaryOp("-", Literal(1)), so negative literals are not a textual fixed
# point (negation is still covered through UnaryOp generation)
_literals = st.one_of(
    st.integers(min_value=0, max_value=1000).map(ast.Literal),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
        max_size=8,
    ).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
    st.just(ast.CNullLiteral()),
)

_columns = st.one_of(
    _names.map(ast.ColumnRef),
    st.tuples(_names, _names).map(lambda p: ast.ColumnRef(p[0], table=p[1])),
)


def _expressions(children):
    binary = st.tuples(
        st.sampled_from(["=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "AND", "OR"]),
        children,
        children,
    ).map(lambda t: ast.BinaryOp(t[0], t[1], t[2]))
    unary = children.map(lambda e: ast.UnaryOp("NOT", e))
    isnull = st.tuples(children, st.booleans(), st.booleans()).map(
        lambda t: ast.IsNull(t[0], negated=t[1], cnull=t[2])
    )
    crowdequal = st.tuples(children, children).map(
        lambda t: ast.CrowdEqual(t[0], t[1], "same?")
    )
    return st.one_of(binary, unary, isnull, crowdequal)


expression_trees = st.recursive(
    st.one_of(_literals, _columns), _expressions, max_leaves=12
)


@given(expression_trees)
@settings(max_examples=200, deadline=None)
def test_expression_round_trip_property(expr):
    """Any generated expression survives print -> parse -> print."""
    select = ast.Select(items=(ast.SelectItem(expr),))
    printed = format_statement(select)
    reparsed = parse(printed)
    assert format_statement(reparsed) == printed
