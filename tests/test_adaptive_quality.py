"""Adaptive quality control: reputation, gold probes, adaptive replication.

Unit coverage for the :mod:`repro.crowd.reputation` store and the Task
Manager's confidence-driven replication, plus the interplay invariants
with batch crowd execution (PR2) and compiled expressions (PR3): adaptive
re-issue must never violate stop-after crowd bounds, and compiled vs
interpreted plans must generate identical crowd-call sequences even when
confidence-driven extension rounds kick in.
"""

from __future__ import annotations

import warnings

import pytest

from repro import Connection, CrowdConfig, connect
from repro.catalog.ddl import build_table_schema
from repro.crowd.model import (
    CompareEqualTask,
    FillGroupTask,
    FillTask,
    reset_id_counters,
)
from repro.crowd.platform import PlatformRegistry
from repro.crowd.reputation import ReputationStore
from repro.crowd.scripted import ScriptedPlatform, oracle_answer_fn
from repro.crowd.sim.population import generate_skew_population
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.task_manager import TaskManager
from repro.crowd.wrm import WorkerRelationshipManager
from repro.errors import CrowdDBWarning
from repro.sql.parser import parse
from repro.storage.engine import StorageEngine
from repro.ui.manager import UITemplateManager

TALK = build_table_schema(
    parse("CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)")
)


def make_manager(answer_fn, config=None, wrm=None):
    registry = PlatformRegistry()
    platform = ScriptedPlatform(answer_fn)
    registry.register(platform)
    manager = TaskManager(
        registry,
        UITemplateManager(StorageEngine().catalog),
        config=config or CrowdConfig(),
    )
    manager.attach_reputation(ReputationStore(wrm=wrm))
    return manager, platform


ADAPTIVE = dict(target_confidence=0.9, min_replication=2, max_replication=6)


# -- reputation store ---------------------------------------------------------------


class TestReputationStore:
    def test_prior_without_observations(self):
        store = ReputationStore(prior_accuracy=0.75)
        assert store.accuracy("anyone") == pytest.approx(0.75)

    def test_observations_move_the_estimate(self):
        store = ReputationStore()
        for _ in range(20):
            store.observe_consensus("good", True)
            store.observe_consensus("bad", False)
        assert store.accuracy("good") > 0.9
        assert store.accuracy("bad") < 0.35

    def test_estimates_are_clamped(self):
        store = ReputationStore(prior_strength=0.001)
        for _ in range(500):
            store.observe_gold("perfect", True)
            store.observe_gold("terrible", False)
        assert store.accuracy("perfect") <= 0.98
        assert store.accuracy("terrible") >= 0.05
        assert store.weight("perfect") > 0 > store.weight("terrible")

    def test_gold_weighs_heavier_than_consensus(self):
        store = ReputationStore(gold_weight=3.0)
        store.observe_consensus("a", False)
        store.observe_gold("b", False)
        assert store.accuracy("b") < store.accuracy("a")

    def test_wrm_ledger_records_observations(self):
        wrm = WorkerRelationshipManager()
        store = ReputationStore(wrm=wrm)
        store.observe_consensus("w1", True)
        store.observe_consensus("w1", False)
        store.observe_gold("w1", True)
        account = wrm.account("w1")
        assert account.consensus_votes == 2
        assert account.consensus_agreements == 1
        assert account.gold_seen == 1 and account.gold_correct == 1
        assert account.consensus_rate == pytest.approx(0.5)

    def test_wrm_rejections_lower_the_prior(self):
        wrm = WorkerRelationshipManager(auto_approve=False)
        store = ReputationStore(wrm=wrm)
        account = wrm.account("w1")
        account.rejected = 10
        assert store.accuracy("w1") < store.accuracy("fresh-worker")

    def test_gold_bank_round_robin_and_cap(self):
        store = ReputationStore(gold_bank_size=2)
        assert store.next_gold() is None
        store.add_gold("task-a", "a")
        store.add_gold("task-b", "b")
        store.add_gold("task-c", "c")  # overwrites the oldest slot
        assert store.gold_bank_depth == 2
        served = {store.next_gold().expected for _ in range(4)}
        assert served == {"b", "c"}


# -- adaptive replication (task manager level) --------------------------------------


class TestAdaptiveReplication:
    def test_unanimous_stops_at_min_replication(self):
        manager, platform = make_manager(
            lambda task, replica: {"abstract": "same"},
            config=CrowdConfig(**ADAPTIVE),
        )
        values = manager.fill_values(TALK, ("t",), ("abstract",), {})
        assert values["abstract"] == "same"
        (hit,) = platform._hits.values()
        assert len(hit.assignments) == 2
        assert manager.stats.hit_extensions == 0

    def test_disagreement_extends_until_confident(self):
        def answer(task, replica):
            return {"abstract": "noise" if replica == 0 else "signal"}

        manager, platform = make_manager(
            answer, config=CrowdConfig(**ADAPTIVE)
        )
        values = manager.fill_values(TALK, ("t",), ("abstract",), {})
        assert values["abstract"] == "signal"
        (hit,) = platform._hits.values()
        # 1-1 tie, then +1 per round until sigmoid(margin) >= 0.9: 5 total
        assert len(hit.assignments) == 5
        assert manager.stats.hit_extensions == 3

    def test_extension_caps_at_max_replication(self):
        def answer(task, replica):  # perfectly split crowd, never confident
            return {"abstract": "a" if replica % 2 == 0 else "b"}

        manager, platform = make_manager(
            answer,
            config=CrowdConfig(
                target_confidence=0.99, min_replication=2, max_replication=5
            ),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CrowdDBWarning)
            manager.fill_values(TALK, ("t",), ("abstract",), {})
        (hit,) = platform._hits.values()
        assert len(hit.assignments) == 5
        assert hit.assignments_requested == 5

    def test_budget_blocks_extension(self):
        def answer(task, replica):
            return {"abstract": "a" if replica % 2 == 0 else "b"}

        config = CrowdConfig(
            target_confidence=0.99,
            min_replication=2,
            max_replication=6,
            reward_cents=2,
            budget_cents=7,  # 2 ballots cost 4c; one extension would hit 6c,
        )                    # the next would need 8c > budget
        manager, platform = make_manager(answer, config=config)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CrowdDBWarning)
            manager.fill_values(TALK, ("t",), ("abstract",), {})
        (hit,) = platform._hits.values()
        assert len(hit.assignments) == 3
        assert manager.stats.cost_cents <= config.budget_cents

    def test_grouped_hits_extend_together(self):
        def answer(task, replica):
            assert isinstance(task, FillGroupTask)
            first = "x" if replica == 0 else "y"  # subtask 0 disagrees once
            return [{"abstract": first}, {"abstract": "stable"}]

        manager, platform = make_manager(
            answer,
            config=CrowdConfig(hit_group_size=2, **ADAPTIVE),
        )
        requests = [
            (TALK, (f"t{i}",), ("abstract",), {"title": f"t{i}"})
            for i in range(2)
        ]
        futures = manager.begin_fill_many(requests)
        manager.wait_many(futures)
        assert futures[0].result()["abstract"] == "y"
        assert futures[1].result()["abstract"] == "stable"
        (hit,) = platform._hits.values()
        # one grouped HIT extended for its weakest member
        assert len(hit.assignments) == 5

    def test_weighted_voting_resolves_disagreement_without_extension(self):
        """Once reputations are learned, an expert-vs-spammer split is
        already confident at min_replication — no extra ballots paid."""
        def answer(task, replica):
            return {"abstract": "wrong" if replica == 0 else "right"}

        manager, platform = make_manager(
            answer, config=CrowdConfig(**ADAPTIVE)
        )
        # scripted worker ids are scripted-0 (always wrong) / scripted-1
        store = manager.reputation
        for _ in range(40):
            store.observe_gold("scripted-0", False)
            store.observe_gold("scripted-1", True)
        values = manager.fill_values(TALK, ("t",), ("abstract",), {})
        assert values["abstract"] == "right"
        (hit,) = platform._hits.values()
        assert len(hit.assignments) == 2  # no extension needed
        assert manager.stats.hit_extensions == 0

    def test_future_carries_confidence_state(self):
        def answer(task, replica):
            return {"abstract": "noise" if replica == 0 else "signal"}

        manager, _platform = make_manager(
            answer, config=CrowdConfig(**ADAPTIVE)
        )
        future = manager.begin_fill(TALK, ("t",), ("abstract",), {})
        manager.wait(future)
        assert future.confidence is not None
        assert future.confidence >= 0.9
        assert future.extensions == 3

    def test_default_config_is_fixed_replication(self):
        manager, platform = make_manager(
            lambda task, replica: {"abstract": "same"}
        )
        manager.fill_values(TALK, ("t",), ("abstract",), {})
        (hit,) = platform._hits.values()
        assert len(hit.assignments) == manager.config.replication == 3
        assert not manager.adaptive_enabled
        assert not manager.weighting_enabled


# -- gold-standard probes -----------------------------------------------------------


class TestGoldProbes:
    def test_gold_injection_rate_is_deterministic(self):
        manager, platform = make_manager(
            lambda task, replica: {"abstract": "same"},
            config=CrowdConfig(gold_rate=0.5, **ADAPTIVE),
        )
        # seed the bank, then issue four more fills: at rate 0.5 exactly
        # two gold probes ride along
        manager.reputation.add_gold(
            FillTask("Talk", ("seed",), ("abstract",), {}), {"abstract": "same"}
        )
        for i in range(5):
            manager.fill_values(TALK, (f"t{i}",), ("abstract",), {})
        assert manager.stats.gold_hits_posted == 2
        assert manager.stats.gold_answers_scored == 2
        # gold probes are the single-assignment HITs (adaptive fills ask
        # for min_replication=2); settled fills re-seed the bank, so the
        # second probe may re-ask an earlier fill rather than the seed
        gold_hits = [
            hit for hit in platform._hits.values()
            if hit.assignments_requested == 1
        ]
        assert len(gold_hits) == 2

    def test_gold_scores_feed_wrm_and_store(self):
        wrm = WorkerRelationshipManager()

        def answer(task, replica):
            if task.primary_key == ("gold",):
                return {"abstract": "WRONG"}
            return {"abstract": "same"}

        manager, _platform = make_manager(
            answer, config=CrowdConfig(gold_rate=1.0, **ADAPTIVE), wrm=wrm
        )
        manager.reputation.add_gold(
            FillTask("Talk", ("gold",), ("abstract",), {}),
            {"abstract": "truth"},
        )
        manager.fill_values(TALK, ("t",), ("abstract",), {})
        account = wrm.account("scripted-0")
        assert account.gold_seen == 1 and account.gold_correct == 0
        assert manager.reputation.accuracy("scripted-0") < 0.75

    def test_confident_settles_deposit_gold(self):
        manager, _platform = make_manager(
            lambda task, replica: {"abstract": "same"},
            config=CrowdConfig(gold_rate=0.5, **ADAPTIVE),
        )
        assert manager.reputation.gold_bank_depth == 0
        manager.fill_values(TALK, ("t",), ("abstract",), {})
        assert manager.reputation.gold_bank_depth == 1
        gold = manager.reputation.next_gold()
        assert gold.expected == {"abstract": "same"}

    def test_gold_cost_is_accounted(self):
        manager, _platform = make_manager(
            lambda task, replica: {"abstract": "same"},
            config=CrowdConfig(gold_rate=1.0, reward_cents=2, **ADAPTIVE),
        )
        manager.reputation.add_gold(
            FillTask("Talk", ("seed",), ("abstract",), {}), {"abstract": "same"}
        )
        manager.fill_values(TALK, ("t",), ("abstract",), {})
        # 2 real ballots + 1 gold ballot, 2c each
        assert manager.stats.cost_cents == 6
        assert manager.stats.assignments_received == 3

    def test_compare_gold_grading(self):
        from repro.crowd.task_manager import _gold_answer_correct

        eq = CompareEqualTask("a", "b")
        assert _gold_answer_correct(eq, True, True) is True
        assert _gold_answer_correct(eq, True, False) is False
        fill = FillTask("Talk", ("t",), ("abstract",), {})
        assert _gold_answer_correct(fill, {"abstract": "X"}, {"abstract": " x "})
        assert _gold_answer_correct(fill, {"abstract": "X"}, "bogus") is None


# -- interplay with PR2 (batch windows + stop-after bounds) -------------------------


def adaptive_scripted_db(oracle, answer_fn=None, **config_kwargs):
    reset_id_counters()
    platform = ScriptedPlatform(answer_fn or oracle_answer_fn(oracle))
    config = CrowdConfig(**{**ADAPTIVE, **config_kwargs})
    return connect(
        oracle=oracle,
        platforms=(platform,),
        default_platform="scripted",
        crowd_config=config,
    ), platform


class TestBatchWindowInterplay:
    def _attendee_oracle(self):
        oracle = GroundTruthOracle()
        oracle.load_new_tuples(
            "NotableAttendee",
            [{"name": f"Person {i}", "title": "CrowdDB"} for i in range(6)],
        )
        return oracle

    def test_stop_after_bounds_survive_adaptive_replication(self):
        """A batch-window prefetch with adaptive replication may extend
        HITs (more assignments) but never sources more *tuples* than the
        stop-after bound allows."""
        db, platform = adaptive_scripted_db(
            self._attendee_oracle(), batch_size=16
        )
        db.execute(
            "CREATE CROWD TABLE NotableAttendee "
            "(name STRING PRIMARY KEY, title STRING)"
        )
        result = db.execute("SELECT name FROM NotableAttendee LIMIT 2")
        # the open-world scan may source fewer tuples (duplicate crowd
        # contributions dedup away) but NEVER more than the bound
        assert 1 <= len(result.rows) <= 2
        new_tuple_hits = [
            task for task in platform.posted_tasks
            if type(task).__name__ == "NewTupleTask"
        ]
        assert len(new_tuple_hits) <= 2
        assert db.crowd_stats["new_tuple_requests"] == 1

    def test_window_fill_counts_unchanged_by_adaptive(self):
        """Adaptive replication extends assignments, not tasks: the
        batch window posts exactly one fill task per CNULL row whether or
        not confidence-driven re-issue kicks in."""
        oracle = GroundTruthOracle()
        for i in range(8):
            oracle.load_fill("City", (f"c{i}",), {"population": 100 + i})

        rounds = {"calls": 0}

        def noisy_answer(task, replica):
            # first ballot of every HIT disagrees -> every fill extends
            if replica == 0:
                return {"population": "999999"}
            return {"population": str(oracle.fill_value(
                task.table, task.primary_key, "population"))}

        db, platform = adaptive_scripted_db(
            oracle, answer_fn=noisy_answer, batch_size=4
        )
        db.execute(
            "CREATE TABLE City (name STRING PRIMARY KEY, "
            "population CROWD INTEGER)"
        )
        for i in range(8):
            db.execute(f"INSERT INTO City (name) VALUES ('c{i}')")
        result = db.execute("SELECT name, population FROM City")
        assert sorted(result.rows) == [
            (f"c{i}", 100 + i) for i in range(8)
        ]
        fill_tasks = [
            t for t in platform.posted_tasks if isinstance(t, FillTask)
        ]
        assert len(fill_tasks) == 8           # one task per CNULL row
        assert result.crowd_stats["hit_extensions"] > 0
        assert result.crowd_stats["assignments"] > 16  # but more ballots


# -- interplay with PR3 (compiled vs interpreted crowd-call sequences) --------------


class TestCompiledExpressionInterplay:
    def _run(self, compile_expressions: bool):
        reset_id_counters()
        oracle = GroundTruthOracle()
        oracle.declare_same_entity("IBM", "I.B.M.", "ibm corp")

        def flaky_answer(task, replica):
            # first ballot is always wrong -> every CROWDEQUAL ballot
            # needs confidence-driven re-issue
            truth = oracle.equal(task.left, task.right)
            return (not truth) if replica == 0 else truth

        platform = ScriptedPlatform(flaky_answer)
        db = connect(
            oracle=oracle,
            platforms=(platform,),
            default_platform="scripted",
            crowd_config=CrowdConfig(**ADAPTIVE),
            compile_expressions=compile_expressions,
        )
        db.execute("CREATE TABLE Company (name STRING PRIMARY KEY)")
        for name in ("I.B.M.", "ibm corp", "Oracle", "HP"):
            db.execute(f"INSERT INTO Company (name) VALUES ('{name}')")
        result = db.execute(
            "SELECT name FROM Company WHERE CROWDEQUAL(name, 'IBM')"
        )
        calls = [
            (task.left, task.right) for task in platform.posted_tasks
            if isinstance(task, CompareEqualTask)
        ]
        return sorted(result.rows), calls, db.crowd_stats

    def test_identical_crowd_calls_under_reissue(self):
        compiled_rows, compiled_calls, compiled_stats = self._run(True)
        interpreted_rows, interpreted_calls, interpreted_stats = self._run(
            False
        )
        assert compiled_rows == interpreted_rows == [
            ("I.B.M.",), ("ibm corp",)
        ]
        assert compiled_calls == interpreted_calls
        assert compiled_stats["hit_extensions"] == interpreted_stats[
            "hit_extensions"
        ]
        assert compiled_stats["hit_extensions"] > 0
        assert compiled_stats["assignments_received"] == interpreted_stats[
            "assignments_received"
        ]
