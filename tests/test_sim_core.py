"""Unit tests for the discrete-event core: clock, events, behaviour,
population, ground-truth oracle, and worker answer generation."""

import random

import pytest

from repro.crowd.model import (
    CompareEqualTask,
    CompareOrderTask,
    FillTask,
    NewTupleTask,
    TaskKind,
)
from repro.crowd.sim.behavior import (
    BehaviorConfig,
    acceptance_probability,
    completion_time,
    error_probability,
    group_attractiveness,
)
from repro.crowd.sim.clock import EventQueue, SimClock
from repro.crowd.sim.population import (
    distance_km,
    generate_population,
    pick_weighted,
)
from repro.crowd.sim.traces import GroundTruthOracle
from repro.crowd.sim.worker import SimWorker


class TestClock:
    def test_monotonic(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_events_run_in_time_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(5.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(9.0, lambda: fired.append("c"))
        while queue.step():
            pass
        assert fired == ["a", "b", "c"]
        assert clock.now == 9.0

    def test_fifo_among_simultaneous(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(1.0, lambda: fired.append(2))
        while queue.step():
            pass
        assert fired == [1, 2]

    def test_cancel(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        queue.cancel(event)
        assert not queue.step()
        assert fired == []

    def test_negative_delay_rejected(self):
        queue = EventQueue(SimClock())
        with pytest.raises(ValueError):
            queue.schedule(-1.0, lambda: None)

    def test_run_until_condition(self):
        clock = SimClock()
        queue = EventQueue(clock)
        state = {"n": 0}

        def bump():
            state["n"] += 1
            queue.schedule(1.0, bump)

        queue.schedule(1.0, bump)
        assert queue.run_until(lambda: state["n"] >= 3, timeout=100.0)
        assert state["n"] == 3

    def test_run_until_timeout(self):
        clock = SimClock()
        queue = EventQueue(clock)
        queue.schedule(50.0, lambda: None)
        met = queue.run_until(lambda: False, timeout=10.0)
        assert not met
        assert clock.now == 10.0  # advanced exactly to the deadline

    def test_run_until_already_true(self):
        queue = EventQueue(SimClock())
        assert queue.run_until(lambda: True, timeout=0.0)


class TestBehavior:
    def test_acceptance_increases_with_reward(self):
        config = BehaviorConfig()
        probs = [
            acceptance_probability(cents, 1.0, config) for cents in (1, 2, 4, 8)
        ]
        assert probs == sorted(probs)
        assert 0 < probs[0] < probs[-1] < 1

    def test_price_sensitive_workers_accept_less(self):
        config = BehaviorConfig()
        assert acceptance_probability(2, 2.0, config) < acceptance_probability(
            2, 0.5, config
        )

    def test_group_visibility(self):
        config = BehaviorConfig()
        small = group_attractiveness(1, False, config)
        large = group_attractiveness(100, False, config)
        assert large > small

    def test_affinity_boost(self):
        config = BehaviorConfig()
        assert group_attractiveness(5, True, config) > group_attractiveness(
            5, False, config
        )

    def test_completion_time_positive_and_speed_scaled(self):
        config = BehaviorConfig()
        rng = random.Random(1)
        slow = [completion_time(random.Random(i), 0.5, config) for i in range(50)]
        fast = [completion_time(random.Random(i), 2.0, config) for i in range(50)]
        assert all(t >= 5.0 for t in slow + fast)
        assert sum(fast) < sum(slow)

    def test_error_probability_monotone_in_skill(self):
        config = BehaviorConfig()
        errors = [
            error_probability(skill, TaskKind.FILL, config)
            for skill in (0.5, 0.7, 0.9, 1.0)
        ]
        assert errors == sorted(errors, reverse=True)
        assert 0 < errors[-1] < errors[0] < 0.5


class TestPopulation:
    def test_deterministic_generation(self):
        a = generate_population(20, seed=5)
        b = generate_population(20, seed=5)
        assert [w.activity for w in a] == [w.activity for w in b]

    def test_heavy_tail(self):
        workers = generate_population(500, seed=1)
        activities = sorted((w.activity for w in workers), reverse=True)
        top_share = sum(activities[:50]) / sum(activities)
        assert top_share > 0.3  # top 10% own a disproportionate share

    def test_region_scatters_locations(self):
        workers = generate_population(10, seed=2, region=(47.6, -122.3, 2.0))
        assert all(w.location is not None for w in workers)
        for worker in workers:
            assert distance_km(worker.location, (47.6, -122.3)) < 5.0

    def test_pick_weighted_prefers_active(self):
        rng = random.Random(0)
        light = SimWorker("light", 0.8, 1.0, activity=0.1, price_sensitivity=1)
        heavy = SimWorker("heavy", 0.8, 1.0, activity=10.0, price_sensitivity=1)
        picks = [pick_weighted([light, heavy], rng).worker_id for _ in range(200)]
        assert picks.count("heavy") > 150

    def test_distance(self):
        assert distance_km((47.6, -122.3), (47.6, -122.3)) == 0.0
        assert distance_km((47.6, -122.3), (47.7, -122.3)) == pytest.approx(
            11.1, rel=0.01
        )


class TestOracle:
    def test_fill_values(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("Talk", ("CrowdDB",), {"abstract": "text", "nb": 5})
        assert oracle.fill_value("talk", ("crowddb",), "ABSTRACT") == "text"
        assert oracle.fill_value("Talk", ("CrowdDB",), "nb") == 5
        assert oracle.fill_value("Talk", ("Unknown",), "abstract") is None

    def test_new_tuples_grouped_by_fixed_columns(self):
        oracle = GroundTruthOracle()
        oracle.load_new_tuples(
            "n",
            [{"name": "A", "title": "X"}, {"name": "B", "title": "Y"}],
            fixed_columns=("title",),
        )
        rng = random.Random(0)
        row = oracle.new_tuple("n", {"title": "X"}, rng)
        assert row["name"] == "A"
        assert oracle.new_tuple("n", {"title": "Z"}, rng) is None

    def test_unconstrained_draws_from_union(self):
        oracle = GroundTruthOracle()
        oracle.load_new_tuples("n", [{"name": "A"}, {"name": "B"}])
        rng = random.Random(0)
        names = {oracle.new_tuple("n", {}, rng)["name"] for _ in range(20)}
        assert names == {"A", "B"}

    def test_entity_resolution(self):
        oracle = GroundTruthOracle()
        oracle.declare_same_entity("I.B.M.", "IBM", "Big Blue")
        assert oracle.equal("ibm", "I.B.M.")
        assert oracle.equal("Big Blue", "IBM")
        assert not oracle.equal("IBM", "Oracle")
        assert oracle.equal("same", "same")  # trivially

    def test_ranking(self):
        oracle = GroundTruthOracle()
        oracle.load_ranking("best?", {"A": 2.0, "B": 1.0})
        assert oracle.prefer_left("best?", "A", "B")
        assert not oracle.prefer_left("best?", "B", "A")
        assert oracle.score("best?", "A") == 2.0

    def test_ranking_fallback(self):
        oracle = GroundTruthOracle()
        assert oracle.prefer_left("unknown?", "a", "b")

    def test_distractors(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("t", ("a",), {"c": "right"})
        oracle.load_fill("t", ("b",), {"c": "wrong"})
        rng = random.Random(0)
        assert oracle.distractor("t", "c", "right", rng) == "wrong"
        assert oracle.distractor("t", "zzz", "x", rng) is None


class TestWorkerAnswers:
    def make_worker(self, skill=1.0):
        return SimWorker("w", skill, 1.0, activity=1.0, price_sensitivity=1.0)

    def test_perfect_worker_fills_truth(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("Talk", ("CrowdDB",), {"abstract": "the abstract"})
        config = BehaviorConfig(base_accuracy=1.0)
        config.difficulty = {k: 0.0 for k in TaskKind}
        task = FillTask(
            table="Talk",
            primary_key=("CrowdDB",),
            columns=("abstract",),
            known_values={"title": "CrowdDB"},
        )
        rng = random.Random(0)
        worker = self.make_worker()
        answer = worker.answer(task, oracle, rng, config)
        assert answer["abstract"].strip().lower() == "the abstract"

    def test_unknown_truth_yields_empty(self):
        oracle = GroundTruthOracle()
        config = BehaviorConfig()
        task = FillTask("Talk", ("X",), ("abstract",), {})
        answer = self.make_worker().answer(task, oracle, random.Random(0), config)
        assert answer["abstract"] == ""

    def test_compare_equal_truthful(self):
        oracle = GroundTruthOracle()
        oracle.declare_same_entity("IBM", "I.B.M.")
        config = BehaviorConfig(base_accuracy=1.0)
        config.difficulty = {k: 0.0 for k in TaskKind}
        task = CompareEqualTask("IBM", "I.B.M.")
        assert self.make_worker().answer(task, oracle, random.Random(0), config)

    def test_compare_order_answers_left_right(self):
        oracle = GroundTruthOracle()
        oracle.load_ranking("q", {"A": 2.0, "B": 1.0})
        config = BehaviorConfig(base_accuracy=1.0)
        config.difficulty = {k: 0.0 for k in TaskKind}
        worker = self.make_worker()
        assert worker.answer(
            CompareOrderTask("A", "B", "q"), oracle, random.Random(0), config
        ) == "left"
        assert worker.answer(
            CompareOrderTask("B", "A", "q"), oracle, random.Random(0), config
        ) == "right"

    def test_new_tuple_respects_fixed_values(self):
        oracle = GroundTruthOracle()
        oracle.load_new_tuples(
            "n", [{"name": "Mike", "title": "CrowdDB"}], fixed_columns=("title",)
        )
        config = BehaviorConfig(base_accuracy=1.0)
        config.difficulty = {k: 0.0 for k in TaskKind}
        task = NewTupleTask(
            table="n",
            columns=("name", "title"),
            fixed_values={"title": "CrowdDB"},
        )
        answer = self.make_worker().answer(task, oracle, random.Random(0), config)
        assert answer["title"] == "CrowdDB"
        assert answer["name"].strip().lower() == "mike"

    def test_error_injection_changes_answers(self):
        oracle = GroundTruthOracle()
        oracle.load_fill("t", ("k",), {"c": "truth"})
        config = BehaviorConfig(base_accuracy=0.0)  # always err
        task = FillTask("t", ("k",), ("c",), {})
        worker = self.make_worker(skill=0.5)
        answer = worker.answer(task, oracle, random.Random(1), config)
        assert answer["c"].strip().lower() != "truth"

    def test_remember_group(self):
        worker = self.make_worker()
        worker.remember_group("fill:Talk:abstract")
        assert "fill:Talk:abstract" in worker.familiar_groups
        assert worker.completed_hits == 1
