"""Regression tests for the concurrency-bug sweep.

Everything here exercises real threads (and, where available, forked
processes); the whole module is marked ``concurrency`` so CI can run it
under ``PYTHONFAULTHANDLER=1`` with a timeout guard.
"""

from __future__ import annotations

import concurrent.futures
import threading
import warnings

import pytest

from repro.api import connect, serve
from repro.errors import KernelFallbackWarning, StatementCancelled
from repro.exec import kernels
from repro.obs.metrics import MetricsRegistry
from repro.server.session import SessionState

pytestmark = pytest.mark.concurrency


# -- metrics registry races (satellite: metrics locks) ------------------------


def test_counter_survives_a_multithreaded_hammer():
    registry = MetricsRegistry()
    counter = registry.counter("hammered_total")
    increments = 5_000

    def hammer():
        for _ in range(increments):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert counter.value == 8 * increments


def test_histogram_observations_are_not_lost_across_threads():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_seconds")

    def observe():
        for i in range(2_000):
            histogram.observe(i * 0.001)

    threads = [threading.Thread(target=observe) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert histogram.count == 6 * 2_000


def test_registry_get_or_create_is_race_free():
    registry = MetricsRegistry()
    barrier = threading.Barrier(16)
    instruments = []

    def create():
        barrier.wait()
        instruments.append(registry.counter("shared_total"))

    threads = [threading.Thread(target=create) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert len(instruments) == 16
    assert all(item is instruments[0] for item in instruments)


# -- kernel fallback accounting (satellite: bare excepts narrowed) ------------


def test_kernel_fallback_counts_and_warns_once():
    registry = MetricsRegistry()
    kernels.set_metrics_registry(registry)
    kernels._warned_fallbacks.clear()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kernels._note_fallback("test-site", TypeError("bad fold"))
            kernels._note_fallback("test-site", TypeError("bad fold again"))
        fallback_warnings = [
            w for w in caught if issubclass(w.category, KernelFallbackWarning)
        ]
        assert len(fallback_warnings) == 1  # one warning per (site, class)
        assert registry.counter("kernel_fallbacks_total").value == 2
    finally:
        kernels.set_metrics_registry(None)
        kernels._warned_fallbacks.clear()


def test_kernel_bugs_are_not_swallowed_as_fallbacks():
    # only TypeError/ValueError/OverflowError fold errors may fall back;
    # a NameError (typo'd lane) must propagate as a bug
    assert NameError not in kernels._EXPECTED_FOLD_ERRORS
    assert AttributeError not in kernels._EXPECTED_FOLD_ERRORS


# -- session lifecycle (satellite: threads joined, tracebacks kept) -----------


def test_session_threads_are_joined_on_close():
    server = serve()
    before = threading.active_count()
    sessions = [server.open_session() for _ in range(4)]
    for index, session in enumerate(sessions):
        session.submit(f"CREATE TABLE t{index} (a INTEGER);")
    server.run()
    for session in sessions:
        server.close_session(session)
    assert threading.active_count() <= before
    server.close()


def test_last_result_preserves_the_original_traceback():
    server = serve()
    session = server.open_session()
    session.submit("SELECT broken FROM nowhere;")
    server.run()
    with pytest.raises(Exception) as excinfo:
        session.last_result()
    traceback = excinfo.value.__traceback__
    frames = []
    while traceback is not None:
        frames.append(traceback.tb_frame.f_code.co_filename)
        traceback = traceback.tb_next
    # the re-raise carries the worker-side frames, not just session.py
    assert any("session.py" not in name for name in frames[1:])
    assert len(frames) > 1
    server.close()


# -- cancellation (satellite: cancel mid-statement) ---------------------------


def test_cancel_unwinds_a_parked_crowd_wait_cleanly():
    server = serve(seed=3)
    session = server.open_session()
    session.submit("CREATE TABLE c (name TEXT PRIMARY KEY, city CROWD TEXT);")
    session.submit("INSERT INTO c (name) VALUES ('x');")
    server.run()

    session.submit("SELECT name, city FROM c;")
    # run the session alone until it parks on its crowd future
    while session.state is not SessionState.WAITING:
        session.run_slice()
    assert session.waiting_futures()
    hits_before = server.connection.crowd_stats.get("hits_posted", 0)

    session.cancel()
    server.run()  # drain: the cancelled statement unwinds

    assert isinstance(session.results[-1], StatementCancelled)
    assert session.statements_cancelled == 1
    assert session.quiescent()
    # no HIT was double-settled: posting counters unchanged by the unwind
    assert server.connection.crowd_stats.get("hits_posted", 0) == hits_before

    # the session is not poisoned: the next statement runs normally
    session.submit("SELECT name FROM c;")
    server.run()
    assert session.last_result().rows == [("x",)]
    server.close()


def test_cancel_mid_electronic_dispatch_unwinds(tmp_path):
    server = serve(electronic_workers=1)
    pool = server.connection.electronic_pool
    assert pool is not None
    session = server.open_session()
    session.submit("CREATE TABLE nums (n INTEGER);")
    session.submit(
        "".join(f"INSERT INTO nums VALUES ({i});" for i in range(64))
    )
    server.run()

    # wedge the pool: dispatches return a future that never completes,
    # so the session parks on the electronic wait
    stalled = concurrent.futures.Future()
    original_submit = pool._submit
    pool._submit = lambda context, op: stalled
    try:
        session.submit("SELECT n FROM nums WHERE n < 50;")
        while session.state is not SessionState.WAITING:
            session.run_slice()
        assert any(
            getattr(f, "electronic", False)
            for f in session.waiting_futures()
        )
        session.cancel()
        server.run()
        assert isinstance(session.results[-1], StatementCancelled)
        assert session.quiescent()
    finally:
        pool._submit = original_submit
        stalled.cancel()

    # pool still healthy after the aborted dispatch
    session.submit("SELECT COUNT(*) AS c FROM nums;")
    server.run()
    assert session.last_result().rows == [(64,)]
    server.close()


def test_cancelled_statement_leaves_wal_consistent(tmp_path):
    path = str(tmp_path / "db")
    server = serve(path=path, seed=5)
    session = server.open_session()
    session.submit("CREATE TABLE w (name TEXT PRIMARY KEY, city CROWD TEXT);")
    session.submit("INSERT INTO w (name) VALUES ('k');")
    server.run()

    session.submit("SELECT name, city FROM w;")
    while session.state is not SessionState.WAITING:
        session.run_slice()
    session.cancel()
    server.run()
    assert isinstance(session.results[-1], StatementCancelled)
    server.close()

    # recovery replays a WAL with no dangling mid-statement state
    reopened = connect(path=path)
    assert reopened.execute("SELECT name FROM w;").rows == [("k",)]
    reopened.close()


# -- electronic pool correctness ----------------------------------------------

POOL_SETUP = "CREATE TABLE p (n INTEGER, k TEXT);" + "".join(
    f"INSERT INTO p VALUES ({i}, 'k{i % 5}');" for i in range(200)
)
POOL_QUERY = (
    "SELECT k, COUNT(*) AS c FROM p WHERE n < 150 GROUP BY k ORDER BY k;"
)


def test_electronic_pool_matches_inline_execution():
    baseline = connect()
    baseline.executescript(POOL_SETUP)
    expected = baseline.execute(POOL_QUERY)
    baseline.close()

    for kind in ("thread", "process"):
        conn = connect(electronic_workers=2, electronic_pool_kind=kind)
        conn.executescript(POOL_SETUP)
        result = conn.execute(POOL_QUERY)
        assert result.rows == expected.rows, kind
        stats = conn.electronic_pool.snapshot()
        assert stats["dispatched"] >= 1, kind
        if kind == "process":
            # actually crossed the process boundary (no silent fallback)
            assert stats["process_dispatched"] >= 1
        conn.close()


def test_electronic_pool_shutdown_is_idempotent():
    conn = connect(electronic_workers=2)
    pool = conn.electronic_pool
    conn.close()
    pool.shutdown()  # second shutdown must not raise


def test_concurrent_sessions_share_one_electronic_pool():
    server = serve(electronic_workers=2)
    sessions = [server.open_session() for _ in range(4)]
    for index, session in enumerate(sessions):
        session.submit(
            f"CREATE TABLE s{index} (n INTEGER);"
            + "".join(
                f"INSERT INTO s{index} VALUES ({i});" for i in range(50)
            )
            + f"SELECT COUNT(*) AS c FROM s{index} WHERE n < 40;"
        )
    server.run()
    for session in sessions:
        assert session.last_result().rows == [(40,)]
    assert server.connection.electronic_pool.snapshot()["dispatched"] >= 4
    server.close()
