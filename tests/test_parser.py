"""Unit tests for the CrowdSQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_script


class TestSelect:
    def test_minimal(self):
        stmt = parse("SELECT 1")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expression == ast.Literal(1)
        assert stmt.from_clause is None

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expression == ast.Star(table="t")

    def test_aliases(self):
        stmt = parse("SELECT title AS t, abstract a FROM paper")
        assert stmt.items[0].alias == "t"
        assert stmt.items[1].alias == "a"

    def test_where(self):
        stmt = parse("SELECT title FROM paper WHERE title = 'CrowdDB'")
        where = stmt.where
        assert isinstance(where, ast.BinaryOp) and where.op == "="
        assert where.right == ast.Literal("CrowdDB")

    def test_paper_double_quote_example(self):
        stmt = parse('SELECT abstract FROM paper WHERE title = "CrowdDB"')
        assert stmt.where.right == ast.Literal("CrowdDB")

    def test_group_by_having(self):
        stmt = parse(
            "SELECT title, COUNT(*) FROM t GROUP BY title HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.BinaryOp)

    def test_order_limit_offset(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == ast.Literal(10)
        assert stmt.offset == ast.Literal(5)

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        outer = stmt.from_clause
        assert isinstance(outer, ast.Join) and outer.join_type == "LEFT"
        inner = outer.left
        assert isinstance(inner, ast.Join) and inner.join_type == "INNER"

    def test_comma_join_is_cross(self):
        stmt = parse("SELECT * FROM a, b")
        assert isinstance(stmt.from_clause, ast.Join)
        assert stmt.from_clause.join_type == "CROSS"

    def test_right_join_unsupported(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM a RIGHT JOIN b ON a.x = b.x")

    def test_derived_table(self):
        stmt = parse("SELECT * FROM (SELECT a FROM t) AS s")
        assert isinstance(stmt.from_clause, ast.SubqueryTable)
        assert stmt.from_clause.alias == "s"

    def test_parameters_are_numbered(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        params = [
            node
            for node in ast.walk_expression(stmt.where)
            if isinstance(node, ast.Parameter)
        ]
        assert [p.index for p in params] == [0, 1]


class TestCrowdSQL:
    def test_crowd_column(self):
        stmt = parse(
            "CREATE TABLE Talk (title STRING PRIMARY KEY, "
            "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert not stmt.crowd
        assert [c.crowd for c in stmt.columns] == [False, True, True]
        assert stmt.columns[0].primary_key

    def test_crowd_table_with_ref(self):
        stmt = parse(
            "CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, "
            "title STRING, FOREIGN KEY (title) REF Talk(title))"
        )
        assert stmt.crowd
        fk = stmt.foreign_keys[0]
        assert fk.columns == ("title",)
        assert fk.ref_table == "Talk"
        assert fk.ref_columns == ("title",)

    def test_references_spelling_also_accepted(self):
        stmt = parse(
            "CREATE TABLE t (a STRING, FOREIGN KEY (a) REFERENCES u(b))"
        )
        assert stmt.foreign_keys[0].ref_table == "u"

    def test_cnull_literal(self):
        stmt = parse("INSERT INTO t VALUES ('x', CNULL)")
        assert isinstance(stmt.rows[0][1], ast.CNullLiteral)

    def test_is_cnull_predicate(self):
        stmt = parse("SELECT * FROM t WHERE a IS CNULL")
        assert isinstance(stmt.where, ast.IsNull) and stmt.where.cnull

    def test_is_not_cnull(self):
        stmt = parse("SELECT * FROM t WHERE a IS NOT CNULL")
        assert stmt.where.negated and stmt.where.cnull

    def test_crowdequal(self):
        stmt = parse("SELECT * FROM c WHERE CROWDEQUAL(name, 'IBM')")
        assert isinstance(stmt.where, ast.CrowdEqual)
        assert stmt.where.question is None

    def test_crowdequal_with_question(self):
        stmt = parse(
            "SELECT * FROM c WHERE CROWDEQUAL(name, 'IBM', 'Same company?')"
        )
        assert stmt.where.question == "Same company?"

    def test_crowdorder_example3(self):
        stmt = parse(
            "SELECT title FROM Talk ORDER BY "
            "CROWDORDER(title, \"Which talk did you like better\") LIMIT 10"
        )
        key = stmt.order_by[0].expression
        assert isinstance(key, ast.CrowdOrder)
        assert key.question == "Which talk did you like better"
        assert stmt.limit == ast.Literal(10)


class TestExpressions:
    def test_precedence_or_and(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_precedence_arithmetic(self):
        stmt = parse("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expression
        assert expr.op == "+" and expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse("SELECT (1 + 2) * 3")
        assert stmt.items[0].expression.op == "*"

    def test_not(self):
        stmt = parse("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.UnaryOp) and stmt.where.op == "NOT"

    def test_in_list(self):
        stmt = parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse("SELECT * FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, ast.Between)

    def test_like(self):
        stmt = parse("SELECT * FROM t WHERE a LIKE 'Crowd%'")
        assert stmt.where.op == "LIKE"

    def test_not_like(self):
        stmt = parse("SELECT * FROM t WHERE a NOT LIKE 'x%'")
        assert isinstance(stmt.where, ast.UnaryOp)

    def test_case(self):
        stmt = parse(
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t"
        )
        expr = stmt.items[0].expression
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default == ast.Literal("other")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse("SELECT CASE ELSE 1 END")

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t")
        names = [item.expression.name for item in stmt.items]
        assert names == ["COUNT", "SUM", "AVG", "MIN", "MAX"]

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT x) FROM t")
        assert stmt.items[0].expression.distinct

    def test_exists_subquery(self):
        stmt = parse(
            "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)"
        )
        assert isinstance(stmt.where, ast.ExistsExpr)

    def test_in_subquery(self):
        stmt = parse("SELECT * FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InSubquery)

    def test_scalar_subquery(self):
        stmt = parse("SELECT (SELECT MAX(a) FROM t)")
        assert isinstance(stmt.items[0].expression, ast.ScalarSubquery)

    def test_string_concat(self):
        stmt = parse("SELECT a || b FROM t")
        assert stmt.items[0].expression.op == "||"


class TestOtherStatements:
    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a FROM u")
        assert isinstance(stmt.query, ast.Select)

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert stmt.table == "t"

    def test_drop(self):
        assert parse("DROP TABLE t").name == "t"
        assert parse("DROP TABLE IF EXISTS t").if_exists

    def test_create_index(self):
        stmt = parse("CREATE UNIQUE INDEX idx ON t (a, b)")
        assert stmt.unique and stmt.columns == ("a", "b")

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.Explain)

    def test_show_tables(self):
        assert isinstance(parse("SHOW TABLES"), ast.ShowTables)

    def test_script(self):
        statements = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT a FROM t"
        )
        assert len(statements) == 3

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 SELECT 2")

    def test_type_with_length(self):
        stmt = parse("CREATE TABLE t (a VARCHAR(100), b DECIMAL(10, 2))")
        assert stmt.columns[0].type_name == "VARCHAR"

    def test_helpful_error_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT FROM t")
        assert "expression" in str(excinfo.value)
