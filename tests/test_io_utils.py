"""Tests for CSV import/export and JSON snapshots."""

import io

import pytest

from repro import CNULL, NULL, connect
from repro.errors import CatalogError, StorageError
from repro.io_utils import dump_csv, load_csv, load_snapshot, save_snapshot

TALK_DDL = (
    "CREATE TABLE Talk (title STRING PRIMARY KEY, "
    "abstract CROWD STRING, nb_attendees CROWD INTEGER)"
)


@pytest.fixture
def db(plain_db):
    plain_db.execute(TALK_DDL)
    return plain_db


class TestLoadCSV:
    def test_load_with_header(self, db):
        csv_text = "title,nb_attendees\nCrowdDB,120\nQurk,80\n"
        count = load_csv(db, "Talk", io.StringIO(csv_text))
        assert count == 2
        rows = db.query("SELECT title, abstract, nb_attendees FROM Talk")
        assert ("CrowdDB", CNULL, 120) in rows  # unlisted crowd col -> CNULL

    def test_load_without_header(self, db):
        csv_text = "CrowdDB,An abstract,120\n"
        count = load_csv(db, "Talk", io.StringIO(csv_text), header=False)
        assert count == 1
        assert db.query("SELECT abstract FROM Talk") == [("An abstract",)]

    def test_empty_cell_is_null_and_cnull_spelled(self, db):
        csv_text = "title,abstract,nb_attendees\nX,,CNULL\n"
        load_csv(db, "Talk", io.StringIO(csv_text))
        assert db.query("SELECT abstract, nb_attendees FROM Talk") == [
            (NULL, CNULL)
        ]

    def test_blank_lines_skipped(self, db):
        csv_text = "title\nA\n\nB\n"
        assert load_csv(db, "Talk", io.StringIO(csv_text)) == 2

    def test_unknown_column_rejected(self, db):
        csv_text = "title,speaker\nX,Y\n"
        with pytest.raises(CatalogError):
            load_csv(db, "Talk", io.StringIO(csv_text))

    def test_too_many_cells_rejected(self, db):
        csv_text = "title\nX,Y\n"
        with pytest.raises(StorageError, match="cells"):
            load_csv(db, "Talk", io.StringIO(csv_text))

    def test_short_rows_padded(self, db):
        csv_text = "title,abstract\nX\n"
        load_csv(db, "Talk", io.StringIO(csv_text))
        assert db.query("SELECT abstract FROM Talk") == [(NULL,)]

    def test_file_path(self, db, tmp_path):
        path = tmp_path / "talks.csv"
        path.write_text("title\nFromFile\n")
        assert load_csv(db, "Talk", str(path)) == 1

    def test_custom_delimiter(self, db):
        csv_text = "title;nb_attendees\nX;5\n"
        load_csv(db, "Talk", io.StringIO(csv_text), delimiter=";")
        assert db.query("SELECT nb_attendees FROM Talk") == [(5,)]


class TestDumpCSV:
    def test_round_trip(self, db):
        db.execute("INSERT INTO Talk VALUES ('A', 'abs', 10)")
        db.execute("INSERT INTO Talk (title) VALUES ('B')")
        buffer = io.StringIO()
        count = dump_csv(db, "Talk", buffer)
        assert count == 2

        other = connect(with_crowd=False)
        other.execute(TALK_DDL)
        load_csv(other, "Talk", io.StringIO(buffer.getvalue()))
        assert sorted(other.query("SELECT * FROM Talk")) == sorted(
            db.query("SELECT * FROM Talk")
        )

    def test_markers_in_cells(self, db):
        db.execute("INSERT INTO Talk VALUES ('A', NULL, CNULL)")
        buffer = io.StringIO()
        dump_csv(db, "Talk", buffer)
        line = buffer.getvalue().splitlines()[1]
        assert line == "A,,CNULL"

    def test_to_file(self, db, tmp_path):
        db.execute("INSERT INTO Talk (title) VALUES ('A')")
        path = tmp_path / "out.csv"
        dump_csv(db, "Talk", str(path))
        assert path.read_text().startswith("title,abstract,nb_attendees")


class TestSnapshots:
    def test_snapshot_round_trip(self, db, tmp_path):
        db.execute(
            "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, "
            "FOREIGN KEY (title) REF Talk(title))"
        )
        db.execute("INSERT INTO Talk VALUES ('A', 'abs', CNULL)")
        db.execute("INSERT INTO n VALUES ('Mike', 'A')")
        path = tmp_path / "snap.json"
        save_snapshot(db, str(path))

        other = connect(with_crowd=False)
        created = load_snapshot(other, str(path))
        assert created == ["Talk", "n"]
        assert other.query("SELECT * FROM Talk") == [("A", "abs", CNULL)]
        assert other.catalog.table("n").crowd
        assert other.catalog.table("n").foreign_keys[0].ref_table == "Talk"

    def test_snapshot_preserves_crowd_annotations(self, db, tmp_path):
        path = tmp_path / "snap.json"
        save_snapshot(db, str(path))
        other = connect(with_crowd=False)
        load_snapshot(other, str(path))
        schema = other.catalog.table("Talk")
        assert [c.crowd for c in schema.columns] == [False, True, True]
        assert schema.primary_key == ("title",)

    def test_bad_version_rejected(self, db):
        buffer = io.StringIO('{"version": 99, "tables": []}')
        with pytest.raises(StorageError, match="version"):
            load_snapshot(db, buffer)

    def test_snapshot_into_buffer(self, db):
        buffer = io.StringIO()
        save_snapshot(db, buffer)
        buffer.seek(0)
        other = connect(with_crowd=False)
        assert load_snapshot(other, buffer) == ["Talk"]
